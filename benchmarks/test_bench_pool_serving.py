"""Bench PR4 — data-parallel pool serving: throughput scaling over workers.

A PECAN-D toy network is exported once and served by
:class:`~repro.serve.pool.PoolServer` at 1, 2 and 4 worker processes (each a
full single-process serving plane over the same memory-mapped bundle), under
the same closed-loop multi-client load as the PR2/PR3 single-process
benches.  Results land in ``BENCH_PR4.json`` at the repository root.

Two load profiles run:

* **emulated accelerator** (the headline scaling numbers) — workers pace
  every batch to the latency the paper's Section 4.3 cost model predicts for
  a CAM accelerator (``hardware_hz`` chosen so one sample models ~8 ms).
  While a worker waits on the "accelerator" the host CPU is free, exactly as
  with real attached hardware, so data-parallel workers scale near-linearly
  **even on a single-core host** — this is the deployment shape the paper's
  serving story implies (host dispatches to CAM hardware), and the profile
  every pool autoscaling decision should be based on.
* **raw host compute** (reference) — no pacing; all workers share the host
  CPU for the NumPy kernels.  Scaling here is bounded by physical cores
  (recorded as ``cpu_count``), so on a 1-core CI box the expected ratio is
  ~1×; the assertion is gated accordingly.

The bench also asserts pooled serving is **bitwise-identical** (PECAN-D) to
a direct single-process :class:`BundleEngine` pass — through the router, the
worker HTTP stack, dynamic batching and the mmap-loaded arrays.

Budgets are env-tunable so the CI bench-smoke job can run a tiny version::

    REPRO_BENCH_WINDOW_S=0.4 REPRO_BENCH_POOL_WORKERS=1,2 \
        PYTHONPATH=src python -m pytest benchmarks/test_bench_pool_serving.py -q
"""

from __future__ import annotations

import json
import os
import platform
import threading
import time
from pathlib import Path

import numpy as np
import pytest

from repro.io import export_deployment_bundle
from repro.nn import Conv2d, Flatten, Linear, MaxPool2d, ReLU, Sequential
from repro.pecan.config import PQLayerConfig
from repro.pecan.convert import convert_to_pecan
from repro.serve import BundleEngine, PoolServer, ServeClient
from repro.serve.server import _AcceleratorPacer

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_PR4.json"

WORKER_COUNTS = tuple(int(w) for w in
                      os.environ.get("REPRO_BENCH_POOL_WORKERS", "1,2,4").split(","))
WINDOW_S = float(os.environ.get("REPRO_BENCH_WINDOW_S", "1.6"))
CLIENTS = 8
IMAGE = 12
IN_CHANNELS = 3
PROTOTYPES = 8
#: Modeled accelerator latency per sample in the emulated profile.
ACCEL_SECONDS_PER_SAMPLE = 0.008


def build_bundle(tmp_path: Path) -> Path:
    rng = np.random.default_rng(0)
    cfg = PQLayerConfig(num_prototypes=PROTOTYPES, mode="distance", temperature=0.5)
    spatial = (IMAGE - 2) // 2
    model = Sequential(
        Conv2d(IN_CHANNELS, 16, 3, rng=rng), ReLU(), MaxPool2d(2), Flatten(),
        Linear(16 * spatial * spatial, 32, rng=rng), ReLU(),
        Linear(32, 10, rng=rng),
    )
    pecan = convert_to_pecan(model, cfg, rng=rng)
    return export_deployment_bundle(pecan, tmp_path / "pool_bench.npz",
                                    input_shape=(IN_CHANNELS, IMAGE, IMAGE))


def per_sample_cycles(bundle_path: Path) -> float:
    """Modeled accelerator cycles for one sample (probe via the op counter)."""
    engine = BundleEngine(bundle_path)
    pacer = _AcceleratorPacer(engine, hz=1.0)
    engine.predict(np.zeros((1, IN_CHANNELS, IMAGE, IMAGE)))
    return pacer._cycles()


def run_load(client: ServeClient, images: np.ndarray, window_s: float):
    """Closed-loop load: CLIENTS workers fire singles for ``window_s``."""
    stop_at = time.monotonic() + window_s
    latencies_ms = []
    errors = []
    lock = threading.Lock()

    def worker(offset: int):
        i = offset
        while time.monotonic() < stop_at:
            sample = images[i % len(images):i % len(images) + 1]
            started = time.monotonic()
            try:
                client.predict(sample, model="bench")
            except Exception as exc:            # noqa: BLE001 - recorded below
                with lock:
                    errors.append(repr(exc))
                return
            elapsed = (time.monotonic() - started) * 1e3
            with lock:
                latencies_ms.append(elapsed)
            i += CLIENTS

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(CLIENTS)]
    started = time.monotonic()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.monotonic() - started
    return latencies_ms, elapsed, errors


def run_pool_config(bundle_path: Path, workers: int, images: np.ndarray,
                    expected: np.ndarray, hardware_hz=None):
    pool = PoolServer(port=0, workers=workers, policy="least_outstanding",
                      heartbeat_interval_s=0.25, heartbeat_timeout_s=10.0,
                      max_wait_ms=3.0, max_queue_depth=1024,
                      hardware_hz=hardware_hz)
    pool.add_bundle(bundle_path, name="bench")
    with pool:
        assert pool.wait_ready(180.0), "pool never became ready"
        client = ServeClient(pool.url)
        # Bitwise parity through router + worker + batching + mmap arrays.
        np.testing.assert_array_equal(client.predict(images[:4], model="bench"),
                                      expected)
        latencies_ms, elapsed, errors = run_load(client, images, WINDOW_S)
        pool_state = pool.describe_pool()
    assert not errors, errors[:3]
    assert latencies_ms, "no requests completed"
    ordered = sorted(latencies_ms)
    return {
        "workers": workers,
        "requests": len(latencies_ms),
        "window_s": round(elapsed, 3),
        "requests_per_s": round(len(latencies_ms) / elapsed, 1),
        "p50_ms": round(ordered[len(ordered) // 2], 3),
        "p95_ms": round(ordered[int(len(ordered) * 0.95) - 1], 3),
        "restarts": pool_state["restarts"],
        "dispatched": {str(info["id"]): info["dispatched"]
                       for info in pool_state["workers"]},
    }


@pytest.fixture(scope="module")
def bench_results(tmp_path_factory):
    bundle_path = build_bundle(tmp_path_factory.mktemp("pool_serving"))
    engine = BundleEngine(bundle_path)
    rng = np.random.default_rng(1)
    images = rng.standard_normal((64, IN_CHANNELS, IMAGE, IMAGE))
    expected = engine.predict(images[:4])

    cycles = per_sample_cycles(bundle_path)
    hardware_hz = cycles / ACCEL_SECONDS_PER_SAMPLE

    paced = {}
    for workers in WORKER_COUNTS:
        paced[f"workers_{workers}"] = run_pool_config(
            bundle_path, workers, images, expected, hardware_hz=hardware_hz)
    base = paced[f"workers_{WORKER_COUNTS[0]}"]["requests_per_s"]
    for entry in paced.values():
        entry["scaling_vs_1"] = round(entry["requests_per_s"] / base, 2)

    raw = {}
    for workers in (WORKER_COUNTS[0], WORKER_COUNTS[-1]):
        raw[f"workers_{workers}"] = run_pool_config(
            bundle_path, workers, images, expected, hardware_hz=None)
    raw_base = raw[f"workers_{WORKER_COUNTS[0]}"]["requests_per_s"]
    for entry in raw.values():
        entry["scaling_vs_1"] = round(entry["requests_per_s"] / raw_base, 2)

    return {
        "bench": "data-parallel pool serving (PR4)",
        "platform": platform.processor() or platform.machine(),
        "cpu_count": os.cpu_count(),
        "config": {
            "clients": CLIENTS,
            "window_s": WINDOW_S,
            "image": [IN_CHANNELS, IMAGE, IMAGE],
            "prototypes": PROTOTYPES,
            "policy": "least_outstanding",
            "mmap_mode": "r",
            "kernels": engine.kernel_names(),
            "accel_seconds_per_sample": ACCEL_SECONDS_PER_SAMPLE,
            "hardware_hz": round(hardware_hz, 1),
            "per_sample_cycles": cycles,
        },
        "results": {
            "emulated_accelerator": paced,
            "raw_host_compute": {
                "note": ("no pacing: all workers share the host CPU, so "
                         "scaling is bounded by cpu_count"),
                **raw,
            },
        },
    }


class TestPoolServingBench:
    def test_pooled_serving_matches_single_process_bitwise(self, bench_results):
        # The parity assertion ran inside every pool config; reaching here
        # means router+workers reproduced the single-process logits exactly.
        assert bench_results["results"]["emulated_accelerator"]

    def test_accelerator_profile_scales_with_workers(self, bench_results):
        paced = bench_results["results"]["emulated_accelerator"]
        low = paced[f"workers_{WORKER_COUNTS[0]}"]
        high = paced[f"workers_{WORKER_COUNTS[-1]}"]
        if WORKER_COUNTS[-1] < 4 * WORKER_COUNTS[0]:
            pytest.skip("smoke budget: fewer than 4x workers benchmarked")
        # The acceptance bar (>= 1.5x at 4 workers vs 1); with an emulated
        # accelerator the expected ratio is ~3-4x, so 1.5x is a roomy floor.
        assert high["requests_per_s"] >= 1.5 * low["requests_per_s"], (
            f"4-worker pool did not scale: {high['requests_per_s']} vs "
            f"{low['requests_per_s']} req/s")
        assert high["restarts"] == 0 and low["restarts"] == 0

    def test_raw_profile_is_recorded(self, bench_results):
        # The raw (unpaced) profile is informational: CPU-bound scaling
        # depends on the host's core count and on co-tenant noise, so it is
        # recorded for humans but never gated — a shared CI runner's load
        # spike must not fail the suite.  Scaling enforcement lives in the
        # deterministic emulated-accelerator profile above.
        raw = bench_results["results"]["raw_host_compute"]
        for key in (f"workers_{WORKER_COUNTS[0]}", f"workers_{WORKER_COUNTS[-1]}"):
            assert raw[key]["requests_per_s"] > 0
            assert raw[key]["restarts"] == 0

    def test_results_recorded(self, bench_results):
        RESULT_PATH.write_text(json.dumps(bench_results, indent=2) + "\n")
        stored = json.loads(RESULT_PATH.read_text())
        assert "emulated_accelerator" in stored["results"]
        assert "raw_host_compute" in stored["results"]


def test_bench_pool_serving_report(bench_results):
    print("\nBench PR4 — pool serving throughput "
          f"({CLIENTS} concurrent single-sample clients)")
    for profile in ("emulated_accelerator", "raw_host_compute"):
        rows = {key: value
                for key, value in bench_results["results"][profile].items()
                if key.startswith("workers_")}
        print(f"  [{profile}]")
        print(f"{'workers':>9} {'req/s':>10} {'p50 ms':>9} {'p95 ms':>9} "
              f"{'vs 1w':>7}")
        for key in sorted(rows, key=lambda k: int(k.split('_')[1])):
            entry = rows[key]
            print(f"{entry['workers']:>9} {entry['requests_per_s']:>10} "
                  f"{entry['p50_ms']:>9} {entry['p95_ms']:>9} "
                  f"{entry['scaling_vs_1']:>7}")
