"""Bench PR3 — serving a *residual* (graph-IR) bundle end to end.

PR2's serving bench used a sequential toy network because the linear program
recorder could not express anything else.  The graph IR lifts that limit:
this bench exports a PECAN-D **ResNet-20** (residual adds + option-A concat
shortcuts) to a format-v3 bundle and drives it through the full serving stack
— bundle-backed engine, dynamic micro-batching, HTTP front end — with eight
concurrent closed-loop single-sample clients at scheduler batch budgets
{1, 8, 32}.  Sustained requests/s and p50/p95/p99 latency per configuration
are recorded into ``BENCH_PR3.json`` at the repository root, alongside a
direct-engine comparison of the pristine graph vs. the optimized
(BN-folded + ReLU-fused) graph.

Asserts:

* responses are bitwise-identical to a direct :class:`BundleEngine` pass,
* the parity auditor observes zero mismatches at every budget,
* micro-batching at budget 32 sustains at least 0.6× the req/s of budget 1
  (generous floor: 1.5 s windows on shared CI boxes are noisy),
* the optimized graph loses no accuracy (allclose to the pristine engine).

Run it alone with::

    PYTHONPATH=src python -m pytest benchmarks/test_bench_graph_serving.py -q
"""

from __future__ import annotations

import json
import os
import platform
import threading
import time
from pathlib import Path

import numpy as np
import pytest

from repro.io import export_deployment_bundle
from repro.models import build_model
from repro.serve import BundleEngine, PECANServer, ServeClient

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_PR3.json"

BATCH_BUDGETS = (1, 8, 32)
CLIENTS = 8
#: Env-tunable so the CI bench-smoke job can run a tiny version.
WINDOW_S = float(os.environ.get("REPRO_BENCH_WINDOW_S", "1.5"))
IMAGE = 16
IN_CHANNELS = 3
WIDTH = 0.125
PROTOTYPE_CAP = 4


def build_bundle(tmp_path: Path) -> Path:
    model = build_model("resnet20_pecan_d", width_multiplier=WIDTH,
                        prototype_cap=PROTOTYPE_CAP,
                        rng=np.random.default_rng(0))
    return export_deployment_bundle(model, tmp_path / "resnet_bench.npz",
                                    input_shape=(IN_CHANNELS, IMAGE, IMAGE))


def run_load(client: ServeClient, images: np.ndarray, window_s: float):
    """Closed-loop load: CLIENTS workers fire singles for ``window_s``."""
    stop_at = time.monotonic() + window_s
    latencies_ms = []
    errors = []
    lock = threading.Lock()

    def worker(offset: int):
        i = offset
        while time.monotonic() < stop_at:
            sample = images[i % len(images):i % len(images) + 1]
            started = time.monotonic()
            try:
                client.predict(sample)
            except Exception as exc:            # noqa: BLE001 - recorded below
                with lock:
                    errors.append(repr(exc))
                return
            elapsed = (time.monotonic() - started) * 1e3
            with lock:
                latencies_ms.append(elapsed)
            i += CLIENTS

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(CLIENTS)]
    started = time.monotonic()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.monotonic() - started
    return latencies_ms, elapsed, errors


def _quantile(ordered, q):
    return round(ordered[min(len(ordered) - 1, int(len(ordered) * q))], 3)


def _engine_throughput(engine: BundleEngine, images: np.ndarray,
                       batch: int = 8, window_s: float = 0.75):
    """Direct-engine batched throughput (samples/s), no HTTP in the way."""
    stop_at = time.monotonic() + window_s
    samples = 0
    started = time.monotonic()
    while time.monotonic() < stop_at:
        engine.predict(images[:batch])
        samples += batch
    return round(samples / (time.monotonic() - started), 1)


@pytest.fixture(scope="module")
def bench_results(tmp_path_factory):
    bundle_path = build_bundle(tmp_path_factory.mktemp("graph_serving"))
    engine = BundleEngine(bundle_path)
    optimized = BundleEngine(bundle_path, optimize=True)
    rng = np.random.default_rng(1)
    images = rng.standard_normal((64, IN_CHANNELS, IMAGE, IMAGE))
    expected = engine.predict(images[:4])
    np.testing.assert_allclose(optimized.predict(images[:4]), expected, atol=1e-8)

    results = {}
    for budget in BATCH_BUDGETS:
        server = PECANServer(port=0, max_batch_size=budget, max_wait_ms=4.0,
                             max_queue_depth=1024, audit_every=16)
        server.add_bundle(bundle_path, name="bench", preload=True)
        with server:
            client = ServeClient(server.url)
            assert client.wait_ready(10.0)
            # Parity spot-check through the full HTTP + batching stack.
            np.testing.assert_array_equal(client.predict(images[:4]), expected)
            latencies_ms, elapsed, errors = run_load(client, images, WINDOW_S)
            snapshot = server.metrics_snapshot()["server"]
        assert not errors, errors[:3]
        assert latencies_ms, "no requests completed"
        ordered = sorted(latencies_ms)
        results[f"max_batch_{budget}"] = {
            "max_batch_size": budget,
            "requests": len(latencies_ms),
            "window_s": round(elapsed, 3),
            "requests_per_s": round(len(latencies_ms) / elapsed, 1),
            "p50_ms": _quantile(ordered, 0.50),
            "p95_ms": _quantile(ordered, 0.95),
            "p99_ms": _quantile(ordered, 0.99),
            "batch_histogram": snapshot["batching"]["histogram"],
            "mean_batch": round(snapshot["batching"]["mean_batch"], 2),
            "audits": snapshot["parity_audit"]["audits"],
            "audit_mismatches": snapshot["parity_audit"]["mismatches"],
        }
    return {
        "bench": "graph-IR residual-model serving (PR3)",
        "platform": platform.processor() or platform.machine(),
        "config": {
            "arch": "resnet20_pecan_d",
            "width_multiplier": WIDTH,
            "prototype_cap": PROTOTYPE_CAP,
            "clients": CLIENTS,
            "window_s": WINDOW_S,
            "image": [IN_CHANNELS, IMAGE, IMAGE],
            "graph_nodes": len(engine.executor.graph.nodes),
            "optimized_nodes": len(optimized.executor.graph.nodes),
            "optimization_applied": optimized.optimization["applied"],
            "kernels": engine.kernel_names(),
        },
        "engine_direct": {
            "pristine_samples_per_s": _engine_throughput(engine, images),
            "optimized_samples_per_s": _engine_throughput(optimized, images),
        },
        "results": results,
    }


class TestGraphServingBench:
    def test_parity_and_audits_clean(self, bench_results):
        for budget in BATCH_BUDGETS:
            entry = bench_results["results"][f"max_batch_{budget}"]
            assert entry["audit_mismatches"] == 0
            sizes = [int(size) for size in entry["batch_histogram"]]
            # The parity spot-check submits one 4-sample request, which
            # legitimately dispatches alone even above a smaller budget.
            assert max(sizes) <= max(budget, 4)
        coalesced = bench_results["results"]["max_batch_32"]
        assert any(int(size) > 1 for size in coalesced["batch_histogram"]), \
            "dynamic batcher never coalesced concurrent singles"

    def test_batching_does_not_cost_throughput(self, bench_results):
        if WINDOW_S < 1.0:
            pytest.skip("smoke budget: the throughput floor needs a full "
                        "window to be meaningful (parity/coalescing asserted above)")
        unbatched = bench_results["results"]["max_batch_1"]["requests_per_s"]
        batched = bench_results["results"]["max_batch_32"]["requests_per_s"]
        assert batched >= 0.6 * unbatched

    def test_optimization_shrinks_graph(self, bench_results):
        config = bench_results["config"]
        assert config["optimized_nodes"] < config["graph_nodes"]
        assert "fold_batchnorm" in config["optimization_applied"]

    def test_results_recorded(self, bench_results):
        RESULT_PATH.write_text(json.dumps(bench_results, indent=2) + "\n")
        stored = json.loads(RESULT_PATH.read_text())
        assert set(stored["results"]) == {f"max_batch_{b}" for b in BATCH_BUDGETS}


def test_bench_graph_serving_report(bench_results):
    print("\nBench PR3 — residual-model serving (8 concurrent single-sample clients)")
    print(f"{'budget':>8} {'req/s':>10} {'p50 ms':>9} {'p95 ms':>9} "
          f"{'p99 ms':>9} {'mean batch':>11}")
    for budget in BATCH_BUDGETS:
        entry = bench_results["results"][f"max_batch_{budget}"]
        print(f"{budget:>8} {entry['requests_per_s']:>10} {entry['p50_ms']:>9} "
              f"{entry['p95_ms']:>9} {entry['p99_ms']:>9} {entry['mean_batch']:>11}")
    direct = bench_results["engine_direct"]
    print(f"direct engine: pristine {direct['pristine_samples_per_s']} samples/s, "
          f"optimized {direct['optimized_samples_per_s']} samples/s")
