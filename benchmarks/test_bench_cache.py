"""Bench PR8 — the deterministic response cache under skewed load.

The same paced 2-worker pool as the QoS/trace benches is driven by
closed-loop clients walking a Zipf(1.2) stream over 64 unique inputs —
the traffic shape where an exact content-addressed cache pays off — in
two configurations:

* **cache_off** — ``cache_mb=0``: the pre-PR8 stack (every request is an
  engine execution, paced to the Section 4.3 accelerator cost model).
* **cache_on** — a 64 MiB router cache with in-flight coalescing and the
  ``cache_affinity`` routing policy.

Contracts (the PR's acceptance criteria):

1. every response in *every* phase is bitwise identical to the reference
   engine's canonical bytes (exactness is the whole point — PECAN-D
   inference is deterministic, so a cache hit must be indistinguishable
   from a fresh execution);
2. the cache-on run reaches ≥ 60% hit rate and ≥ 5× better p50 than
   cache-off;
3. a burst of N identical concurrent requests costs exactly ONE worker
   engine call (coalescing);
4. after a deploy + promote of a divergent v2, no response ever carries
   the outgoing version's bytes, and repeat traffic re-fills (and hits)
   under the new namespace.

Results land in ``BENCH_PR8.json``.  Budgets are env-tunable so the CI
bench-smoke job can run a tiny version::

    REPRO_BENCH_WINDOW_S=0.5 PYTHONPATH=src \
        python -m pytest benchmarks/test_bench_cache.py -q
"""

from __future__ import annotations

import json
import os
import platform
import threading
from pathlib import Path

import numpy as np

from repro.io import export_deployment_bundle
from repro.nn import Conv2d, Flatten, Linear, MaxPool2d, ReLU, Sequential
from repro.pecan.config import PQLayerConfig
from repro.pecan.convert import convert_to_pecan
from repro.serve import (BundleEngine, PoolServer, ServeClient, ZipfWorkload,
                         canonical_response_bytes, run_zipf_load)
from repro.serve.server import _AcceleratorPacer

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_PR8.json"

WINDOW_S = float(os.environ.get("REPRO_BENCH_WINDOW_S", "2.0"))
CLIENTS = 4
SAMPLES_PER_REQUEST = 2
#: Unique-input pool size scales with the window so the cold fill phase is
#: an equivalent fraction of short CI smoke runs and full runs alike.
UNIQUE_ITEMS = max(8, min(64, int(round(32 * WINDOW_S))))
ZIPF_ALPHA = 1.2
BURST = 12
#: Per-sample accelerator latency (Section 4.3 pacing) — capacity is
#: ``workers / ACCEL_SECONDS_PER_SAMPLE`` samples/s, stable on any CI host.
#: Slower than the QoS/trace benches' 6 ms on purpose: this bench models a
#: larger CAM array where an engine execution clearly dominates the HTTP
#: front-end cost, so the measured speedup isolates cache vs accelerator
#: rather than cache vs JSON parsing.
ACCEL_SECONDS_PER_SAMPLE = 0.025
WORKERS = 2
IMAGE = 12
IN_CHANNELS = 3


def build_bundle(tmp_path: Path, seed: int, name: str) -> Path:
    rng = np.random.default_rng(seed)
    cfg = PQLayerConfig(num_prototypes=8, mode="distance", temperature=0.5)
    spatial = (IMAGE - 2) // 2
    model = Sequential(
        Conv2d(IN_CHANNELS, 16, 3, rng=rng), ReLU(), MaxPool2d(2), Flatten(),
        Linear(16 * spatial * spatial, 32, rng=rng), ReLU(),
        Linear(32, 10, rng=rng),
    )
    pecan = convert_to_pecan(model, cfg, rng=rng)
    return export_deployment_bundle(pecan, tmp_path / f"{name}.npz",
                                    input_shape=(IN_CHANNELS, IMAGE, IMAGE))


def canonical_references(engine: BundleEngine, items) -> list:
    """Per-item canonical response bytes — the bitwise ground truth."""
    references = []
    for item in items:
        outputs = engine.predict(item)
        references.append(canonical_response_bytes({
            "outputs": outputs.tolist(),
            "classes": outputs.argmax(axis=1).tolist(),
            "num_samples": int(item.shape[0]),
        }))
    return references


def worker_engine_calls(client: ServeClient) -> int:
    metrics = client.metrics()
    return sum(worker["server"]["requests"]["total"]
               for worker in metrics["workers"].values()
               if "error" not in worker)


def start_pool(bundle: Path, hardware_hz: float, *, cache_mb: float):
    pool = PoolServer(
        port=0, workers=WORKERS, policy="cache_affinity",
        heartbeat_interval_s=0.1, heartbeat_timeout_s=5.0, max_wait_ms=2.0,
        hardware_hz=hardware_hz,
        cache_mb=cache_mb, cache_check_every=0)
    pool.add_bundle(bundle, name="m")
    pool.start()
    assert pool.wait_ready(180.0), "pool never became ready"
    return pool


def run_zipf_phase(pool, workload, references):
    clients = [ServeClient(pool.url, timeout_s=60.0, backoff_retries=0)
               for _ in range(CLIENTS)]

    def predict(item, client_index):
        return canonical_response_bytes(
            clients[client_index].predict_response(item, model="m"))

    result = run_zipf_load(predict, workload, clients=CLIENTS,
                           window_s=WINDOW_S, references=references)
    summary = result.summary()
    cache = pool.metrics_snapshot()["cache"]
    summary["cache"] = {
        "enabled": cache.get("enabled", False),
        "hit_rate": cache.get("hit_rate", 0.0),
        "hits": cache.get("hits", 0),
        "misses": cache.get("misses", 0),
        "coalesce": cache.get("coalesce", {}),
    }
    return summary


def run_burst_phase(pool, probe):
    """BURST identical concurrent requests on a cold key → 1 engine call."""
    client = ServeClient(pool.url, timeout_s=60.0)
    before = worker_engine_calls(client)
    barrier = threading.Barrier(BURST)
    responses, errors = [], []

    def fire():
        barrier.wait()
        try:
            responses.append(ServeClient(pool.url, timeout_s=60.0)
                             .predict_response(probe, model="m"))
        except Exception as exc:               # noqa: BLE001 - recorded below
            errors.append(repr(exc))

    threads = [threading.Thread(target=fire) for _ in range(BURST)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(120.0)
    distinct = len({json.dumps(r["outputs"]) for r in responses})
    return {
        "burst": BURST,
        "responses": len(responses),
        "errors": errors,
        "distinct_outputs": distinct,
        "engine_calls": worker_engine_calls(client) - before,
    }


def run_lifecycle_phase(pool, v2_bundle, items, v1_refs, v2_refs):
    """Promote a divergent v2 mid-traffic: no stale bytes, re-fill, re-hit."""
    client = ServeClient(pool.url, timeout_s=60.0)
    hot = items[:8]
    for item in hot:                           # prime v1's namespace hot set
        client.predict_response(item, model="m")
    primed = [canonical_response_bytes(client.predict_response(item, model="m"))
              for item in hot]
    stale_before = sum(got != ref for got, ref in zip(primed, v1_refs))

    client.deploy("m", str(v2_bundle), canary_fraction=0.0, auto=False)
    client.promote("m")

    first_pass = [client.predict_response(item, model="m") for item in hot]
    second_pass = [client.predict_response(item, model="m") for item in hot]
    stale_after = sum(
        canonical_response_bytes(response) != ref
        for response, ref in zip(first_pass, v2_refs))
    stale_after += sum(
        canonical_response_bytes(response) != ref
        for response, ref in zip(second_pass, v2_refs))
    return {
        "primed_hits_stale": int(stale_before),
        "post_promote_stale": int(stale_after),
        "post_promote_served_fresh": sum("cached" not in r
                                         for r in first_pass),
        "post_promote_repeat_cached": sum(bool(r.get("cached"))
                                          for r in second_pass),
        "cache": {"invalidations":
                  pool.metrics_snapshot()["cache"]["invalidations"]},
    }


def test_bench_cache(tmp_path):
    v1 = build_bundle(tmp_path, seed=0, name="v1")
    v2 = build_bundle(tmp_path, seed=99, name="v2")
    engine_v1 = BundleEngine(v1)
    engine_v2 = BundleEngine(v2)

    rng = np.random.default_rng(1)
    items = [rng.standard_normal((SAMPLES_PER_REQUEST, IN_CHANNELS,
                                  IMAGE, IMAGE)) for _ in range(UNIQUE_ITEMS)]

    # Calibrate the emulated accelerator clock from one traced request so a
    # SAMPLES_PER_REQUEST batch is paced to exactly
    # SAMPLES_PER_REQUEST * ACCEL_SECONDS_PER_SAMPLE of modeled latency.
    calibration = BundleEngine(v1)
    calibration.predict(items[0])
    pacer = _AcceleratorPacer(calibration, hz=1.0)
    hardware_hz = pacer._cycles() / (SAMPLES_PER_REQUEST
                                     * ACCEL_SECONDS_PER_SAMPLE)
    assert hardware_hz > 0
    workload = ZipfWorkload(items, alpha=ZIPF_ALPHA, seed=7)
    v1_refs = canonical_references(engine_v1, items)
    v2_refs = canonical_references(engine_v2, items)
    probe = rng.standard_normal((SAMPLES_PER_REQUEST, IN_CHANNELS,
                                 IMAGE, IMAGE))

    pool = start_pool(v1, hardware_hz, cache_mb=0.0)
    try:
        off = run_zipf_phase(pool, workload, v1_refs)
    finally:
        pool.stop(drain=True)

    pool = start_pool(v1, hardware_hz, cache_mb=64.0)
    try:
        on = run_zipf_phase(pool, workload, v1_refs)
        burst = run_burst_phase(pool, probe)
        lifecycle = run_lifecycle_phase(pool, v2, items,
                                        v1_refs[:8], v2_refs[:8])
    finally:
        pool.stop(drain=True)

    speedup_p50 = (off["p50_ms"] / on["p50_ms"]) if on["p50_ms"] else 0.0
    payload = {
        "bench": "deterministic response cache under Zipf load (PR8)",
        "platform": platform.machine(),
        "cpu_count": os.cpu_count(),
        "config": {
            "clients": CLIENTS,
            "samples_per_request": SAMPLES_PER_REQUEST,
            "unique_items": UNIQUE_ITEMS,
            "zipf_alpha": ZIPF_ALPHA,
            "workers": WORKERS,
            "window_s": WINDOW_S,
            "burst": BURST,
            "policy": "cache_affinity",
            "accel_seconds_per_sample": ACCEL_SECONDS_PER_SAMPLE,
            "hardware_hz": round(hardware_hz, 1),
            "expected_zipf_hit_rate_at_400":
                round(workload.expected_hit_rate(400), 4),
        },
        "results": {
            "cache_off": off,
            "cache_on": on,
            "p50_speedup_on_vs_off": round(speedup_p50, 2),
            "throughput_ratio_on_vs_off": round(
                on["requests_per_s"] / off["requests_per_s"], 2)
            if off["requests_per_s"] else 0.0,
            "coalescing_burst": burst,
            "lifecycle": lifecycle,
        },
    }
    RESULT_PATH.write_text(json.dumps(payload, indent=2))
    print(json.dumps(payload, indent=2))

    # Contract 1: exactness — zero mismatches, zero errors, in every phase.
    assert off["errors"] == 0 and on["errors"] == 0
    assert off["mismatches"] == 0, "cache-off run diverged from reference"
    assert on["mismatches"] == 0, "cache-on run served non-reference bytes"
    assert burst["errors"] == []
    assert burst["responses"] == BURST and burst["distinct_outputs"] == 1
    assert lifecycle["primed_hits_stale"] == 0

    # Contract 2: the win — ≥60% hit rate and ≥5× better p50 than cache-off.
    assert on["cache"]["enabled"] and not off["cache"]["enabled"]
    assert on["cache"]["hit_rate"] >= 0.60, on["cache"]
    assert speedup_p50 >= 5.0, (off["p50_ms"], on["p50_ms"])

    # Contract 3: a burst of identical requests costs exactly 1 engine call.
    assert burst["engine_calls"] == 1, burst

    # Contract 4: promote retires the outgoing namespace — no stale bytes,
    # and the new version's traffic re-fills and hits.
    assert lifecycle["post_promote_stale"] == 0, lifecycle
    assert lifecycle["post_promote_served_fresh"] == len(items[:8])
    assert lifecycle["post_promote_repeat_cached"] == len(items[:8])
    assert lifecycle["cache"]["invalidations"] >= 1
