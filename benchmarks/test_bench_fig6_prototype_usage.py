"""Bench E8 — Fig. 6 / Section 5: prototype call frequencies and pruning headroom.

The paper observes that after training, only a subset of each codebook's
prototypes is ever selected at inference (26 of 64 in ResNet-20's second
convolution), so the dead prototypes and their LUT entries can be pruned for
free.  This bench runs CAM inference of a (briefly trained) PECAN-D ResNet-20
over the synthetic CIFAR test set, collects the per-layer usage histograms of
the first codebook group (the Fig. 6 matrix), verifies the sparsity claim
(some prototypes unused → non-zero prunable fraction, pruning preserves the
LUT outputs) and prints the usage matrix.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.analysis import collect_prototype_usage, usage_matrix
from repro.cam import CAMInferenceEngine, build_model_luts
from repro.data import make_dataset
from repro.experiments import run_experiment
from repro.experiments.tables import format_table

#: Micro-training driven figure reproduction: excluded from the fast tier
#: (`pytest -m "not slow"`); run explicitly or in the full benchmark pass.
pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def trained_resnet_d(micro_cifar10_config):
    config = replace(micro_cifar10_config, arch="resnet20_pecan_d", width_multiplier=0.125,
                     prototype_cap=16, epochs=2)
    return run_experiment(config)


@pytest.fixture(scope="module")
def usage_report(trained_resnet_d):
    _, test = make_dataset("cifar10", num_train=8, num_test=64, image_size=16)
    return collect_prototype_usage(trained_resnet_d.model, test.images, batch_size=32)


class TestFig6:
    def test_usage_collected_for_every_pecan_layer(self, usage_report, trained_resnet_d):
        from repro.pecan.convert import pecan_layers
        assert len(usage_report.layers) == len(pecan_layers(trained_resnet_d.model))

    def test_some_prototypes_are_never_used(self, usage_report):
        """The Section 5 observation: usage is sparse, so pruning is free."""
        assert usage_report.prunable_fraction() > 0.0

    def test_every_layer_uses_at_least_one_prototype(self, usage_report):
        for layer in usage_report.layers:
            assert layer.used >= 1

    def test_usage_matrix_dimensions(self, usage_report):
        matrix = usage_matrix(usage_report)
        assert matrix.shape[0] == len(usage_report.layers)
        assert matrix.shape[1] >= 1

    def test_pruning_preserves_lut_outputs(self, trained_resnet_d, usage_report):
        """Pruned LUTs keep exactly the columns the live prototypes need."""
        model = trained_resnet_d.model
        luts = build_model_luts(model)
        layer_usage = {layer.name: layer.counts for layer in usage_report.layers}
        for name, lut in list(luts.items())[:3]:
            pruned = lut.prune_dead_prototypes(layer_usage[name])
            for j in range(lut.num_groups):
                kept = pruned.kept_indices[j]
                np.testing.assert_array_equal(pruned.tables[j], lut.table[j][:, kept])

    def test_pruning_saves_memory(self, trained_resnet_d, usage_report):
        luts = build_model_luts(trained_resnet_d.model)
        layer_usage = {layer.name: layer.counts for layer in usage_report.layers}
        savings = [luts[name].prune_dead_prototypes(layer_usage[name]).memory_saving_fraction()
                   for name in luts]
        assert max(savings) > 0.0


def test_bench_fig6_report(benchmark, trained_resnet_d, usage_report):
    """Benchmark CAM inference (the usage-collection workhorse) and print Fig. 6."""
    _, test = make_dataset("cifar10", num_train=8, num_test=16, image_size=16)
    engine = CAMInferenceEngine(trained_resnet_d.model)
    benchmark(lambda: engine.predict(test.images[:4]))

    rows = [{
        "layer": layer.name,
        "p": layer.num_prototypes,
        "used_group0": layer.used_in_group(0),
        "used_total": layer.used,
        "dead_total": layer.dead,
    } for layer in usage_report.layers]
    print("\n" + format_table(
        rows, columns=["layer", "p", "used_group0", "used_total", "dead_total"],
        headers=["Layer", "p", "Used (group 0)", "Used (all groups)", "Dead (all groups)"],
        title="Fig. 6 — prototype call frequencies, PECAN-D ResNet-20 (micro scale)"))
    print(f"\nOverall prunable fraction: {usage_report.prunable_fraction():.2%}")
