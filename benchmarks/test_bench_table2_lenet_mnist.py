"""Bench E1 — Table 2 / Appendix Table A2: LeNet5 on MNIST.

Two parts:

* **Op counts (exact, paper scale)** — the per-layer and total #Add./#Mul. of
  Table A2 / Table 2 recomputed from the actual LeNet5 architecture with the
  appendix PQ settings.  These equal the published numbers.
* **Accuracy (measured, reduced scale)** — baseline / PECAN-A / PECAN-D
  trained on the synthetic MNIST stand-in with the micro budget.  The paper's
  shape (baseline ≥ PECAN-A ≥ PECAN-D, all close) is asserted; absolute values
  differ from the paper's 99.41 / 99.25 / 99.01 because the dataset and budget
  are substitutes (see EXPERIMENTS.md).
"""

import pytest

from repro.hardware.opcount import count_model_ops, format_count
from repro.models import build_model
from repro.experiments.tables import format_table

from bench_utils import MICRO_EPOCHS, micro_run

#: Table 2 reference values (paper).
PAPER_TABLE2 = {
    "Baseline": {"adds": 248_096, "muls": 248_096, "accuracy": 99.41},
    "PECAN-A": {"adds": 196_880, "muls": 196_880, "accuracy": 99.25},
    "PECAN-D": {"adds": 1_998_064, "muls": 0, "accuracy": 99.01},
}


@pytest.fixture(scope="module")
def paper_scale_op_reports(rng):
    return {
        "Baseline": count_model_ops(build_model("lenet5", rng=rng), (1, 28, 28)),
        "PECAN-A": count_model_ops(build_model("lenet5_pecan_a", rng=rng), (1, 28, 28)),
        "PECAN-D": count_model_ops(build_model("lenet5_pecan_d", rng=rng), (1, 28, 28)),
    }


class TestTable2OpCounts:
    def test_totals_match_paper_exactly(self, paper_scale_op_reports):
        for method, expected in PAPER_TABLE2.items():
            report = paper_scale_op_reports[method]
            assert report.additions == expected["adds"], method
            assert report.multiplications == expected["muls"], method

    def test_pecan_a_has_fewer_ops_than_baseline(self, paper_scale_op_reports):
        assert (paper_scale_op_reports["PECAN-A"].multiplications
                < paper_scale_op_reports["Baseline"].multiplications)

    def test_pecan_d_multiplier_free(self, paper_scale_op_reports):
        assert paper_scale_op_reports["PECAN-D"].multiplications == 0

    def test_per_layer_counts_match_table_a2(self, paper_scale_op_reports):
        rows = {name: ops for name, _, ops, *_ in
                [(r.name, r.kind, r.ops) for r in paper_scale_op_reports["PECAN-D"].records]}
        assert rows["features.0"].additions == 784_160      # CONV1 784.16K
        assert rows["features.3"].additions == 1_130_624    # CONV2 1.13M
        assert rows["classifier.0"].additions == 57_600     # FC1 57.60K
        assert rows["classifier.2"].additions == 17_408     # FC2 17.41K
        assert rows["classifier.4"].additions == 8_272      # FC3 8.27K


@pytest.fixture(scope="module")
def micro_accuracy_results(micro_mnist_config):
    return {
        "Baseline": micro_run(micro_mnist_config, "lenet5", MICRO_EPOCHS["baseline"]),
        "PECAN-A": micro_run(micro_mnist_config, "lenet5_pecan_a", MICRO_EPOCHS["pecan_a"]),
        "PECAN-D": micro_run(micro_mnist_config, "lenet5_pecan_d", MICRO_EPOCHS["pecan_d"]),
    }


@pytest.mark.slow
class TestTable2AccuracyShape:
    def test_all_variants_learn(self, micro_accuracy_results):
        for method, result in micro_accuracy_results.items():
            assert result.accuracy > 0.4, f"{method} failed to learn"

    def test_baseline_is_best_or_tied(self, micro_accuracy_results):
        best = max(r.accuracy for r in micro_accuracy_results.values())
        assert micro_accuracy_results["Baseline"].accuracy >= best - 0.05

    def test_pecan_variants_within_reach_of_baseline(self, micro_accuracy_results):
        baseline = micro_accuracy_results["Baseline"].accuracy
        assert micro_accuracy_results["PECAN-A"].accuracy >= baseline - 0.20
        assert micro_accuracy_results["PECAN-D"].accuracy >= baseline - 0.25


@pytest.mark.slow
def test_bench_table2_report(benchmark, paper_scale_op_reports, micro_accuracy_results):
    """Print the reproduced Table 2 and benchmark the op-count computation."""
    def compute():
        return count_model_ops(build_model("lenet5_pecan_d"), (1, 28, 28))

    benchmark(compute)

    rows = []
    for method in ("Baseline", "PECAN-A", "PECAN-D"):
        report = paper_scale_op_reports[method]
        result = micro_accuracy_results[method]
        rows.append({
            "model": method,
            "adds": format_count(report.additions),
            "muls": format_count(report.multiplications),
            "acc": round(result.accuracy * 100, 2),
            "paper_adds": format_count(PAPER_TABLE2[method]["adds"]),
            "paper_acc": PAPER_TABLE2[method]["accuracy"],
        })
    print("\n" + format_table(
        rows, columns=["model", "adds", "muls", "acc", "paper_adds", "paper_acc"],
        headers=["Model", "#Add.", "#Mul.", "Acc.% (micro)", "#Add. (paper)", "Acc.% (paper)"],
        title="Table 2 — LeNet on MNIST (op counts exact; accuracy at micro scale)"))
