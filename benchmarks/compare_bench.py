#!/usr/bin/env python
"""Diff freshly generated ``BENCH_*.json`` files against committed baselines.

CI's bench-smoke job regenerates the serving benchmarks' JSON artifacts in
the working tree; the committed versions (``git show HEAD:BENCH_x.json``)
are the baselines recorded when the corresponding PR landed.  This script
walks both trees, pulls out every comparable scalar metric (throughput and
latency percentiles), and renders a GitHub-flavoured markdown table suitable
for ``$GITHUB_STEP_SUMMARY``.

Regressions beyond ``--threshold`` (default 20%) are flagged with a warning
row and an exit-status-independent ``::warning::`` annotation — the job stays
green (shared CI runners are far too noisy to gate merges on wall-clock
numbers), but the table makes a real regression impossible to miss.

Usage::

    python benchmarks/compare_bench.py [--threshold 0.2] [--baseline-ref HEAD]

Run from the repository root (where the BENCH_*.json files live).
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path
from typing import Dict, Iterator, Tuple

#: Scalar leaves worth comparing across runs.  ``higher_is_better`` keys flag
#: a regression when the fresh value drops; the latency keys when it rises.
HIGHER_IS_BETTER = {"requests_per_s", "samples_per_s", "throughput_rps",
                    "images_per_s", "speedup", "scaling_vs_1"}
LOWER_IS_BETTER = {"p50_ms", "p95_ms", "p99_ms", "mean_ms", "latency_ms"}
COMPARABLE = HIGHER_IS_BETTER | LOWER_IS_BETTER


def walk_metrics(tree: object, prefix: str = "") -> Iterator[Tuple[str, str, float]]:
    """Yield ``(path, key, value)`` for every comparable numeric leaf."""
    if not isinstance(tree, dict):
        return
    for key, value in tree.items():
        path = f"{prefix}.{key}" if prefix else key
        if isinstance(value, dict):
            yield from walk_metrics(value, path)
        elif key in COMPARABLE and isinstance(value, (int, float)) \
                and not isinstance(value, bool):
            yield path, key, float(value)


def baseline_json(ref: str, name: str) -> Dict:
    """The committed version of ``name`` at ``ref`` (empty if absent)."""
    try:
        blob = subprocess.run(["git", "show", f"{ref}:{name}"],
                              capture_output=True, check=True)
        return json.loads(blob.stdout.decode("utf-8"))
    except (subprocess.CalledProcessError, ValueError):
        return {}


def compare_file(path: Path, ref: str, threshold: float):
    fresh = json.loads(path.read_text())
    base = baseline_json(ref, path.name)
    base_metrics = {metric_path: value
                    for metric_path, _, value in walk_metrics(base)}
    rows = []
    regressions = []
    for metric_path, key, value in walk_metrics(fresh):
        old = base_metrics.get(metric_path)
        if old is None or old == 0:
            continue
        change = (value - old) / old
        regressed = (change < -threshold if key in HIGHER_IS_BETTER
                     else change > threshold)
        marker = " ⚠️" if regressed else ""
        rows.append((metric_path, old, value, change, marker))
        if regressed:
            regressions.append((path.name, metric_path, old, value, change))
    return rows, regressions


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--threshold", type=float, default=0.20,
                        help="relative change flagged as a regression")
    parser.add_argument("--baseline-ref", default="HEAD",
                        help="git ref holding the baseline BENCH_*.json files")
    parser.add_argument("--glob", default="BENCH_*.json")
    args = parser.parse_args(argv)

    files = sorted(Path(".").glob(args.glob))
    if not files:
        print("no BENCH_*.json files found — nothing to compare")
        return 0

    all_regressions = []
    print("## Benchmark comparison vs committed baselines\n")
    print(f"Baseline ref: `{args.baseline_ref}` · warn threshold: "
          f"±{args.threshold:.0%} (non-blocking)\n")
    for path in files:
        rows, regressions = compare_file(path, args.baseline_ref,
                                         args.threshold)
        all_regressions.extend(regressions)
        print(f"### {path.name}\n")
        if not rows:
            print("_no comparable baseline metrics (new benchmark?)_\n")
            continue
        print("| metric | baseline | fresh | change |")
        print("|---|---:|---:|---:|")
        for metric_path, old, new, change, marker in rows:
            print(f"| `{metric_path}` | {old:g} | {new:g} | "
                  f"{change:+.1%}{marker} |")
        print()

    if all_regressions:
        print(f"\n**{len(all_regressions)} metric(s) regressed beyond "
              f"{args.threshold:.0%}** (CI runners are noisy — treat as a "
              f"hint, not a verdict):\n")
        for name, metric_path, old, new, change in all_regressions:
            print(f"- {name}: `{metric_path}` {old:g} → {new:g} ({change:+.1%})")
            # GitHub annotation (shows on the workflow run, never fails it).
            sys.stderr.write(f"::warning title=bench regression::{name} "
                             f"{metric_path} {old:g} -> {new:g} "
                             f"({change:+.1%})\n")
    else:
        print("\nNo regressions beyond the threshold. ✅")
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:              # |head etc. — not an error
        sys.exit(0)
