"""Bench PR5 — zero-downtime rollout: serving throughput through a lifecycle.

A PECAN-D toy network is served by a 2-worker
:class:`~repro.serve.pool.PoolServer` under the same closed-loop multi-client
load as the PR4 pool bench, with workers paced to the paper's Section 4.3
accelerator cost model (so the numbers reflect the deployment shape the
paper implies — host dispatching to CAM hardware — and are stable on small
CI hosts).  Three phases run back to back **without restarting the pool**:

* **steady** — baseline traffic against the active version;
* **rollout** — the same load while a second (bitwise-identical) bundle
  version is deployed, 25% of traffic is mirrored through the candidate and
  the :class:`~repro.serve.lifecycle.RolloutGate` judges it to promotion;
* **post_promote** — traffic after the candidate became the active version.

The bench asserts the lifecycle's two contracts under load: **zero failed
requests** in every phase (a deploy is not an outage) and **bitwise-stable
outputs** (every response equals the direct single-process engine's, before,
during and after the rollout).  Throughput during the rollout is recorded —
the canary fraction temporarily mirrors 25% of requests through a second
engine, so some headroom is spent buying the parity proof.

Results land in ``BENCH_PR5.json``.  Budgets are env-tunable so the CI
bench-smoke job can run a tiny version::

    REPRO_BENCH_WINDOW_S=0.5 PYTHONPATH=src \
        python -m pytest benchmarks/test_bench_rollout.py -q
"""

from __future__ import annotations

import json
import os
import platform
import shutil
import threading
import time
from pathlib import Path

import numpy as np

from repro.io import export_deployment_bundle
from repro.nn import Conv2d, Flatten, Linear, MaxPool2d, ReLU, Sequential
from repro.pecan.config import PQLayerConfig
from repro.pecan.convert import convert_to_pecan
from repro.serve import BundleEngine, PoolServer, ServeClient
from repro.serve.server import _AcceleratorPacer

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_PR5.json"

WINDOW_S = float(os.environ.get("REPRO_BENCH_WINDOW_S", "1.6"))
CLIENTS = 6
WORKERS = 2
CANARY_FRACTION = 0.25
IMAGE = 12
IN_CHANNELS = 3
#: Modeled accelerator latency per sample (Section 4.3 pacing).
ACCEL_SECONDS_PER_SAMPLE = 0.006


def build_bundle(tmp_path: Path) -> Path:
    rng = np.random.default_rng(0)
    cfg = PQLayerConfig(num_prototypes=8, mode="distance", temperature=0.5)
    spatial = (IMAGE - 2) // 2
    model = Sequential(
        Conv2d(IN_CHANNELS, 16, 3, rng=rng), ReLU(), MaxPool2d(2), Flatten(),
        Linear(16 * spatial * spatial, 32, rng=rng), ReLU(),
        Linear(32, 10, rng=rng),
    )
    pecan = convert_to_pecan(model, cfg, rng=rng)
    return export_deployment_bundle(pecan, tmp_path / "rollout_v1.npz",
                                    input_shape=(IN_CHANNELS, IMAGE, IMAGE))


def run_load(url: str, images: np.ndarray, expected: np.ndarray,
             window_s: float):
    """Closed-loop load: CLIENTS threads fire singles for ``window_s``;
    every response is checked bitwise against the reference engine."""
    stop_at = time.monotonic() + window_s
    latencies_ms = []
    errors = []
    mismatches = [0]
    lock = threading.Lock()

    def worker(offset: int):
        client = ServeClient(url, timeout_s=60.0)
        i = offset
        while time.monotonic() < stop_at:
            index = i % len(images)
            started = time.monotonic()
            try:
                outputs = client.predict(images[index:index + 1], model="m")
            except Exception as exc:            # noqa: BLE001 - recorded below
                with lock:
                    errors.append(repr(exc))
                return
            elapsed = (time.monotonic() - started) * 1e3
            with lock:
                latencies_ms.append(elapsed)
                if not np.array_equal(outputs, expected[index:index + 1]):
                    mismatches[0] += 1
            i += CLIENTS

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(CLIENTS)]
    started = time.monotonic()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.monotonic() - started
    return latencies_ms, elapsed, errors, mismatches[0]


def summarize(latencies_ms, elapsed, errors, mismatches):
    ordered = sorted(latencies_ms)

    def pct(q):
        if not ordered:
            return 0.0
        return round(ordered[min(int(q * len(ordered)), len(ordered) - 1)], 3)

    return {
        "requests": len(latencies_ms),
        "window_s": round(elapsed, 3),
        "requests_per_s": round(len(latencies_ms) / elapsed, 1) if elapsed else 0.0,
        "p50_ms": pct(0.50),
        "p95_ms": pct(0.95),
        "errors": len(errors),
        "output_mismatches": mismatches,
    }


def test_bench_rollout_lifecycle(tmp_path):
    bundle = build_bundle(tmp_path)
    candidate = tmp_path / "rollout_v2.npz"
    shutil.copyfile(bundle, candidate)        # identical → bitwise parity

    probe_engine = BundleEngine(bundle)
    rng = np.random.default_rng(1)
    images = rng.standard_normal((32, IN_CHANNELS, IMAGE, IMAGE))
    expected = probe_engine.predict(images)
    probe_engine.predict(np.zeros((1, IN_CHANNELS, IMAGE, IMAGE)))
    pacer = _AcceleratorPacer(probe_engine, hz=1.0)
    per_sample_cycles = pacer._cycles()
    hardware_hz = per_sample_cycles / ACCEL_SECONDS_PER_SAMPLE

    pool = PoolServer(port=0, workers=WORKERS, policy="least_outstanding",
                      heartbeat_interval_s=0.1, heartbeat_timeout_s=5.0,
                      max_wait_ms=2.0, hardware_hz=hardware_hz)
    pool.add_bundle(bundle, name="m")
    pool.start()
    assert pool.wait_ready(180.0), "pool never became ready"
    results = {}
    try:
        client = ServeClient(pool.url, timeout_s=60.0)

        # Phase 1: steady state.
        results["steady"] = summarize(*run_load(pool.url, images, expected,
                                                WINDOW_S))

        # Phase 2: the same load while a canary rollout runs to promotion.
        def deploy_soon():
            time.sleep(min(0.2, WINDOW_S / 4))
            client.deploy("m", str(candidate),
                          canary_fraction=CANARY_FRACTION,
                          min_samples=8)

        deployer = threading.Thread(target=deploy_soon)
        deployer.start()
        results["rollout"] = summarize(*run_load(pool.url, images, expected,
                                                 WINDOW_S))
        deployer.join(60.0)
        deadline = time.monotonic() + 60.0
        rollout_state = None
        while time.monotonic() < deadline:
            rollout_state = client.admin_status()["rollouts"].get("m")
            if rollout_state and rollout_state["state"] == "promoted":
                break
            # Feed the gate if the window was too small to finish it.
            client.predict(images[:1], model="m")
            time.sleep(0.02)
        assert rollout_state and rollout_state["state"] == "promoted", \
            f"rollout never promoted: {rollout_state}"
        results["gate"] = rollout_state["gate"]

        # Phase 3: after promotion (the candidate is now active).
        results["post_promote"] = summarize(*run_load(pool.url, images,
                                                      expected, WINDOW_S))
        restarts = pool.restarts_total
    finally:
        pool.stop(drain=True)

    payload = {
        "bench": "zero-downtime rollout lifecycle (PR5)",
        "platform": platform.machine(),
        "cpu_count": os.cpu_count(),
        "config": {
            "clients": CLIENTS,
            "workers": WORKERS,
            "window_s": WINDOW_S,
            "canary_fraction": CANARY_FRACTION,
            "image": [IN_CHANNELS, IMAGE, IMAGE],
            "accel_seconds_per_sample": ACCEL_SECONDS_PER_SAMPLE,
            "hardware_hz": round(hardware_hz, 1),
        },
        "results": results,
    }
    RESULT_PATH.write_text(json.dumps(payload, indent=2))
    print(json.dumps(payload, indent=2))

    # The lifecycle contracts under load:
    for phase in ("steady", "rollout", "post_promote"):
        assert results[phase]["errors"] == 0, (phase, results[phase])
        assert results[phase]["output_mismatches"] == 0, (phase, results[phase])
        assert results[phase]["requests"] > 0
    assert results["gate"]["parity_violations"] == 0
    assert restarts == 0, "a rollout must not cost a worker restart"
    # The canary mirrors 25% of requests through a second engine; paced to
    # the accelerator model the pool has headroom, so the rollout phase must
    # retain most of the steady-state throughput.
    assert (results["rollout"]["requests_per_s"]
            >= 0.5 * results["steady"]["requests_per_s"]), results
