"""Bench E7 — Fig. 5: flattened features, PECAN-D reconstruction and codebooks.

Fig. 5 shows, for the convolution layers of VGG-Small, the im2col feature
matrix, its PECAN-D quantized approximation and the learned codebook.  The
paper's point is qualitative: even with a limited number of prototypes the
quantized feature maps preserve the basic patterns.

This bench converts a (briefly trained) VGG-Small into PECAN-D, extracts the
three matrices for every convolution layer, verifies that the reconstruction
error is bounded (the quantized matrix is genuinely built from codebook
columns and tracks the original features better than a zero/mean baseline
would) and prints ASCII renderings of one panel.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.analysis import visualize_layer_quantization
from repro.analysis.visualization import ascii_heatmap
from repro.data import make_dataset
from repro.experiments import run_experiment
from repro.experiments.tables import format_table

#: Micro-training driven figure reproduction: excluded from the fast tier
#: (`pytest -m "not slow"`); run explicitly or in the full benchmark pass.
pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def trained_pecan_vgg(micro_cifar10_config):
    """A briefly trained PECAN-D VGG-Small (enough for meaningful codebooks)."""
    config = replace(micro_cifar10_config, arch="vgg_small_pecan_d", epochs=4)
    return run_experiment(config)


@pytest.fixture(scope="module")
def panels(trained_pecan_vgg):
    _, test = make_dataset("cifar10", num_train=8, num_test=8, image_size=16)
    return visualize_layer_quantization(trained_pecan_vgg.model, test.images[:2])


class TestFig5:
    def test_one_panel_per_conv_layer(self, panels):
        assert len(panels) == 6        # VGG-Small has six convolution layers

    def test_quantized_matrix_built_from_codebook_columns(self, panels):
        panel = panels[0]
        prototypes = panel.codebook.T
        for column in panel.quantized.T[:20]:
            distances = np.abs(prototypes - column).sum(axis=1)
            assert distances.min() == pytest.approx(0.0, abs=1e-9)

    def test_reconstruction_tracks_features(self, panels):
        """Quantization must beat the trivial all-zeros reconstruction."""
        for panel in panels:
            zero_error = np.abs(panel.features).mean()
            assert panel.reconstruction_error < zero_error

    def test_relative_error_bounded(self, panels):
        for panel in panels:
            assert panel.relative_error < 1.0

    def test_shapes_consistent(self, panels):
        for panel in panels:
            assert panel.features.shape == panel.quantized.shape
            assert panel.codebook.shape[0] == panel.features.shape[0]


def test_bench_fig5_report(benchmark, panels):
    """Benchmark panel extraction bookkeeping and print the Fig. 5 summary."""
    benchmark(lambda: [p.reconstruction_error for p in panels])
    rows = [{
        "layer": panel.layer_name,
        "subvector_dim": panel.features.shape[0],
        "positions": panel.features.shape[1],
        "prototypes": panel.codebook.shape[1],
        "rel_error": round(panel.relative_error, 3),
    } for panel in panels]
    print("\n" + format_table(
        rows, columns=["layer", "subvector_dim", "positions", "prototypes", "rel_error"],
        headers=["Layer", "d", "HoutWout (shown)", "p", "Relative l1 error"],
        title="Fig. 5 — feature vs PECAN-D reconstruction (first codebook group)"))
    panel = panels[0]
    print("\nconv1 input features (im2col, group 0):")
    print(ascii_heatmap(panel.features, width=64, height=panel.features.shape[0]))
    print("conv1 PECAN-D reconstruction:")
    print(ascii_heatmap(panel.quantized, width=64, height=panel.quantized.shape[0]))
    print("conv1 codebook (columns = prototypes):")
    print(ascii_heatmap(panel.codebook, width=min(64, panel.codebook.shape[1] * 2),
                        height=panel.codebook.shape[0]))
