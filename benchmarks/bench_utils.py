"""Helpers shared by the benchmark modules (importable, unlike conftest.py)."""

from __future__ import annotations

from dataclasses import replace

from repro.experiments import ExperimentConfig, run_experiment
from repro.experiments.runner import ExperimentResult

#: Per-variant epoch budgets for the micro accuracy runs.  The paper itself
#: trains the two variants for different lengths (150 epochs for PECAN-A, 300
#: for PECAN-D on CIFAR); at micro scale the angle variant needs the longer
#: schedule while the distance variant converges (and costs) more per epoch.
MICRO_EPOCHS = {"baseline": 8, "pecan_a": 25, "pecan_d": 8}


def micro_run(config: ExperimentConfig, arch: str, epochs: int, **overrides) -> ExperimentResult:
    """Run one reduced-scale experiment (accuracy rows of the table benches)."""
    return run_experiment(replace(config, arch=arch, epochs=epochs, **overrides))
