"""Bench PR10 — elasticity & federation: the pool that sizes itself.

Two legs, both against the Section 4.3 paced accelerator cost model so
capacity is worker-bound (not host-CPU-bound):

* **ramp** — one elastic :class:`PoolServer` (autoscaler enabled,
  envelope 1..4) is hammered by closed-loop clients.  Sustained queue
  pressure must double the pool up to the ceiling (1 → 2 → 4), the
  4-worker plateau must deliver a real multiple of one worker's paced
  capacity, and when the load stops the idle dwell must walk the pool
  back down to the floor (4 → 3 → 2 → 1).  Every response along the
  whole ramp is verified bitwise against the reference engine; the
  contract is zero failed requests and zero mismatches while the worker
  set churns underneath the traffic.
* **federation** — two single-worker pools behind a :class:`FrontRouter`.
  Mid-load, the member that owns the model's namespace is stopped
  outright.  Connection-level failures fail over to the survivor
  (timeouts are never retried), so the contract is zero client-visible
  failures, zero mismatches, and ``failovers_total >= 1``.

Results land in ``BENCH_PR10.json`` (leaf keys ``requests_per_s`` /
``p50_ms`` / ``p95_ms`` / ``p99_ms`` line up with
``benchmarks/compare_bench.py``).  Budgets are env-tunable so the CI
scale-smoke job can run a tiny version::

    REPRO_BENCH_WINDOW_S=0.5 PYTHONPATH=src \
        python -m pytest benchmarks/test_bench_autoscale.py -q
"""

from __future__ import annotations

import json
import os
import platform
import threading
import time
from pathlib import Path

import numpy as np

from repro.io import export_deployment_bundle
from repro.nn import Conv2d, Flatten, Linear, MaxPool2d, ReLU, Sequential
from repro.pecan.config import PQLayerConfig
from repro.pecan.convert import convert_to_pecan
from repro.serve import BundleEngine, FrontRouter, PoolServer, ServeClient
from repro.serve.config import ServeConfig
from repro.serve.server import _AcceleratorPacer

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_PR10.json"

WINDOW_S = float(os.environ.get("REPRO_BENCH_WINDOW_S", "2.0"))
MAX_WORKERS = 4
HAMMERS = 16
#: Per-sample accelerator latency: one worker serves ~62 requests/s, so
#: 16 closed-loop clients sustain the queue depth the autoscaler needs
#: and the 4-worker plateau (~250 requests/s) is worker-bound.
ACCEL_SECONDS_PER_SAMPLE = 0.016
ONE_WORKER_RPS = 1.0 / ACCEL_SECONDS_PER_SAMPLE
UNIQUE_BODIES = 64
IMAGE = 10
IN_CHANNELS = 1


def build_bundle(tmp_path: Path) -> Path:
    rng = np.random.default_rng(0)
    cfg = PQLayerConfig(num_prototypes=4, mode="distance", temperature=0.5)
    model = Sequential(
        Conv2d(IN_CHANNELS, 4, 3, rng=rng), ReLU(), MaxPool2d(2), Flatten(),
        Linear(4 * 4 * 4, 6, rng=rng),
    )
    pecan = convert_to_pecan(model, cfg, rng=rng)
    return export_deployment_bundle(pecan, tmp_path / "m.npz",
                                    input_shape=(IN_CHANNELS, IMAGE, IMAGE))


def calibrate_hardware_hz(bundle: Path) -> float:
    calibration = BundleEngine(bundle)
    calibration.predict(np.zeros((1, IN_CHANNELS, IMAGE, IMAGE)))
    hardware_hz = (_AcceleratorPacer(calibration, hz=1.0)._cycles()
                   / ACCEL_SECONDS_PER_SAMPLE)
    assert hardware_hz > 0
    return hardware_hz


def wait_for(predicate, timeout_s=120.0, interval_s=0.05):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval_s)
    return predicate()


class Hammer:
    """Closed-loop clients verifying every response bitwise.

    ``cases`` is a list of ``(input, expected_logits)`` pairs; each thread
    cycles through them from its own offset so the stream stays unique
    enough that the PR8 response cache cannot absorb the load (the pools
    under test disable it anyway — the autoscaler must see real work).
    """

    def __init__(self, url: str, cases, model: str, threads: int):
        self.url, self.cases, self.model = url, cases, model
        self.stop = threading.Event()
        self.lock = threading.Lock()
        self.completed = 0
        self.failures: list = []
        self.mismatches = 0
        self.latencies_ms: list = []
        self.threads = [threading.Thread(target=self._run, args=(offset,))
                        for offset in range(threads)]

    def _run(self, offset: int):
        client = ServeClient(self.url, timeout_s=120.0)
        index = offset
        while not self.stop.is_set():
            x, expected = self.cases[index % len(self.cases)]
            index += 1
            started = time.monotonic()
            try:
                outputs = client.predict(x, model=self.model)
            except Exception as exc:    # noqa: BLE001 - collected for report
                with self.lock:
                    self.failures.append(repr(exc))
                continue
            elapsed_ms = (time.monotonic() - started) * 1e3
            ok = np.array_equal(np.asarray(outputs), expected)
            with self.lock:
                self.completed += 1
                self.latencies_ms.append(elapsed_ms)
                if not ok:
                    self.mismatches += 1

    def start(self):
        for thread in self.threads:
            thread.start()
        return self

    def join(self):
        self.stop.set()
        for thread in self.threads:
            thread.join(60.0)

    def count(self) -> int:
        with self.lock:
            return self.completed

    def percentiles(self) -> dict:
        with self.lock:
            lat = np.asarray(self.latencies_ms, dtype=float)
        if not lat.size:
            return {"p50_ms": 0.0, "p95_ms": 0.0, "p99_ms": 0.0}
        return {name: round(float(np.percentile(lat, q)), 3)
                for name, q in (("p50_ms", 50), ("p95_ms", 95),
                                ("p99_ms", 99))}


def measure_rps(hammer: Hammer, window_s: float) -> float:
    before = hammer.count()
    time.sleep(window_s)
    return round((hammer.count() - before) / window_s, 1)


def run_ramp_leg(bundle: Path, hardware_hz: float, cases) -> dict:
    config = ServeConfig.build(
        port=0, workers=1, max_wait_ms=1.0,
        **{"engine.hardware_hz": hardware_hz,
           "pool.heartbeat_interval_s": 0.1,
           "cache.cache_mb": 0.0,        # every request really executes
           "autoscale.enabled": True,
           "autoscale.max_workers": MAX_WORKERS,
           "autoscale.up_dwell_s": 0.2,
           "autoscale.cooldown_s": 0.3,
           "autoscale.down_idle_s": 0.4,
           "autoscale.up_queue_per_worker": 1.0})
    pool = PoolServer(config=config)
    pool.add_bundle(bundle, name="m")
    with pool:
        assert pool.wait_ready(180.0), "pool never became ready"
        ready = lambda: len(pool.ready_workers())   # noqa: E731

        hammer = Hammer(pool.url, cases, "m", HAMMERS).start()
        ramp_started = time.monotonic()
        try:
            grew = wait_for(lambda: ready() >= MAX_WORKERS)
            ramp_up_s = time.monotonic() - ramp_started
            assert grew, (f"queue pressure never grew the pool to "
                          f"{MAX_WORKERS} (ready={ready()})")
            peak_rps = measure_rps(hammer, max(WINDOW_S, 0.5))
            peak_ready = ready()
        finally:
            hammer.join()

        shrink_started = time.monotonic()
        shrank = wait_for(lambda: ready() == 1 and
                          len(pool.describe_pool()["workers"]) == 1)
        ramp_down_s = time.monotonic() - shrink_started
        assert shrank, f"idle pool never shrank to the floor ({ready()})"
        # The shrunken pool still serves, bitwise identically.
        tail = ServeClient(pool.url, timeout_s=120.0)
        tail_x, tail_expected = cases[0]
        np.testing.assert_array_equal(
            np.asarray(tail.predict(tail_x, model="m")), tail_expected)
        autoscale = pool.metrics_snapshot()["autoscale"]

    leg = {
        "requests": hammer.count(),
        "requests_per_s": peak_rps,
        "failures": len(hammer.failures),
        "mismatches": hammer.mismatches,
        "peak_ready_workers": peak_ready,
        "ramp_up_s": round(ramp_up_s, 3),
        "ramp_down_s": round(ramp_down_s, 3),
        "scale_ups": autoscale["scale_ups"],
        "scale_downs": autoscale["scale_downs"],
        "reasons": sorted({event["reason"]
                           for event in autoscale["events"]}),
        "failure_sample": hammer.failures[:3],
    }
    leg.update(hammer.percentiles())
    return leg


def run_federation_leg(bundle: Path, cases) -> dict:
    pools = []
    for _ in range(2):
        pool = PoolServer(config=ServeConfig.build(
            port=0, workers=1, max_wait_ms=1.0,
            **{"pool.heartbeat_interval_s": 0.1,
               "cache.cache_mb": 0.0}))
        pool.add_bundle(bundle, name="m")
        pool.start()
        assert pool.wait_ready(180.0)
        pools.append(pool)
    # A deliberately lazy prober: the kill must be discovered by live
    # traffic (connection refused → failover hop), not papered over by a
    # background health probe re-routing between requests.
    front = FrontRouter(ServeConfig.build(
        port=0,
        **{"federation.members": tuple(f"127.0.0.1:{p.port}"
                                       for p in pools),
           "federation.probe_interval_s": 30.0})).start()
    try:
        victim_url = front.route_for("m")[0].url
        victim = next(p for p in pools
                      if f"127.0.0.1:{p.port}" == victim_url)
        survivor = next(p for p in pools if p is not victim)

        #: Enough completions that the kill lands mid-stream either side.
        chunk = max(30, int(60 * WINDOW_S))
        hammer = Hammer(front.url, cases, "m", 8).start()
        try:
            assert wait_for(lambda: hammer.count() >= chunk)
            before_kill = hammer.count()
            victim.stop()
            killed_at = time.monotonic()
            assert wait_for(lambda: hammer.count() >= before_kill + chunk)
            recovered_s = time.monotonic() - killed_at
        finally:
            hammer.join()
        leg = {
            "requests": hammer.count(),
            "completed_before_kill": before_kill,
            "failures": len(hammer.failures),
            "mismatches": hammer.mismatches,
            "failovers_total": front.failovers_total,
            "recovered_chunk_s": round(recovered_s, 3),
            "survivor_proxied": front.members[
                f"127.0.0.1:{survivor.port}"].proxied,
            "failure_sample": hammer.failures[:3],
        }
        leg.update(hammer.percentiles())
        return leg
    finally:
        front.stop()
        for pool in pools:
            try:
                pool.stop()
            except Exception:   # noqa: BLE001 - victim is already down
                pass


def test_bench_autoscale(tmp_path):
    bundle = build_bundle(tmp_path)
    engine = BundleEngine(bundle)
    rng = np.random.default_rng(1)
    cases = []
    for _ in range(UNIQUE_BODIES):
        x = rng.standard_normal((1, IN_CHANNELS, IMAGE, IMAGE))
        cases.append((x, engine.predict(x)))
    hardware_hz = calibrate_hardware_hz(bundle)

    ramp = run_ramp_leg(bundle, hardware_hz, cases)
    federation = run_federation_leg(bundle, cases)

    payload = {
        "bench": "elastic pool ramp + federation failover (PR10)",
        "platform": platform.machine(),
        "cpu_count": os.cpu_count(),
        "config": {
            "max_workers": MAX_WORKERS,
            "hammers": HAMMERS,
            "unique_bodies": UNIQUE_BODIES,
            "window_s": WINDOW_S,
            "accel_seconds_per_sample": ACCEL_SECONDS_PER_SAMPLE,
            "one_worker_capacity_rps": round(ONE_WORKER_RPS, 1),
            "hardware_hz": round(hardware_hz, 1),
        },
        "results": {"ramp": ramp, "federation": federation},
    }
    RESULT_PATH.write_text(json.dumps(payload, indent=2))
    print(json.dumps(payload, indent=2))

    # Contract 1: the ramp reached the ceiling and came back to the floor
    # with zero failed requests and bitwise-identical outputs throughout.
    assert ramp["peak_ready_workers"] == MAX_WORKERS
    assert ramp["failures"] == 0, ramp["failure_sample"]
    assert ramp["mismatches"] == 0
    assert ramp["scale_ups"] >= 2 and ramp["scale_downs"] >= 3
    assert "queue-pressure" in ramp["reasons"]

    # Contract 2: elasticity delivered real capacity — the 4-worker
    # plateau beats what one paced worker can possibly serve.
    assert ramp["requests_per_s"] > 1.5 * ONE_WORKER_RPS, ramp

    # Contract 3: killing the owning member mid-load lost nothing the
    # front could retry — zero client-visible failures, bitwise parity,
    # and at least one recorded failover hop.
    assert federation["failures"] == 0, federation["failure_sample"]
    assert federation["mismatches"] == 0
    assert federation["failovers_total"] >= 1
    assert federation["requests"] >= federation["completed_before_kill"] + 30
