"""Bench PR7 — the observability plane must be (near-)free.

The same paced 2-worker pool as the QoS bench is driven by closed-loop
clients twice:

* **tracing_off** — ``trace_enabled=False``, ``invariant_every=0``: the
  pre-PR7 stack.
* **tracing_on** — the PR7 defaults: per-request spans at every hop into
  the in-memory rings, plus the invariant monitor at its default 1-in-16
  sampling rate.

The contracts: with tracing and runtime verification on at defaults,
throughput and p50 stay within 10% of the tracing-off run (plus a small
absolute term so sub-ms noise on tiny CI windows cannot flake it), and
outputs for a fixed input are bitwise identical in both modes — the
observability plane observes, it never perturbs.

Results land in ``BENCH_PR7.json``.  Budgets are env-tunable so the CI
bench-smoke job can run a tiny version::

    REPRO_BENCH_WINDOW_S=0.5 PYTHONPATH=src \
        python -m pytest benchmarks/test_bench_trace.py -q
"""

from __future__ import annotations

import json
import os
import platform
import threading
import time
from pathlib import Path

import numpy as np

from repro.io import export_deployment_bundle
from repro.nn import Conv2d, Flatten, Linear, MaxPool2d, ReLU, Sequential
from repro.pecan.config import PQLayerConfig
from repro.pecan.convert import convert_to_pecan
from repro.serve import BundleEngine, PoolServer, ServeClient
from repro.serve.server import _AcceleratorPacer

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_PR7.json"

WINDOW_S = float(os.environ.get("REPRO_BENCH_WINDOW_S", "2.0"))
CLIENTS = 4
SAMPLES_PER_REQUEST = 3
#: Per-sample accelerator latency (Section 4.3 pacing) — capacity is
#: ``workers / ACCEL_SECONDS_PER_SAMPLE`` samples/s, stable on any CI host.
ACCEL_SECONDS_PER_SAMPLE = 0.006
WORKERS = 2
IMAGE = 12
IN_CHANNELS = 3


def build_bundle(tmp_path: Path) -> Path:
    rng = np.random.default_rng(0)
    cfg = PQLayerConfig(num_prototypes=8, mode="distance", temperature=0.5)
    spatial = (IMAGE - 2) // 2
    model = Sequential(
        Conv2d(IN_CHANNELS, 16, 3, rng=rng), ReLU(), MaxPool2d(2), Flatten(),
        Linear(16 * spatial * spatial, 32, rng=rng), ReLU(),
        Linear(32, 10, rng=rng),
    )
    pecan = convert_to_pecan(model, cfg, rng=rng)
    return export_deployment_bundle(pecan, tmp_path / "trace.npz",
                                    input_shape=(IN_CHANNELS, IMAGE, IMAGE))


def pct(ordered, q):
    if not ordered:
        return 0.0
    return round(ordered[min(int(q * len(ordered)), len(ordered) - 1)], 3)


def run_closed_loop(url: str, images: np.ndarray, window_s: float):
    """Closed-loop clients, no think time: the pacing bounds throughput, so
    any per-request bookkeeping overhead shows up directly in the numbers."""
    stop_at = time.monotonic() + window_s
    latencies_ms = []
    errors = []
    lock = threading.Lock()

    def worker(offset: int):
        client = ServeClient(url, timeout_s=60.0, backoff_retries=0,
                             transient_retries=0)
        i = offset
        while time.monotonic() < stop_at:
            index = i % (len(images) - SAMPLES_PER_REQUEST)
            started = time.monotonic()
            try:
                client.predict(images[index:index + SAMPLES_PER_REQUEST],
                               model="m", tenant=f"client-{offset}")
            except Exception as exc:            # noqa: BLE001 - recorded below
                with lock:
                    errors.append(repr(exc))
                return
            elapsed = (time.monotonic() - started) * 1e3
            with lock:
                latencies_ms.append(elapsed)
            i += 1

    threads = [threading.Thread(target=worker, args=(i,))
               for i in range(CLIENTS)]
    started = time.monotonic()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = max(time.monotonic() - started, 1e-9)
    ordered = sorted(latencies_ms)
    return {
        "requests": len(latencies_ms),
        "samples_per_s": round(len(latencies_ms) * SAMPLES_PER_REQUEST
                               / elapsed, 1),
        "p50_ms": pct(ordered, 0.50),
        "p95_ms": pct(ordered, 0.95),
        "p99_ms": pct(ordered, 0.99),
        "errors": len(errors),
    }


def run_mode(bundle: Path, images: np.ndarray, probe: np.ndarray,
             hardware_hz: float, *, traced: bool):
    pool = PoolServer(
        port=0, workers=WORKERS, policy="round_robin",
        heartbeat_interval_s=0.1, heartbeat_timeout_s=5.0, max_wait_ms=2.0,
        hardware_hz=hardware_hz,
        trace_enabled=traced,
        invariant_every=16 if traced else 0)
    pool.add_bundle(bundle, name="m")
    pool.start()
    assert pool.wait_ready(180.0), "pool never became ready"
    try:
        warm = ServeClient(pool.url, timeout_s=60.0)
        for _ in range(4):
            warm.predict(images[:1], model="m")
        result = run_closed_loop(pool.url, images, WINDOW_S)
        # The fixed probe's logits, for the bitwise-identity contract.
        outputs = warm.predict(probe, model="m")
        metrics = pool.metrics_snapshot()
        result["trace"] = {
            "enabled": metrics["trace"]["enabled"],
            "spans_finished": metrics["trace"]["spans_finished"],
        }
        result["runtime_verification"] = {
            "enabled": metrics["runtime_verification"]["enabled"],
            "checks": metrics["runtime_verification"]["checks"],
            "violations": metrics["runtime_verification"]["violations"],
        }
    finally:
        pool.stop(drain=True)
    return result, outputs


def test_bench_trace(tmp_path):
    bundle = build_bundle(tmp_path)
    probe_engine = BundleEngine(bundle)
    rng = np.random.default_rng(1)
    images = rng.standard_normal((32, IN_CHANNELS, IMAGE, IMAGE))
    probe = images[:2]
    reference = probe_engine.predict(probe)
    pacer = _AcceleratorPacer(probe_engine, hz=1.0)
    hardware_hz = pacer._cycles() / ACCEL_SECONDS_PER_SAMPLE

    off, outputs_off = run_mode(bundle, images, probe, hardware_hz,
                                traced=False)
    on, outputs_on = run_mode(bundle, images, probe, hardware_hz,
                              traced=True)

    throughput_ratio = (on["samples_per_s"] / off["samples_per_s"]
                        if off["samples_per_s"] else 0.0)
    p50_delta_ms = on["p50_ms"] - off["p50_ms"]
    payload = {
        "bench": "tracing + runtime verification overhead (PR7)",
        "platform": platform.machine(),
        "cpu_count": os.cpu_count(),
        "config": {
            "clients": CLIENTS,
            "samples_per_request": SAMPLES_PER_REQUEST,
            "workers": WORKERS,
            "window_s": WINDOW_S,
            "accel_seconds_per_sample": ACCEL_SECONDS_PER_SAMPLE,
            "hardware_hz": round(hardware_hz, 1),
            "invariant_every": 16,
        },
        "results": {
            "tracing_off": off,
            "tracing_on": on,
            "throughput_ratio_on_vs_off": round(throughput_ratio, 4),
            "p50_delta_ms": round(p50_delta_ms, 3),
            "outputs_bitwise_identical": bool(
                np.array_equal(outputs_off, outputs_on)),
        },
    }
    RESULT_PATH.write_text(json.dumps(payload, indent=2))
    print(json.dumps(payload, indent=2))

    assert off["errors"] == 0 and on["errors"] == 0

    # Contract 1: the traced run really traced (and verified) something.
    assert not off["trace"]["enabled"] and on["trace"]["enabled"]
    assert on["trace"]["spans_finished"] > 0
    assert on["runtime_verification"]["enabled"]
    assert on["runtime_verification"]["checks"] > 0
    assert on["runtime_verification"]["violations"] == 0

    # Contract 2: observing is (near-)free — within 10% on throughput and
    # p50 (plus a 1 ms absolute term for sub-ms noise on tiny CI windows).
    assert on["samples_per_s"] >= 0.9 * off["samples_per_s"], (off, on)
    assert on["p50_ms"] <= 1.1 * off["p50_ms"] + 1.0, (off, on)

    # Contract 3: the plane never perturbs the data path — bitwise-identical
    # logits with tracing on, off, and against the in-process reference.
    np.testing.assert_array_equal(outputs_off, outputs_on)
    np.testing.assert_array_equal(outputs_on, reference)
