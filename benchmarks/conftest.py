"""Shared fixtures and helpers for the benchmark harness.

Every benchmark module regenerates one table or figure of the paper.  Two
kinds of quantities appear:

* **Analytic op counts** (the #Add. / #Mul. columns) — computed at *paper
  scale* with the exact architectures and Appendix A2/A3 settings, so these
  match the published numbers (see EXPERIMENTS.md for the comparison).
* **Accuracies** — measured by actually training on the synthetic datasets at
  a reduced scale (`micro_*` fixtures below).  Absolute values differ from the
  paper (different data, tiny budget) but the comparison shape is checked.

Run with ``pytest benchmarks/ --benchmark-only``.  Each module prints its
reproduced table so the output can be compared against the paper side by side.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.experiments import ExperimentConfig


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    return np.random.default_rng(0)


@pytest.fixture(scope="session")
def micro_mnist_config() -> ExperimentConfig:
    """Reduced-scale LeNet/MNIST run (Table 2 accuracy column)."""
    return ExperimentConfig(dataset="mnist", arch="lenet5", width_multiplier=1.0,
                            image_size=20, num_train=256, num_test=128, batch_size=32,
                            epochs=8, learning_rate=0.01, lr_decay_step=6, seed=0,
                            prototype_cap=32)


@pytest.fixture(scope="session")
def micro_cifar10_config() -> ExperimentConfig:
    """Reduced-scale VGG-Small/CIFAR-10 run (Tables 3/5/6 accuracy columns)."""
    return ExperimentConfig(dataset="cifar10", arch="vgg_small", width_multiplier=0.0625,
                            image_size=16, num_train=192, num_test=96, batch_size=32,
                            epochs=6, learning_rate=0.003, lr_decay_step=10, seed=0,
                            prototype_cap=8)


@pytest.fixture(scope="session")
def micro_cifar100_config(micro_cifar10_config) -> ExperimentConfig:
    """Reduced-scale CIFAR-100 run (Table 4).

    The micro preset uses a 20-class subset of the synthetic CIFAR-100
    distribution (chance level 5 %) so the accuracy shape is measurable within
    the CPU budget; the op-count assertions of the Table 4 bench still use the
    full 100-class architecture.
    """
    return replace(micro_cifar10_config, dataset="cifar100", num_classes=20,
                   num_train=300, num_test=100)
