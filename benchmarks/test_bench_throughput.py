"""Bench PR1 — fused/streaming CAM engine throughput vs the seed per-group loop.

A medium deployment workload (a ResNet-ish two-conv PECAN block at batch 32)
is run through :class:`~repro.cam.inference.CAMInferenceEngine` twice: once on
the fused fast path (compiled kernel / batched BLAS with position chunking)
and once on the seed per-group reference loop.  The bench asserts

* element-wise agreement between the two paths (``atol=1e-10``; the compiled
  PECAN-D kernel is in fact bitwise-identical),
* a minimum speedup that depends on which kernel is active (≥ 5× for the
  compiled kernel, which is the configuration this repository ships on),
* bounded peak memory for the streamed fused path,

and records throughput (images/s), speedups, peak-memory numbers and the
active kernel per layer into ``BENCH_PR1.json`` at the repository root so the
next change has a regression baseline.  Run it alone with::

    PYTHONPATH=src python -m pytest benchmarks/test_bench_throughput.py -q
"""

import json
import platform
import tracemalloc
from pathlib import Path

import numpy as np
import pytest

from repro.cam.inference import CAMInferenceEngine
from repro.nn.layers import ReLU
from repro.nn.sequential import Sequential
from repro.pecan.config import PQLayerConfig
from repro.pecan.layers import PECANConv2d
from repro.perf import ChunkPolicy, measure_throughput
from repro.perf.ckernels import kernel_available

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_PR1.json"

#: Medium config: two 3×3 PECAN convs (32→64→64 channels) on 16×16 inputs.
BATCH = 32
IMAGE = 16
CHANNELS = (32, 64, 64)
PROTOTYPES = 16

#: Minimum acceptable fused-vs-reference speedup per active kernel kind.
MIN_SPEEDUP = {"ckernel": 5.0, "cdist": 1.5, "blas": 0.8, "numpy": 0.0}


def build_block(rng, mode):
    temperature = 1.0 if mode == "angle" else 0.5
    cfg = PQLayerConfig(num_prototypes=PROTOTYPES, mode=mode, temperature=temperature)
    c0, c1, c2 = CHANNELS
    return Sequential(
        PECANConv2d(c0, c1, 3, cfg, padding=1, rng=rng), ReLU(),
        PECANConv2d(c1, c2, 3, cfg, padding=1, rng=rng), ReLU(),
    )


def measure_mode(rng, mode, repeats=3):
    model = build_block(rng, mode)
    x = rng.standard_normal((BATCH, CHANNELS[0], IMAGE, IMAGE))

    engine = CAMInferenceEngine(model)
    kernels = {name: rt.kernel_name for name, rt in engine.runtimes.items()}
    fused_out = engine.predict(x)
    fused = measure_throughput(lambda: engine.predict(x), f"{mode}/fused",
                               items_per_run=BATCH, repeats=repeats)

    engine.use_fused = False
    reference_out = engine.predict(x)
    reference = measure_throughput(lambda: engine.predict(x), f"{mode}/reference",
                                   items_per_run=BATCH, repeats=repeats)
    engine.use_fused = True

    np.testing.assert_allclose(fused_out, reference_out, atol=1e-10)

    # Peak-memory probes (tracemalloc tracks NumPy's allocations).
    tracemalloc.start()
    engine.predict(x)
    _, fused_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    streamed = CAMInferenceEngine(model, chunk_policy=ChunkPolicy(max_bytes=8 * 2 ** 20))
    streamed_out = streamed.predict(x, batch_chunk=8)
    if mode == "distance":
        np.testing.assert_array_equal(streamed_out, fused_out)
    else:
        # BLAS GEMMs may block differently per operand shape, so the angle
        # path is only guaranteed equal to floating-point round-off.
        np.testing.assert_allclose(streamed_out, fused_out, atol=1e-10)
    tracemalloc.start()
    streamed.predict(x, batch_chunk=8)
    _, streamed_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    return {
        "kernels": kernels,
        "fused": fused.to_dict(),
        "reference": reference.to_dict(),
        "speedup": fused.speedup_over(reference),
        "fused_peak_bytes": fused_peak,
        "streamed_peak_bytes": streamed_peak,
    }


@pytest.fixture(scope="module")
def throughput_results(rng):
    results = {mode: measure_mode(rng, mode) for mode in ("distance", "angle")}
    payload = {
        "bench": "PR1 fused group kernels + streaming CAM inference",
        "config": {
            "batch": BATCH, "image": IMAGE, "channels": list(CHANNELS),
            "num_prototypes": PROTOTYPES,
        },
        "machine": {
            "platform": platform.platform(),
            "machine": platform.machine(),
            "compiled_kernel": kernel_available(),
        },
        "modes": results,
    }
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    return results


class TestThroughput:
    def test_results_recorded(self, throughput_results):
        assert RESULT_PATH.exists()
        stored = json.loads(RESULT_PATH.read_text())
        assert set(stored["modes"]) == {"distance", "angle"}

    def test_distance_speedup_meets_floor(self, throughput_results):
        result = throughput_results["distance"]
        kernel_kinds = set(result["kernels"].values())
        floor = min(MIN_SPEEDUP[kind] for kind in kernel_kinds)
        assert result["speedup"] >= floor, (
            f"fused PECAN-D path is only {result['speedup']:.2f}x faster than the "
            f"seed per-group loop (kernels: {result['kernels']}, floor {floor}x)")

    def test_angle_not_regressed(self, throughput_results):
        assert throughput_results["angle"]["speedup"] >= MIN_SPEEDUP["blas"]

    def test_streamed_peak_memory_bounded(self, throughput_results):
        result = throughput_results["distance"]
        # The batch-8 streamed pass must not allocate more transient memory
        # than the full-batch fused pass did.
        assert result["streamed_peak_bytes"] <= max(result["fused_peak_bytes"],
                                                    8 * 2 ** 20)


def test_bench_throughput_report(benchmark, throughput_results):
    """Expose images/s of the fused PECAN-D path to the benchmark harness."""
    d = throughput_results["distance"]
    print("\nBench PR1 — CAM inference throughput (batch %d)" % BATCH)
    for mode, result in throughput_results.items():
        print(f"  {mode:9s}  fused {result['fused']['items_per_second']:9.1f} img/s"
              f"  reference {result['reference']['items_per_second']:9.1f} img/s"
              f"  speedup {result['speedup']:5.2f}x  kernels {result['kernels']}")
    benchmark(lambda: d["speedup"])
