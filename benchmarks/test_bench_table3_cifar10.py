"""Bench E2 — Table 3 / Appendix Table A3: VGG-Small and ResNet-20/32 on CIFAR-10.

* **Op counts (exact, paper scale)** — the #Add./#Mul. columns for all three
  architectures with the Appendix Table A3 PQ settings.  VGG-Small and the
  ResNet baselines/PECAN-A match the published values to the printed
  precision; ResNet PECAN-D lands within a few percent (see EXPERIMENTS.md).
* **Accuracy (measured, reduced scale)** — VGG-Small baseline / PECAN-A /
  PECAN-D trained on the synthetic CIFAR-10 stand-in at micro scale; the
  qualitative shape (PECAN-A competitive with the baseline, PECAN-D learns but
  trails) is asserted.
"""

import pytest

from repro.hardware.opcount import count_model_ops, format_count
from repro.models import build_model
from repro.experiments.tables import format_table

from bench_utils import micro_run

#: Table 3 reference values (paper), in raw operation counts.
PAPER_TABLE3 = {
    "VGG-Small": {
        "Baseline": (0.61e9, 0.61e9, 91.21),
        "PECAN-A": (0.54e9, 0.54e9, 91.82),
        "PECAN-D": (0.37e9, 0.0, 90.19),
    },
    "ResNet20": {
        "Baseline": (40.55e6, 40.55e6, 92.55),
        "PECAN-A": (38.12e6, 38.12e6, 90.32),
        "PECAN-D": (211.71e6, 0.0, 87.88),
    },
    "ResNet32": {
        "Baseline": (68.86e6, 68.86e6, 92.85),
        "PECAN-A": (64.20e6, 64.20e6, 90.53),
        "PECAN-D": (353.26e6, 0.0, 88.46),
    },
}

ARCH_KEYS = {"VGG-Small": "vgg_small", "ResNet20": "resnet20", "ResNet32": "resnet32"}
SUFFIX = {"Baseline": "", "PECAN-A": "_pecan_a", "PECAN-D": "_pecan_d"}


@pytest.fixture(scope="module")
def paper_scale_counts(rng):
    counts = {}
    for family, arch in ARCH_KEYS.items():
        counts[family] = {}
        for method, suffix in SUFFIX.items():
            report = count_model_ops(build_model(arch + suffix, rng=rng), (3, 32, 32))
            counts[family][method] = report
    return counts


class TestTable3OpCounts:
    @pytest.mark.parametrize("family", list(PAPER_TABLE3))
    def test_baseline_and_pecan_a_match_paper(self, paper_scale_counts, family):
        for method in ("Baseline", "PECAN-A"):
            paper_adds, paper_muls, _ = PAPER_TABLE3[family][method]
            report = paper_scale_counts[family][method]
            assert abs(report.multiplications - paper_muls) / paper_muls < 0.01, (family, method)

    @pytest.mark.parametrize("family", list(PAPER_TABLE3))
    def test_pecan_d_multiplier_free_and_additions_close(self, paper_scale_counts, family):
        paper_adds, _, _ = PAPER_TABLE3[family]["PECAN-D"]
        report = paper_scale_counts[family]["PECAN-D"]
        assert report.multiplications == 0
        assert abs(report.additions - paper_adds) / paper_adds < 0.05, family

    def test_pecan_a_always_cheaper_than_baseline(self, paper_scale_counts):
        for family in PAPER_TABLE3:
            assert (paper_scale_counts[family]["PECAN-A"].multiplications
                    < paper_scale_counts[family]["Baseline"].multiplications), family

    def test_resnet32_larger_than_resnet20(self, paper_scale_counts):
        assert (paper_scale_counts["ResNet32"]["Baseline"].multiplications
                > paper_scale_counts["ResNet20"]["Baseline"].multiplications)


@pytest.fixture(scope="module")
def micro_vgg_results(micro_cifar10_config):
    return {
        "Baseline": micro_run(micro_cifar10_config, "vgg_small", 6),
        "PECAN-A": micro_run(micro_cifar10_config, "vgg_small_pecan_a", 15),
        "PECAN-D": micro_run(micro_cifar10_config, "vgg_small_pecan_d", 15),
    }


@pytest.mark.slow
class TestTable3AccuracyShape:
    def test_baseline_learns_well(self, micro_vgg_results):
        assert micro_vgg_results["Baseline"].accuracy > 0.5

    def test_pecan_a_competitive_with_baseline(self, micro_vgg_results):
        """The paper's headline VGG finding: PECAN-A matches or beats the baseline."""
        assert (micro_vgg_results["PECAN-A"].accuracy
                >= micro_vgg_results["Baseline"].accuracy - 0.25)

    def test_pecan_d_learns_above_chance(self, micro_vgg_results):
        assert micro_vgg_results["PECAN-D"].accuracy > 0.25

    def test_pecan_d_has_zero_multiplications(self, micro_vgg_results):
        assert micro_vgg_results["PECAN-D"].multiplications == 0


@pytest.mark.slow
def test_bench_table3_report(benchmark, paper_scale_counts, micro_vgg_results):
    """Print the reproduced Table 3 and benchmark the VGG op-count computation."""
    benchmark(lambda: count_model_ops(build_model("vgg_small_pecan_d"), (3, 32, 32)))

    rows = []
    for family in PAPER_TABLE3:
        for method in ("Baseline", "PECAN-A", "PECAN-D"):
            report = paper_scale_counts[family][method]
            paper_adds, paper_muls, paper_acc = PAPER_TABLE3[family][method]
            accuracy = (round(micro_vgg_results[method].accuracy * 100, 2)
                        if family == "VGG-Small" else "-")
            rows.append({
                "model": family, "method": method,
                "adds": format_count(report.additions),
                "muls": format_count(report.multiplications),
                "acc_micro": accuracy,
                "paper_adds": format_count(paper_adds),
                "paper_acc": paper_acc,
            })
    print("\n" + format_table(
        rows, columns=["model", "method", "adds", "muls", "acc_micro", "paper_adds", "paper_acc"],
        headers=["Model", "Method", "#Add.", "#Mul.", "Acc.% (micro)", "#Add. (paper)",
                 "Acc.% (paper)"],
        title="Table 3 — CIFAR-10 (op counts exact at paper scale; accuracy micro, VGG only)"))
