"""Bench E4 — Table 5: comparison with AdderNet on VGG-Small.

Reproduces the full Table 5 from first principles:

* the operation counts of the three methods (CNN, AdderNet, PECAN-D) are
  recomputed from the actual VGG-Small architecture,
* the normalized power and latency columns follow the VIA Nano 2000 constants
  quoted by the paper (multiplication = 4 cycles / 4× adder energy, addition =
  2 cycles / 1×),
* the published values (8.24 / 3.30 / 1 normalized power; ~3.66G / 2.44G /
  0.72G cycles) are asserted within tolerance.
"""

import pytest

from repro.hardware.cost_model import VIA_NANO, comparison_table
from repro.hardware.opcount import count_model_ops
from repro.models import build_model
from repro.experiments.tables import format_table

#: Table 5 reference values (paper).
PAPER_TABLE5 = {
    "CNN": {"power": 8.24, "latency": 3.66e9, "muls": 0.61e9, "adds": 0.61e9},
    "AdderNet": {"power": 3.30, "latency": 2.44e9, "muls": 0.0, "adds": 1.22e9},
    "PECAN-D": {"power": 1.00, "latency": 0.72e9, "muls": 0.0, "adds": 0.37e9},
}


@pytest.fixture(scope="module")
def measured_ops(rng):
    """Operation counts of the three methods measured from the model zoo."""
    cnn = count_model_ops(build_model("vgg_small", rng=rng), (3, 32, 32)).total
    adder = count_model_ops(build_model("vgg_small", rng=rng), (3, 32, 32),
                            addernet=True).total
    pecan_d = count_model_ops(build_model("vgg_small_pecan_d", rng=rng), (3, 32, 32)).total
    return {"CNN": cnn, "AdderNet": adder, "PECAN-D": pecan_d}


@pytest.fixture(scope="module")
def table5_rows(measured_ops):
    return comparison_table(measured_ops, accuracies={"CNN": 93.80, "PECAN-D": 90.19},
                            model=VIA_NANO, reference="PECAN-D")


class TestTable5:
    def test_operation_counts_match_paper(self, measured_ops):
        for method, expected in PAPER_TABLE5.items():
            ops = measured_ops[method]
            assert abs(ops.additions - expected["adds"]) / expected["adds"] < 0.02, method
            if expected["muls"]:
                assert abs(ops.multiplications - expected["muls"]) / expected["muls"] < 0.02
            else:
                assert ops.multiplications == 0, method

    def test_normalized_power_matches_paper(self, table5_rows):
        power = {row["method"]: row["normalized_power"] for row in table5_rows}
        assert power["PECAN-D"] == pytest.approx(1.0)
        assert power["CNN"] == pytest.approx(PAPER_TABLE5["CNN"]["power"], abs=0.15)
        assert power["AdderNet"] == pytest.approx(PAPER_TABLE5["AdderNet"]["power"], abs=0.15)

    def test_latency_matches_paper(self, table5_rows):
        latency = {row["method"]: row["latency_cycles"] for row in table5_rows}
        for method, expected in PAPER_TABLE5.items():
            assert abs(latency[method] - expected["latency"]) / expected["latency"] < 0.05, method

    def test_pecan_d_wins_power_and_latency(self, table5_rows):
        latency = {row["method"]: row["latency_cycles"] for row in table5_rows}
        power = {row["method"]: row["normalized_power"] for row in table5_rows}
        assert latency["PECAN-D"] < latency["AdderNet"] < latency["CNN"]
        assert power["PECAN-D"] < power["AdderNet"] < power["CNN"]

    def test_addernet_has_double_additions_of_cnn(self, measured_ops):
        assert measured_ops["AdderNet"].additions == 2 * measured_ops["CNN"].additions


def test_bench_table5_report(benchmark, measured_ops, table5_rows):
    """Print the reproduced Table 5 and benchmark the cost-model evaluation."""
    benchmark(lambda: comparison_table(measured_ops, reference="PECAN-D"))

    rows = []
    for row in table5_rows:
        method = row["method"]
        rows.append({
            "method": method,
            "muls": row["mul_str"],
            "adds": row["add_str"],
            "acc": row["accuracy"] if row["accuracy"] is not None else "N.A.",
            "power": row["normalized_power"],
            "latency": row["latency_str"],
            "paper_power": PAPER_TABLE5[method]["power"],
        })
    print("\n" + format_table(
        rows, columns=["method", "muls", "adds", "acc", "power", "latency", "paper_power"],
        headers=["Method", "#Mul.", "#Add.", "Acc.%", "Norm. power", "Latency (cycles)",
                 "Power (paper)"],
        title="Table 5 — VGG-Small: CNN vs AdderNet vs PECAN-D (VIA Nano 2000 constants)"))
