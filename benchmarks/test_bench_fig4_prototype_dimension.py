"""Bench E6 — Fig. 4: accuracy of ResNet-20 vs the prototype dimension.

The paper varies the subvector dimension between ``k``, ``k²`` and ``cin`` for
both PECAN variants on ResNet-20/CIFAR-10 and observes that PECAN-A is robust
to the choice while PECAN-D degrades as the dimension grows.

At micro scale (tiny synthetic CIFAR, shrunk ResNet-20, prototype counts of
8/16) the absolute accuracies are far from the paper's, so the assertions here
are structural: the sweep covers every (mode, dimension) cell, the resulting
layers really use the requested dimensions (including the cross-channel
``d = cin`` grouping), additions shrink as the dimension grows for PECAN-D
(fewer ``D·cout`` accumulations), and PECAN-A's accuracy spread across
dimensions does not exceed PECAN-D's by the reporting tolerance — the paper's
robustness ordering.
"""


import pytest

from repro.analysis.ablation import prototype_dimension_sweep
from repro.experiments import ExperimentConfig
from repro.experiments.tables import format_table

#: Micro-training driven figure reproduction: excluded from the fast tier
#: (`pytest -m "not slow"`); run explicitly or in the full benchmark pass.
pytestmark = pytest.mark.slow

#: Fig. 4 reference accuracies read off the paper's bar chart (approximate).
PAPER_FIG4 = {
    ("angle", "k"): 89.8, ("angle", "k2"): 90.3, ("angle", "cin"): 88.9,
    ("distance", "k"): 89.4, ("distance", "k2"): 87.9, ("distance", "cin"): 80.5,
}


@pytest.fixture(scope="module")
def sweep_result():
    config = ExperimentConfig(dataset="cifar10", arch="resnet20", width_multiplier=0.125,
                              image_size=16, num_train=96, num_test=48, batch_size=32,
                              epochs=3, learning_rate=0.003, seed=0)
    return prototype_dimension_sweep(config, dimension_labels=("k", "k2", "cin"),
                                     modes=("angle", "distance"),
                                     num_prototypes={"angle": 8, "distance": 16})


class TestFig4Structure:
    def test_all_cells_present(self, sweep_result):
        cells = {(p.mode, p.dimension_label) for p in sweep_result.points}
        assert cells == {(m, d) for m in ("angle", "distance") for d in ("k", "k2", "cin")}

    def test_requested_dimensions_resolved(self, sweep_result):
        for point in sweep_result.points:
            assert point.subvector_dim_example in (3, 9, 16)

    def test_accuracies_are_valid(self, sweep_result):
        for point in sweep_result.points:
            assert 0.0 <= point.accuracy <= 1.0

    def test_distance_mode_multiplier_free_at_every_dimension(self, sweep_result):
        for point in sweep_result.points:
            if point.mode == "distance":
                assert point.multiplications == 0

    def test_distance_additions_decrease_from_k_to_k2(self, sweep_result):
        """Table 1: PECAN-D additions = D·HW·(2pd + cout); since D·d is fixed the
        search term is constant but the accumulation term D·cout shrinks as d
        grows from k to k².  (The cin case is excluded because at reduced width
        cin can be smaller than k², which flips the relation.)"""
        by_dim = {p.dimension_label: p.additions for p in sweep_result.points
                  if p.mode == "distance"}
        assert by_dim["k"] > by_dim["k2"]

    def test_angle_not_less_robust_than_distance(self, sweep_result):
        """Paper shape: PECAN-A's accuracy varies less across dimensions than PECAN-D."""
        spread = {}
        for mode in ("angle", "distance"):
            accs = list(sweep_result.accuracies_by_mode(mode).values())
            spread[mode] = max(accs) - min(accs)
        assert spread["angle"] <= spread["distance"] + 0.25


def test_bench_fig4_report(benchmark, sweep_result):
    """Print the reproduced Fig. 4 data; benchmark the sweep bookkeeping."""
    benchmark(lambda: sweep_result.accuracies_by_mode("angle"))
    rows = []
    for point in sweep_result.points:
        rows.append({
            "mode": "PECAN-A" if point.mode == "angle" else "PECAN-D",
            "dimension": point.dimension_label,
            "d_example": point.subvector_dim_example,
            "acc_micro": round(point.accuracy * 100, 2),
            "paper_acc": PAPER_FIG4[(point.mode, point.dimension_label)],
        })
    print("\n" + format_table(
        rows, columns=["mode", "dimension", "d_example", "acc_micro", "paper_acc"],
        headers=["Variant", "Dimension", "d (stem)", "Acc.% (micro)", "Acc.% (paper)"],
        title="Fig. 4 — prototype dimension ablation on ResNet-20 (micro scale)"))
