"""Bench PR2 — sustained serving throughput and latency of ``repro.serve``.

A PECAN-D toy network is exported to a deployment bundle and served by a
:class:`~repro.serve.server.PECANServer` (bundle-backed engine + dynamic
micro-batching + HTTP front end).  Eight concurrent closed-loop clients fire
single-sample ``/predict`` requests for a fixed wall-clock window at scheduler
batch budgets {1, 8, 32}; the bench records sustained requests/s and p50/p95
latency per configuration into ``BENCH_PR2.json`` at the repository root, and
asserts

* responses are bitwise-identical to a direct :class:`BundleEngine` pass,
* with a batch budget > 1 the dynamic batcher demonstrably coalesces
  concurrent singles (the batch-size histogram contains batches > 1),
* micro-batching at budget 32 sustains at least the req/s of budget 1
  (batching must never cost throughput).

Run it alone with::

    PYTHONPATH=src python -m pytest benchmarks/test_bench_serving.py -q
"""

from __future__ import annotations

import json
import os
import platform
import threading
import time
from pathlib import Path

import numpy as np
import pytest

from repro.io import export_deployment_bundle
from repro.nn import Conv2d, Flatten, Linear, MaxPool2d, ReLU, Sequential
from repro.pecan.config import PQLayerConfig
from repro.pecan.convert import convert_to_pecan
from repro.serve import BundleEngine, PECANServer, ServeClient

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_PR2.json"

BATCH_BUDGETS = (1, 8, 32)
CLIENTS = 8
#: Env-tunable so the CI bench-smoke job can run a tiny version.
WINDOW_S = float(os.environ.get("REPRO_BENCH_WINDOW_S", "1.5"))
IMAGE = 12
IN_CHANNELS = 3
PROTOTYPES = 8


def build_bundle(tmp_path: Path) -> Path:
    rng = np.random.default_rng(0)
    cfg = PQLayerConfig(num_prototypes=PROTOTYPES, mode="distance", temperature=0.5)
    spatial = (IMAGE - 2) // 2
    model = Sequential(
        Conv2d(IN_CHANNELS, 16, 3, rng=rng), ReLU(), MaxPool2d(2), Flatten(),
        Linear(16 * spatial * spatial, 32, rng=rng), ReLU(),
        Linear(32, 10, rng=rng),
    )
    pecan = convert_to_pecan(model, cfg, rng=rng)
    return export_deployment_bundle(pecan, tmp_path / "serving_bench.npz",
                                    input_shape=(IN_CHANNELS, IMAGE, IMAGE))


def run_load(client: ServeClient, images: np.ndarray, window_s: float):
    """Closed-loop load: CLIENTS workers fire singles for ``window_s``."""
    stop_at = time.monotonic() + window_s
    latencies_ms = []
    errors = []
    lock = threading.Lock()

    def worker(offset: int):
        i = offset
        while time.monotonic() < stop_at:
            sample = images[i % len(images):i % len(images) + 1]
            started = time.monotonic()
            try:
                client.predict(sample)
            except Exception as exc:            # noqa: BLE001 - recorded below
                with lock:
                    errors.append(repr(exc))
                return
            elapsed = (time.monotonic() - started) * 1e3
            with lock:
                latencies_ms.append(elapsed)
            i += CLIENTS

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(CLIENTS)]
    started = time.monotonic()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.monotonic() - started
    return latencies_ms, elapsed, errors


@pytest.fixture(scope="module")
def bench_results(tmp_path_factory):
    bundle_path = build_bundle(tmp_path_factory.mktemp("serving"))
    engine = BundleEngine(bundle_path)
    rng = np.random.default_rng(1)
    images = rng.standard_normal((64, IN_CHANNELS, IMAGE, IMAGE))
    expected = engine.predict(images[:4])

    results = {}
    for budget in BATCH_BUDGETS:
        server = PECANServer(port=0, max_batch_size=budget, max_wait_ms=4.0,
                             max_queue_depth=1024, audit_every=16)
        server.add_bundle(bundle_path, name="bench", preload=True)
        with server:
            client = ServeClient(server.url)
            assert client.wait_ready(10.0)
            # Parity spot-check through the full HTTP + batching stack.
            np.testing.assert_array_equal(client.predict(images[:4]), expected)
            latencies_ms, elapsed, errors = run_load(client, images, WINDOW_S)
            snapshot = server.metrics_snapshot()["server"]
        assert not errors, errors[:3]
        assert latencies_ms, "no requests completed"
        ordered = sorted(latencies_ms)
        results[f"max_batch_{budget}"] = {
            "max_batch_size": budget,
            "requests": len(latencies_ms),
            "window_s": round(elapsed, 3),
            "requests_per_s": round(len(latencies_ms) / elapsed, 1),
            "p50_ms": round(ordered[len(ordered) // 2], 3),
            "p95_ms": round(ordered[int(len(ordered) * 0.95) - 1], 3),
            "batch_histogram": snapshot["batching"]["histogram"],
            "mean_batch": round(snapshot["batching"]["mean_batch"], 2),
            "audits": snapshot["parity_audit"]["audits"],
            "audit_mismatches": snapshot["parity_audit"]["mismatches"],
        }
    return {
        "bench": "serving throughput/latency (PR2)",
        "platform": platform.processor() or platform.machine(),
        "config": {
            "clients": CLIENTS,
            "window_s": WINDOW_S,
            "image": [IN_CHANNELS, IMAGE, IMAGE],
            "prototypes": PROTOTYPES,
            "kernels": engine.kernel_names(),
        },
        "results": results,
    }


class TestServingBench:
    def test_parity_and_coalescing(self, bench_results):
        for budget in BATCH_BUDGETS:
            entry = bench_results["results"][f"max_batch_{budget}"]
            assert entry["audit_mismatches"] == 0
            sizes = [int(size) for size in entry["batch_histogram"]]
            # The parity spot-check submits one 4-sample request, which
            # legitimately dispatches alone even above a smaller budget.
            assert max(sizes) <= max(budget, 4)
        coalesced = bench_results["results"]["max_batch_32"]
        assert any(int(size) > 1 for size in coalesced["batch_histogram"]), \
            "dynamic batcher never coalesced concurrent singles"

    def test_batching_does_not_cost_throughput(self, bench_results):
        if WINDOW_S < 1.0:
            pytest.skip("smoke budget: the throughput floor needs a full "
                        "window to be meaningful (parity/coalescing asserted above)")
        unbatched = bench_results["results"]["max_batch_1"]["requests_per_s"]
        batched = bench_results["results"]["max_batch_32"]["requests_per_s"]
        # Generous floor: batching must be at least comparable (it is usually
        # ahead once per-request fixed costs dominate).  The floor is loose
        # because 1.5 s windows on a shared CI box see ±20% run-to-run noise;
        # BENCH_PR2.json records the actual numbers for human comparison.
        assert batched >= 0.6 * unbatched

    def test_results_recorded(self, bench_results):
        RESULT_PATH.write_text(json.dumps(bench_results, indent=2) + "\n")
        stored = json.loads(RESULT_PATH.read_text())
        assert set(stored["results"]) == {f"max_batch_{b}" for b in BATCH_BUDGETS}


def test_bench_serving_report(bench_results):
    print("\nBench PR2 — serving throughput (8 concurrent single-sample clients)")
    print(f"{'budget':>8} {'req/s':>10} {'p50 ms':>9} {'p95 ms':>9} {'mean batch':>11}")
    for budget in BATCH_BUDGETS:
        entry = bench_results["results"][f"max_batch_{budget}"]
        print(f"{budget:>8} {entry['requests_per_s']:>10} {entry['p50_ms']:>9} "
              f"{entry['p95_ms']:>9} {entry['mean_batch']:>11}")
