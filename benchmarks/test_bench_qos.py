"""Bench PR6 — QoS under mixed traffic: isolation, soak, and brownout.

A PECAN-D toy network is served by a 2-worker
:class:`~repro.serve.pool.PoolServer` with workers paced to the paper's
Section 4.3 accelerator cost model, and the QoS plane configured with a small
bulk-class budget (``batch_class_samples``).  Four phases:

* **interactive_baseline** — paced closed-loop interactive clients alone:
  the latency yardstick.
* **bulk_only** — :class:`~repro.serve.client.BulkScorer` jobs alone: what
  the pool's idle capacity is worth to offline scoring.
* **mixed** — both at once.  The contracts: interactive p99 stays within 2×
  its bulk-free baseline (the bulk budget bounds head-of-line blocking), and
  the bulk job still soaks at least half of the capacity interactive traffic
  leaves idle.
* **overload** — an unthrottled standard+batch burst.  The brownout
  controller must engage (transitions visible in ``/metrics``), shed only
  the lower classes, and leave **zero interactive errors**.

Results land in ``BENCH_PR6.json``.  Budgets are env-tunable so the CI
bench-smoke job can run a tiny version::

    REPRO_BENCH_WINDOW_S=0.5 PYTHONPATH=src \
        python -m pytest benchmarks/test_bench_qos.py -q
"""

from __future__ import annotations

import json
import os
import platform
import threading
import time
from pathlib import Path

import numpy as np

from repro.io import export_deployment_bundle
from repro.nn import Conv2d, Flatten, Linear, MaxPool2d, ReLU, Sequential
from repro.pecan.config import PQLayerConfig
from repro.pecan.convert import convert_to_pecan
from repro.serve import BundleEngine, PoolServer, QoSConfig, ServeClient
from repro.serve.client import BulkScorer
from repro.serve.server import _AcceleratorPacer

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_PR6.json"

WINDOW_S = float(os.environ.get("REPRO_BENCH_WINDOW_S", "2.0"))
INTERACTIVE_CLIENTS = 4
#: Per-sample accelerator latency (Section 4.3 pacing) — capacity is
#: ``workers / ACCEL_SECONDS_PER_SAMPLE`` samples/s, stable on any CI host.
ACCEL_SECONDS_PER_SAMPLE = 0.006
WORKERS = 2
BULK_SCORERS = 2
#: Bulk samples per scoring request.  A single request is never split
#: across micro-batches, so the chunk size — together with the per-batch
#: bulk budget below, which keeps a *second* chunk out of the same batch —
#: is the head-of-line blocking bound an interactive arrival can experience
#: behind bulk work.
BULK_CHUNK = 2
BATCH_CLASS_SAMPLES = 2
#: Interactive request size / pacing (closed loop with a think time).
INTERACTIVE_SAMPLES = 3
INTERACTIVE_THINK_S = 0.02
OVERLOAD_CLIENTS = 16
IMAGE = 12
IN_CHANNELS = 3


def build_bundle(tmp_path: Path) -> Path:
    rng = np.random.default_rng(0)
    cfg = PQLayerConfig(num_prototypes=8, mode="distance", temperature=0.5)
    spatial = (IMAGE - 2) // 2
    model = Sequential(
        Conv2d(IN_CHANNELS, 16, 3, rng=rng), ReLU(), MaxPool2d(2), Flatten(),
        Linear(16 * spatial * spatial, 32, rng=rng), ReLU(),
        Linear(32, 10, rng=rng),
    )
    pecan = convert_to_pecan(model, cfg, rng=rng)
    return export_deployment_bundle(pecan, tmp_path / "qos.npz",
                                    input_shape=(IN_CHANNELS, IMAGE, IMAGE))


def pct(ordered, q):
    if not ordered:
        return 0.0
    return round(ordered[min(int(q * len(ordered)), len(ordered) - 1)], 3)


def run_interactive(url: str, images: np.ndarray, window_s: float,
                    deadline_ms=None):
    """Closed-loop interactive clients: ``INTERACTIVE_SAMPLES`` per request
    at ``interactive`` priority, with a think time between requests."""
    stop_at = time.monotonic() + window_s
    latencies_ms = []
    errors = []
    lock = threading.Lock()

    def worker(offset: int):
        client = ServeClient(url, timeout_s=60.0, backoff_retries=0,
                             transient_retries=0)
        i = offset
        while time.monotonic() < stop_at:
            index = i % (len(images) - INTERACTIVE_SAMPLES)
            started = time.monotonic()
            try:
                client.predict(images[index:index + INTERACTIVE_SAMPLES],
                               model="m", priority="interactive",
                               tenant=f"online-{offset}",
                               deadline_ms=deadline_ms)
            except Exception as exc:            # noqa: BLE001 - recorded below
                with lock:
                    errors.append(repr(exc))
                return
            elapsed = (time.monotonic() - started) * 1e3
            with lock:
                latencies_ms.append(elapsed)
            i += 1
            time.sleep(INTERACTIVE_THINK_S)

    threads = [threading.Thread(target=worker, args=(i,))
               for i in range(INTERACTIVE_CLIENTS)]
    started = time.monotonic()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = max(time.monotonic() - started, 1e-9)
    ordered = sorted(latencies_ms)
    return {
        "requests": len(latencies_ms),
        "samples_per_s": round(len(latencies_ms) * INTERACTIVE_SAMPLES
                               / elapsed, 1),
        "p50_ms": pct(ordered, 0.50),
        "p95_ms": pct(ordered, 0.95),
        "p99_ms": pct(ordered, 0.99),
        "errors": len(errors),
    }


def run_bulk(url: str, images: np.ndarray, window_s: float):
    """BulkScorer jobs re-submitting the dataset until the window closes."""
    stop_at = time.monotonic() + window_s
    totals = {"samples": 0, "retries": 0, "backoff_s": 0.0}
    lock = threading.Lock()

    def worker(offset: int):
        scorer = BulkScorer(ServeClient(url, timeout_s=60.0,
                                        backoff_retries=0),
                            model="m", tenant=f"bulk-{offset}",
                            chunk_size=BULK_CHUNK)
        while time.monotonic() < stop_at:
            scorer.score(images)
        with lock:
            totals["samples"] += scorer.chunks_total * BULK_CHUNK
            totals["retries"] += scorer.retries_total
            totals["backoff_s"] += scorer.backoff_s_total

    threads = [threading.Thread(target=worker, args=(i,))
               for i in range(BULK_SCORERS)]
    started = time.monotonic()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = max(time.monotonic() - started, 1e-9)
    return {
        "samples": totals["samples"],
        "samples_per_s": round(totals["samples"] / elapsed, 1),
        "chunk_retries": totals["retries"],
        "backoff_s": round(totals["backoff_s"], 2),
    }


def run_overload(pool, images: np.ndarray, window_s: float):
    """Unthrottled standard+batch burst with interactive probes riding along;
    returns per-class outcomes and the brownout states observed."""
    stop_at = time.monotonic() + window_s
    shed = {"standard": 0, "batch": 0}
    lock = threading.Lock()
    states_seen = set()
    interactive = {"ok": 0, "errors": []}
    x = images[:1].tolist()

    def bulk_client(priority):
        import urllib.error
        import urllib.request
        body = json.dumps({"inputs": x, "model": "m", "priority": priority,
                           "tenant": "burst"}).encode()
        while time.monotonic() < stop_at:
            request = urllib.request.Request(
                f"{pool.url}/predict", data=body,
                headers={"Content-Type": "application/json"}, method="POST")
            try:
                with urllib.request.urlopen(request, timeout=30.0):
                    pass
            except urllib.error.HTTPError as exc:
                exc.read()
                with lock:
                    shed[priority] += 1
                time.sleep(0.01)
            except OSError:
                time.sleep(0.01)

    threads = [threading.Thread(target=bulk_client,
                                args=("batch" if i % 2 else "standard",))
               for i in range(OVERLOAD_CLIENTS)]
    for thread in threads:
        thread.start()
    client = ServeClient(pool.url, timeout_s=60.0, backoff_retries=0,
                         transient_retries=0)
    while time.monotonic() < stop_at:
        try:
            client.predict(images[:1], model="m", priority="interactive",
                           tenant="online")
            interactive["ok"] += 1
        except Exception as exc:                # noqa: BLE001 - the contract
            interactive["errors"].append(repr(exc))
        states_seen.add(pool.brownout.state)
        time.sleep(0.01)
    for thread in threads:
        thread.join()
    return {
        "interactive_ok": interactive["ok"],
        "interactive_errors": interactive["errors"],
        "shed_standard": shed["standard"],
        "shed_batch": shed["batch"],
        "brownout_states_seen": sorted(states_seen),
    }


def test_bench_qos(tmp_path):
    bundle = build_bundle(tmp_path)
    probe_engine = BundleEngine(bundle)
    rng = np.random.default_rng(1)
    images = rng.standard_normal((32, IN_CHANNELS, IMAGE, IMAGE))
    probe_engine.predict(np.zeros((1, IN_CHANNELS, IMAGE, IMAGE)))
    pacer = _AcceleratorPacer(probe_engine, hz=1.0)
    hardware_hz = pacer._cycles() / ACCEL_SECONDS_PER_SAMPLE

    pool = PoolServer(
        # Round-robin, not least_outstanding: a long-lived bulk chunk counts
        # the same as a quick interactive call in the outstanding tally, so
        # least_outstanding would occasionally pile every interactive client
        # onto one worker and fatten the p99 tail this bench measures.
        port=0, workers=WORKERS, policy="round_robin",
        heartbeat_interval_s=0.1, heartbeat_timeout_s=5.0, max_wait_ms=2.0,
        hardware_hz=hardware_hz,
        # Slots are sized so steady mixed traffic is never slot-limited (the
        # per-batch bulk budget does the isolation); queue_high is low enough
        # that the overload burst overflows the slots and engages the
        # brownout ladder.
        qos_config=QoSConfig(slots_per_worker=4, queue_high=2.0, alpha=0.7,
                             min_dwell_s=0.2, recover_at=0.5,
                             emergency_at=1e9,
                             batch_class_samples=BATCH_CLASS_SAMPLES))
    pool.add_bundle(bundle, name="m")
    pool.start()
    assert pool.wait_ready(180.0), "pool never became ready"
    results = {}
    try:
        warm = ServeClient(pool.url, timeout_s=60.0)
        for _ in range(4):
            warm.predict(images[:1], model="m")

        results["interactive_baseline"] = run_interactive(pool.url, images,
                                                          WINDOW_S)
        results["bulk_only"] = run_bulk(pool.url, images, WINDOW_S)

        mixed = {}

        def bulk_side():
            mixed["bulk"] = run_bulk(pool.url, images, WINDOW_S)

        bulk_thread = threading.Thread(target=bulk_side)
        bulk_thread.start()
        mixed["interactive"] = run_interactive(pool.url, images, WINDOW_S)
        bulk_thread.join()
        results["mixed"] = mixed

        results["overload"] = run_overload(pool, images, WINDOW_S)
        # Let the controller drain back to healthy; the recovery is part of
        # the published result.
        recovered = None
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            recovered = pool.metrics_snapshot()["qos"]["brownout"]["state"]
            if recovered == "healthy":
                break
            time.sleep(0.1)
        qos_metrics = pool.metrics_snapshot()["qos"]
        results["overload"]["recovered_state"] = recovered
        results["overload"]["brownout_transitions"] = \
            qos_metrics["brownout"]["transitions"]
        results["router_shed_by_class"] = \
            pool.metrics.snapshot()["qos"]["shed_by_class"]
    finally:
        pool.stop(drain=True)

    payload = {
        "bench": "QoS isolation, bulk soak and brownout (PR6)",
        "platform": platform.machine(),
        "cpu_count": os.cpu_count(),
        "config": {
            "interactive_clients": INTERACTIVE_CLIENTS,
            "interactive_samples": INTERACTIVE_SAMPLES,
            "bulk_scorers": BULK_SCORERS,
            "bulk_chunk": BULK_CHUNK,
            "batch_class_samples": BATCH_CLASS_SAMPLES,
            "overload_clients": OVERLOAD_CLIENTS,
            "workers": WORKERS,
            "window_s": WINDOW_S,
            "accel_seconds_per_sample": ACCEL_SECONDS_PER_SAMPLE,
            "hardware_hz": round(hardware_hz, 1),
        },
        "results": results,
    }
    RESULT_PATH.write_text(json.dumps(payload, indent=2))
    print(json.dumps(payload, indent=2))

    base = results["interactive_baseline"]
    mixed_interactive = results["mixed"]["interactive"]
    mixed_bulk = results["mixed"]["bulk"]
    assert base["errors"] == 0 and mixed_interactive["errors"] == 0

    # Contract 1: the bulk budget bounds interference — interactive p99 under
    # bulk pressure stays within 2x its bulk-free baseline (plus a small
    # absolute term so sub-ms noise on tiny CI windows cannot flake it).
    assert mixed_interactive["p99_ms"] <= 2.0 * base["p99_ms"] + 5.0, \
        (base, mixed_interactive)

    # Contract 2: bulk still soaks at least half of the idle capacity.
    # Conservation: what interactive traffic does not use of the bulk-only
    # throughput is the idle capacity on offer.
    idle = max(results["bulk_only"]["samples_per_s"]
               - mixed_interactive["samples_per_s"], 0.0)
    assert mixed_bulk["samples_per_s"] >= 0.5 * idle, \
        (results["bulk_only"], mixed)

    # Contract 3: overload sheds only the lower classes — zero interactive
    # errors — and the brownout controller's decisions are observable.
    overload = results["overload"]
    assert overload["interactive_errors"] == [], overload
    assert overload["interactive_ok"] > 0
    assert overload["shed_batch"] + overload["shed_standard"] > 0, overload
    # The controller engaged: visible in the /metrics transition log (the
    # probe's sampled states can miss a short excursion on tiny windows).
    assert any(t["to"] != "healthy"
               for t in overload["brownout_transitions"]), overload
    assert overload["recovered_state"] == "healthy", overload
    assert "interactive" not in results["router_shed_by_class"], \
        results["router_shed_by_class"]
