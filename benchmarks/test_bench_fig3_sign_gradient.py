"""Bench E9 — Fig. 3: the epoch-aware approximation of the sign gradient.

Regenerates the family of curves ``tanh(a·x)`` with ``a = exp(4·e/E)`` that
Fig. 3 plots for increasing training progress ``e/E``, checks their defining
properties (smooth early, sign-like late, monotone sharpening) and renders the
curve data as a small ASCII plot.
"""

import numpy as np
import pytest

from repro.analysis import sign_gradient_curves
from repro.analysis.visualization import ascii_heatmap
from repro.pecan.similarity import sign_gradient_scale

PROGRESS = (0.03, 0.2, 0.4, 0.6, 0.8, 1.0)


@pytest.fixture(scope="module")
def curves():
    return sign_gradient_curves(progress_ratios=PROGRESS, x_range=3.0, num_points=301)


class TestFig3Shape:
    def test_sharpness_schedule_endpoints(self):
        assert sign_gradient_scale(0, 100) == pytest.approx(1.0)
        assert sign_gradient_scale(100, 100) == pytest.approx(np.exp(4.0))

    def test_deviation_from_sign_decreases_with_progress(self, curves):
        deviations = [curve.max_deviation_from_sign for curve in curves]
        assert all(a >= b for a, b in zip(deviations, deviations[1:]))

    def test_final_curve_is_sign_like(self, curves):
        final = curves[-1]
        x = final.x[np.abs(final.x) > 0.25]
        y = final.y[np.abs(final.x) > 0.25]
        np.testing.assert_allclose(y, np.sign(x), atol=0.02)

    def test_early_curve_is_smooth_near_origin(self, curves):
        early = curves[0]
        slope = np.gradient(early.y, early.x)
        assert slope.max() < 1.5      # tanh(x) slope at 0 is ~1 for a ≈ 1

    def test_all_curves_odd_and_bounded(self, curves):
        for curve in curves:
            np.testing.assert_allclose(curve.y, -curve.y[::-1], atol=1e-12)
            assert np.abs(curve.y).max() <= 1.0


def test_bench_fig3_report(benchmark, curves):
    """Benchmark curve generation and print the Fig. 3 data summary."""
    benchmark(lambda: sign_gradient_curves(progress_ratios=PROGRESS))
    print("\nFig. 3 — sign-gradient surrogate tanh(a*x), a = exp(4 e/E):")
    print(f"{'e/E':>6} {'a':>8} {'max |tanh(ax) - sgn(x)|':>26}")
    for curve in curves:
        print(f"{curve.progress:>6.2f} {curve.sharpness:>8.3f} "
              f"{curve.max_deviation_from_sign:>26.4f}")
    stacked = np.stack([curve.y for curve in curves])
    print("\nASCII rendering (rows = increasing e/E, columns = x from -3 to 3):")
    print(ascii_heatmap(stacked, width=61, height=len(curves)))
