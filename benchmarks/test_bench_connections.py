"""Bench PR9 — connection scale: event-loop vs threaded network front end.

The same paced 2-worker pool (Section 4.3 accelerator cost model, cache
disabled so every request really executes) is driven at 32 / 128 / 512
concurrent **keep-alive** connections by the selectors-multiplexed
closed-loop driver :func:`repro.serve.loadgen.run_concurrent_load`, once
per front end:

* **eventloop** — the PR9 ``selectors`` front end: one loop thread owns
  every socket, a deep accept backlog absorbs the connect storm, and the
  bounded app-thread bridge keeps serving-plane concurrency at
  ``io_threads`` no matter how many connections are open.
* **threaded** — the legacy thread-per-connection stdlib server: its
  five-deep listen backlog stalls the connect storm, and every connection
  that does get in owns a serving thread, so admitted concurrency equals
  the connection count and blows through the QoS waiting room.

Contracts (the PR's acceptance criteria):

1. the event loop sustains all 512 clients — every connection established,
   zero errors, zero sheds;
2. its 512-client throughput is within 10% of its own 32-client rate
   (capacity-bound either way: more connections queue, they don't thrash);
3. every 200 response on both front ends is bitwise identical to the
   reference engine's logits (``mismatches == 0`` wherever requests
   complete);
4. the threaded baseline at 512 visibly degrades: request errors
   (429/503 storms once the waiting room overflows), or an accept stall
   that leaves part of the storm unconnected, or ≥10% throughput loss.

Results land in ``BENCH_PR9.json`` (leaf keys ``requests_per_s`` /
``p50_ms`` / ``p95_ms`` / ``p99_ms`` line up with
``benchmarks/compare_bench.py``).  Budgets are env-tunable so the CI
conn-smoke job can run a tiny version::

    REPRO_BENCH_WINDOW_S=0.5 PYTHONPATH=src \
        python -m pytest benchmarks/test_bench_connections.py -q
"""

from __future__ import annotations

import json
import os
import platform
from pathlib import Path

import numpy as np

from repro.io import export_deployment_bundle
from repro.nn import Conv2d, Flatten, Linear, MaxPool2d, ReLU, Sequential
from repro.pecan.config import PQLayerConfig
from repro.pecan.convert import convert_to_pecan
from repro.serve import BundleEngine, PoolServer, run_concurrent_load
from repro.serve.server import _AcceleratorPacer

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_PR9.json"

WINDOW_S = float(os.environ.get("REPRO_BENCH_WINDOW_S", "2.0"))
CONN_LEVELS = [32, 128, 512]
WORKERS = 2
UNIQUE_BODIES = 64
#: Per-sample accelerator latency — capacity is WORKERS / this, ~125
#: requests/s: slow enough that the paced pool (not the front end, and not
#: the host CPU — CI runners may have a single core) is the bottleneck at
#: every connection count, so the 512-vs-32 throughput ratio isolates
#: connection handling from compute.
ACCEL_SECONDS_PER_SAMPLE = 0.016
#: Paced pool capacity in requests/s (1 sample per request).
CAPACITY_RPS = WORKERS / ACCEL_SECONDS_PER_SAMPLE
IMAGE = 10
IN_CHANNELS = 1


def _raise_fd_limit(want: int = 4096) -> None:
    """512 client + 512 server sockets live in one process; make room."""
    try:
        import resource
        soft, hard = resource.getrlimit(resource.RLIMIT_NOFILE)
        if soft < want:
            resource.setrlimit(resource.RLIMIT_NOFILE,
                               (min(want, hard), hard))
    except (ImportError, ValueError, OSError):
        pass


def build_bundle(tmp_path: Path) -> Path:
    rng = np.random.default_rng(0)
    cfg = PQLayerConfig(num_prototypes=4, mode="distance", temperature=0.5)
    model = Sequential(
        Conv2d(IN_CHANNELS, 4, 3, rng=rng), ReLU(), MaxPool2d(2), Flatten(),
        Linear(4 * 4 * 4, 6, rng=rng),
    )
    pecan = convert_to_pecan(model, cfg, rng=rng)
    return export_deployment_bundle(pecan, tmp_path / "m.npz",
                                    input_shape=(IN_CHANNELS, IMAGE, IMAGE))


def start_pool(bundle: Path, hardware_hz: float, backend: str) -> PoolServer:
    pool = PoolServer(
        port=0, workers=WORKERS, policy="least_outstanding",
        heartbeat_interval_s=0.1, heartbeat_timeout_s=5.0,
        # Small batches keep the pacing quantum fine (8 × 16 ms = 128 ms):
        # worker throughput is unchanged, but completions stream instead of
        # arriving in half-second bursts that quantize short windows.
        max_batch_size=8, max_wait_ms=2.0, request_timeout_s=10.0,
        hardware_hz=hardware_hz, cache_mb=0.0,
        http_backend=backend,
        max_connections=max(CONN_LEVELS) + 88)   # budget above the storm
    pool.add_bundle(bundle, name="m")
    pool.start()
    assert pool.wait_ready(180.0), "pool never became ready"
    return pool


def run_leg(pool: PoolServer, bodies, references, conns: int,
            per_conn: int) -> dict:
    # Fixed work per leg, measured to full drain: every connection issues
    # exactly ``per_conn`` requests, and requests_per_s is total completions
    # over the time the whole storm took — queue ramp and tail are part of
    # the work, not artifacts cut off by a wall-clock window.  The window
    # below is only a safety cap against a wedged baseline.
    cap_s = 2.0 * per_conn * conns / CAPACITY_RPS + 15.0
    result = run_concurrent_load(
        "127.0.0.1", pool.port, bodies,
        connections=conns, requests_per_connection=per_conn,
        window_s=cap_s, references=references,
        connect_timeout_s=15.0, request_timeout_s=10.0)
    summary = result.summary()
    summary["connections"] = conns
    summary["requests_per_connection"] = per_conn
    summary["elapsed_s"] = round(result.elapsed_s, 3)
    summary["connects"] = result.connects
    summary["connect_errors"] = result.connect_errors
    summary["error_sample"] = result.errors[:3]
    return summary


def test_bench_connections(tmp_path):
    _raise_fd_limit()
    bundle = build_bundle(tmp_path)
    engine = BundleEngine(bundle)

    rng = np.random.default_rng(1)
    bodies, references = [], []
    for _ in range(UNIQUE_BODIES):
        x = rng.standard_normal((1, IN_CHANNELS, IMAGE, IMAGE))
        bodies.append(json.dumps(
            {"inputs": x.tolist(), "model": "m"}).encode())
        references.append(engine.predict(x).tolist())

    calibration = BundleEngine(bundle)
    calibration.predict(np.zeros((1, IN_CHANNELS, IMAGE, IMAGE)))
    pacer = _AcceleratorPacer(calibration, hz=1.0)
    hardware_hz = pacer._cycles() / ACCEL_SECONDS_PER_SAMPLE
    assert hardware_hz > 0

    #: Total requests per leg, scaled by the CI window knob; every
    #: connection gets at least two so keep-alive reuse is always exercised.
    target_total = int(512 * max(WINDOW_S, 0.5))
    results: dict = {}
    for backend in ("eventloop", "threaded"):
        # The threaded baseline only needs its endpoints (the contract is
        # "fine at 32, degraded at 512") — its stalled middle leg would
        # just burn CI minutes demonstrating the same failure mode.
        levels = (CONN_LEVELS if backend == "eventloop"
                  else [CONN_LEVELS[0], max(CONN_LEVELS)])
        pool = start_pool(bundle, hardware_hz, backend)
        legs = {}
        try:
            for conns in levels:
                per_conn = max(2, round(target_total / conns))
                legs[f"c{conns}"] = run_leg(pool, bodies, references,
                                            conns, per_conn)
        finally:
            pool.stop(drain=True)
        results[backend] = legs

    def ratio(legs):
        low = legs[f"c{CONN_LEVELS[0]}"]["requests_per_s"]
        high = legs[f"c{max(CONN_LEVELS)}"]["requests_per_s"]
        return round(high / low, 3) if low else 0.0

    event_ratio = ratio(results["eventloop"])
    threaded_ratio = ratio(results["threaded"])
    event_512 = results["eventloop"][f"c{max(CONN_LEVELS)}"]
    threaded_512 = results["threaded"][f"c{max(CONN_LEVELS)}"]
    threaded_degraded = {
        "request_errors": threaded_512["errors"] > 0,
        "accept_stall": threaded_512["connects"] < max(CONN_LEVELS),
        "throughput_loss": threaded_ratio < 0.9,
    }

    payload = {
        "bench": "connection scale, eventloop vs threaded front end (PR9)",
        "platform": platform.machine(),
        "cpu_count": os.cpu_count(),
        "config": {
            "workers": WORKERS,
            "connection_levels": CONN_LEVELS,
            "unique_bodies": UNIQUE_BODIES,
            "window_s": WINDOW_S,
            "target_total_requests": target_total,
            "accel_seconds_per_sample": ACCEL_SECONDS_PER_SAMPLE,
            "hardware_hz": round(hardware_hz, 1),
        },
        "results": {
            "eventloop": results["eventloop"],
            "threaded": results["threaded"],
            "eventloop_512_vs_32_throughput_ratio": event_ratio,
            "threaded_512_vs_32_throughput_ratio": threaded_ratio,
            "threaded_degraded": threaded_degraded,
        },
    }
    RESULT_PATH.write_text(json.dumps(payload, indent=2))
    print(json.dumps(payload, indent=2))

    # Contract 1: the event loop sustains the full storm at every level.
    for name, leg in results["eventloop"].items():
        assert leg["requests"] > 0, name
        assert leg["errors"] == 0, (name, leg["error_sample"])
        assert leg["connect_errors"] == 0, name
    assert event_512["connects"] >= max(CONN_LEVELS)

    # Contract 2: within 10% of its own 32-client throughput at 512.
    assert event_ratio >= 0.9, payload["results"]

    # Contract 3: bitwise parity everywhere a response completed.
    for legs in results.values():
        for name, leg in legs.items():
            assert leg["mismatches"] == 0, (name, leg)

    # Contract 4: the threaded baseline degrades or errors at 512.
    assert any(threaded_degraded.values()), payload["results"]
