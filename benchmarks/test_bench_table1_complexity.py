"""Bench E11 — Table 1: analytic inference complexity of PECAN-A / PECAN-D.

Regenerates the closed-form addition / multiplication counts of Table 1 for a
representative convolution and fully-connected layer, checks the qualitative
relationships the table encodes (PECAN-D is multiplier-free, PECAN-A is
cheaper than the baseline whenever ``p ≤ min(λ·cout, (1−λ)·d)``) and
benchmarks the cost of evaluating the model-level counter.
"""


from repro.hardware.opcount import (
    conv_baseline_ops,
    fc_baseline_ops,
    format_count,
    max_prototypes_for_reduction,
    pecan_conv_ops,
    pecan_fc_ops,
)
from repro.pecan.config import PECANMode


# A representative mid-network CIFAR convolution: cin=cout=128, 3×3, 16×16 map.
CONV = dict(cin=128, cout=128, k=3, hout=16, wout=16)
FC = dict(cin=512, cout=10)
P_A, P_D = 16, 32
D_CONV, DIM_CONV = 128, 9          # d = k², D = cin
D_FC, DIM_FC = 32, 16


def table1_rows():
    """The six rows of Table 1 instantiated for the representative layers."""
    rows = []
    baseline_conv = conv_baseline_ops(CONV["cin"], CONV["cout"], CONV["k"],
                                      CONV["hout"], CONV["wout"])
    baseline_fc = fc_baseline_ops(FC["cin"], FC["cout"])
    pecan_a_conv = pecan_conv_ops(PECANMode.ANGLE, P_A, D_CONV, DIM_CONV,
                                  CONV["cout"], CONV["hout"], CONV["wout"])
    pecan_a_fc = pecan_fc_ops(PECANMode.ANGLE, P_A, D_FC, DIM_FC, FC["cout"])
    pecan_d_conv = pecan_conv_ops(PECANMode.DISTANCE, P_D, D_CONV, DIM_CONV,
                                  CONV["cout"], CONV["hout"], CONV["wout"])
    pecan_d_fc = pecan_fc_ops(PECANMode.DISTANCE, P_D, D_FC, DIM_FC, FC["cout"])
    rows = [
        ("Baseline", "CONV", baseline_conv),
        ("Baseline", "FC", baseline_fc),
        ("PECAN-A", "CONV", pecan_a_conv),
        ("PECAN-A", "FC", pecan_a_fc),
        ("PECAN-D", "CONV", pecan_d_conv),
        ("PECAN-D", "FC", pecan_d_fc),
    ]
    return rows


class TestTable1Shape:
    def test_pecan_d_rows_are_multiplier_free(self):
        rows = {(m, l): ops for m, l, ops in table1_rows()}
        assert rows[("PECAN-D", "CONV")].multiplications == 0
        assert rows[("PECAN-D", "FC")].multiplications == 0

    def test_pecan_a_cheaper_than_baseline_under_constraint(self):
        """Section 3.3: p ≤ min(λ·cout, (1−λ)·d) keeps PECAN-A below the baseline.

        With cout=128 and d=9 the bound is p ≤ 4; a compliant p is cheaper than
        the baseline convolution while a p far above the bound is not.
        """
        limit = max_prototypes_for_reduction(CONV["cout"], DIM_CONV, lam=0.5)
        assert limit == 4
        baseline = conv_baseline_ops(CONV["cin"], CONV["cout"], CONV["k"],
                                     CONV["hout"], CONV["wout"])
        compliant = pecan_conv_ops(PECANMode.ANGLE, limit, D_CONV, DIM_CONV,
                                   CONV["cout"], CONV["hout"], CONV["wout"])
        violating = pecan_conv_ops(PECANMode.ANGLE, 16 * limit, D_CONV, DIM_CONV,
                                   CONV["cout"], CONV["hout"], CONV["wout"])
        assert compliant.multiplications < baseline.multiplications
        assert violating.multiplications > baseline.multiplications

    def test_formula_symmetry_fc_is_1x1_conv(self):
        fc_direct = pecan_fc_ops(PECANMode.ANGLE, P_A, D_FC, DIM_FC, FC["cout"])
        fc_as_conv = pecan_conv_ops(PECANMode.ANGLE, P_A, D_FC, DIM_FC, FC["cout"], 1, 1)
        assert fc_direct == fc_as_conv

    def test_pecan_d_additions_scale_linearly_with_p(self):
        small = pecan_conv_ops(PECANMode.DISTANCE, 16, D_CONV, DIM_CONV, 128, 16, 16)
        large = pecan_conv_ops(PECANMode.DISTANCE, 32, D_CONV, DIM_CONV, 128, 16, 16)
        search_small = small.additions - D_CONV * 256 * 128
        search_large = large.additions - D_CONV * 256 * 128
        assert search_large == 2 * search_small


def test_bench_table1_print_and_time(benchmark, capsys):
    """Benchmark the row computation and print the reproduced Table 1."""
    rows = benchmark(table1_rows)
    print("\nTable 1 (representative CONV 128->128 3x3 @16x16, FC 512->10):")
    print(f"{'Method':<10} {'Layer':<5} {'#Add.':>12} {'#Mul.':>12}")
    for method, layer, ops in rows:
        print(f"{method:<10} {layer:<5} {format_count(ops.additions):>12} "
              f"{format_count(ops.multiplications):>12}")
    assert len(rows) == 6
