"""Bench E10 — Appendix Table A4: modified ConvMixer on Tiny-ImageNet.

The paper converts a ConvMixer (depth 8, kernel 5, conventional convolutions,
first conv and last FC uncompressed) with ``p = 16 / d = 25`` for PECAN-A and
``p = 32 / d = 25`` for PECAN-D and reports 3.36G / 2.36G / 0.98G operations
with 56.76 / 59.42 / 50.48 % accuracy.

Op counts here are computed on a ConvMixer instantiation whose geometry
(depth 8, k = 5, 64×64 input, patch 8) reproduces the structure of the
appendix model; the hidden width is chosen so the baseline lands in the same
operation range as the paper's 3.36G.  The accuracy column is measured on the
synthetic Tiny-ImageNet stand-in at micro scale (reduced classes and width).
"""

from dataclasses import replace

import pytest

from repro.experiments import ExperimentConfig, run_experiment
from repro.experiments.tables import format_table
from repro.hardware.opcount import count_model_ops, format_count
from repro.models import build_model

PAPER_TABLE_A4 = {
    "Baseline": (3.36e9, 3.36e9, 56.76),
    "PECAN-A": (2.36e9, 2.36e9, 59.42),
    "PECAN-D": (0.98e9, 0.0, 50.48),
}

#: Paper-scale-ish ConvMixer geometry: depth 8, k=5, 64×64 input, patch 4.
#: (The appendix does not state the hidden width / patch size; this choice puts
#: the baseline in the published 3.36G operation range.)
PAPER_SCALE_KWARGS = dict(num_classes=200, hidden_dim=256, depth=8, kernel_size=5,
                          patch_size=4, image_size=64)


@pytest.fixture(scope="module")
def paper_scale_counts(rng):
    counts = {}
    for method, suffix in (("Baseline", ""), ("PECAN-A", "_pecan_a"), ("PECAN-D", "_pecan_d")):
        model = build_model("convmixer" + suffix, rng=rng, **PAPER_SCALE_KWARGS)
        counts[method] = count_model_ops(model, (3, 64, 64))
    return counts


class TestTableA4OpCounts:
    def test_baseline_in_paper_range(self, paper_scale_counts):
        muls = paper_scale_counts["Baseline"].multiplications
        assert 2.0e9 < muls < 5.0e9      # same order as the paper's 3.36G

    def test_pecan_a_reduces_operations(self, paper_scale_counts):
        assert (paper_scale_counts["PECAN-A"].multiplications
                < paper_scale_counts["Baseline"].multiplications)

    def test_pecan_d_keeps_only_uncompressed_layer_multiplications(self, paper_scale_counts):
        """Appendix D keeps the first conv and last FC conventional, so PECAN-D
        ConvMixer retains exactly those layers' multiplications (unlike the fully
        converted LeNet/VGG models)."""
        report = paper_scale_counts["PECAN-D"]
        uncompressed = [r for r in report.records if r.kind in ("conv", "fc")]
        assert len(uncompressed) == 2
        assert report.multiplications == sum(r.ops.multiplications for r in uncompressed)
        assert report.multiplications < 0.1 * paper_scale_counts["Baseline"].multiplications

    def test_pecan_d_additions_below_baseline(self, paper_scale_counts):
        assert (paper_scale_counts["PECAN-D"].additions
                < paper_scale_counts["Baseline"].additions)


@pytest.fixture(scope="module")
def micro_results():
    """Reduced-scale ConvMixer runs on the synthetic Tiny-ImageNet stand-in."""
    config = ExperimentConfig(dataset="tiny_imagenet", arch="convmixer", num_classes=20,
                              width_multiplier=1.0, image_size=32, num_train=160, num_test=80,
                              batch_size=32, epochs=5, learning_rate=0.003, seed=0,
                              prototype_cap=8,
                              model_kwargs={"hidden_dim": 24, "depth": 2, "kernel_size": 5,
                                            "patch_size": 8})
    return {
        "Baseline": run_experiment(config),
        "PECAN-A": run_experiment(replace(config, arch="convmixer_pecan_a", epochs=12)),
        "PECAN-D": run_experiment(replace(config, arch="convmixer_pecan_d", epochs=8)),
    }


@pytest.mark.slow
class TestTableA4AccuracyShape:
    CHANCE = 1.0 / 20.0

    def test_baseline_learns(self, micro_results):
        assert micro_results["Baseline"].accuracy > 3 * self.CHANCE

    def test_pecan_variants_above_chance(self, micro_results):
        assert micro_results["PECAN-A"].accuracy > 2 * self.CHANCE
        assert micro_results["PECAN-D"].accuracy > 1.5 * self.CHANCE

    def test_pecan_d_multiplications_limited_to_uncompressed_layers(self, micro_results):
        report = micro_results["PECAN-D"].op_report
        pecan_muls = sum(r.ops.multiplications for r in report.records
                         if r.kind.startswith("pecan"))
        assert pecan_muls == 0


@pytest.mark.slow
def test_bench_tableA4_report(benchmark, paper_scale_counts, micro_results):
    """Print the reproduced Table A4 and benchmark the ConvMixer op counting."""
    benchmark(lambda: count_model_ops(
        build_model("convmixer", num_classes=200, hidden_dim=64, depth=8, kernel_size=5,
                    patch_size=8, image_size=64), (3, 64, 64)))
    rows = []
    for method, (paper_adds, _, paper_acc) in PAPER_TABLE_A4.items():
        report = paper_scale_counts[method]
        rows.append({
            "method": method,
            "adds": format_count(report.additions),
            "muls": format_count(report.multiplications),
            "acc_micro": round(micro_results[method].accuracy * 100, 2),
            "paper_adds": format_count(paper_adds),
            "paper_acc": paper_acc,
        })
    print("\n" + format_table(
        rows, columns=["method", "adds", "muls", "acc_micro", "paper_adds", "paper_acc"],
        headers=["Method", "#Add.", "#Mul.", "Acc.% (micro)", "#Add. (paper)", "Acc.% (paper)"],
        title="Table A4 — modified ConvMixer on TinyImageNet (op counts at paper geometry)"))
