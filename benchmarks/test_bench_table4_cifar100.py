"""Bench E3 — Table 4: VGG-Small and ResNet-20/32 on CIFAR-100.

The op-count columns of Table 4 equal those of Table 3 (the extra classes only
change the final FC layer's output dimension from 10 to 100, a negligible
contribution) — this bench verifies that claim exactly.  The accuracy column
is measured at micro scale on the synthetic CIFAR-100 stand-in (100 classes,
so chance level is 1%); the asserted shape is that every variant clears chance
by a wide margin and that PECAN-A remains the stronger of the two variants, as
in the paper (69.21 vs 60.43 for VGG-Small).
"""

import pytest

from repro.hardware.opcount import count_model_ops, format_count
from repro.models import build_model
from repro.experiments.tables import format_table

from bench_utils import micro_run

#: Table 4 reference values (paper): adds, muls, accuracy.
PAPER_TABLE4_VGG = {
    "Baseline": (0.61e9, 0.61e9, 67.84),
    "PECAN-A": (0.54e9, 0.54e9, 69.21),
    "PECAN-D": (0.37e9, 0.0, 60.43),
}


@pytest.fixture(scope="module")
def paper_scale_counts_100(rng):
    return {
        "Baseline": count_model_ops(build_model("vgg_small", num_classes=100, rng=rng),
                                    (3, 32, 32)),
        "PECAN-A": count_model_ops(build_model("vgg_small_pecan_a", num_classes=100, rng=rng),
                                   (3, 32, 32)),
        "PECAN-D": count_model_ops(build_model("vgg_small_pecan_d", num_classes=100, rng=rng),
                                   (3, 32, 32)),
    }


class TestTable4OpCounts:
    def test_match_paper_within_tolerance(self, paper_scale_counts_100):
        # The paper prints the counts to two decimals of a gigaop, so the
        # comparison tolerance is 2 % (the 100-class FC head adds ~1 % to the
        # rounded PECAN-D figure).
        for method, (paper_adds, paper_muls, _) in PAPER_TABLE4_VGG.items():
            report = paper_scale_counts_100[method]
            assert abs(report.additions - paper_adds) / paper_adds < 0.02, method
            if paper_muls:
                assert abs(report.multiplications - paper_muls) / paper_muls < 0.02, method
            else:
                assert report.multiplications == 0, method

    def test_100_classes_negligible_vs_10_classes(self, rng, paper_scale_counts_100):
        """Table 4's counts visually equal Table 3's: the FC head is a rounding error."""
        ten = count_model_ops(build_model("vgg_small", num_classes=10, rng=rng), (3, 32, 32))
        hundred = paper_scale_counts_100["Baseline"]
        relative = abs(hundred.multiplications - ten.multiplications) / ten.multiplications
        assert relative < 0.002

    def test_resnet_counts_match_table3_values(self, rng):
        report20 = count_model_ops(build_model("resnet20", num_classes=100, rng=rng), (3, 32, 32))
        report32 = count_model_ops(build_model("resnet32", num_classes=100, rng=rng), (3, 32, 32))
        assert abs(report20.multiplications - 40.56e6) / 40.56e6 < 0.01
        assert abs(report32.multiplications - 68.86e6) / 68.86e6 < 0.01


@pytest.fixture(scope="module")
def micro_cifar100_results(micro_cifar100_config):
    return {
        "Baseline": micro_run(micro_cifar100_config, "vgg_small", 8),
        "PECAN-A": micro_run(micro_cifar100_config, "vgg_small_pecan_a", 15),
        "PECAN-D": micro_run(micro_cifar100_config, "vgg_small_pecan_d", 12),
    }


@pytest.mark.slow
class TestTable4AccuracyShape:
    # The micro preset uses a 20-class subset (chance = 5 %); see conftest.
    CHANCE = 0.05

    def test_baseline_clears_chance(self, micro_cifar100_results):
        assert micro_cifar100_results["Baseline"].accuracy > 2 * self.CHANCE

    def test_pecan_a_clears_chance(self, micro_cifar100_results):
        assert micro_cifar100_results["PECAN-A"].accuracy >= self.CHANCE

    def test_pecan_a_stronger_than_pecan_d(self, micro_cifar100_results):
        """Paper shape on CIFAR-100: PECAN-A above (or at worst level with) PECAN-D."""
        assert (micro_cifar100_results["PECAN-A"].accuracy
                >= micro_cifar100_results["PECAN-D"].accuracy - 0.05)

    def test_pecan_d_multiplier_free(self, micro_cifar100_results):
        assert micro_cifar100_results["PECAN-D"].multiplications == 0


@pytest.mark.slow
def test_bench_table4_report(benchmark, paper_scale_counts_100, micro_cifar100_results):
    """Print the reproduced Table 4 (VGG-Small rows) and benchmark the counting."""
    benchmark(lambda: count_model_ops(build_model("vgg_small_pecan_a", num_classes=100),
                                      (3, 32, 32)))
    rows = []
    for method, (paper_adds, _, paper_acc) in PAPER_TABLE4_VGG.items():
        report = paper_scale_counts_100[method]
        rows.append({
            "method": method,
            "adds": format_count(report.additions),
            "muls": format_count(report.multiplications),
            "acc_micro": round(micro_cifar100_results[method].accuracy * 100, 2),
            "paper_adds": format_count(paper_adds),
            "paper_acc": paper_acc,
        })
    print("\n" + format_table(
        rows, columns=["method", "adds", "muls", "acc_micro", "paper_adds", "paper_acc"],
        headers=["Method", "#Add.", "#Mul.", "Acc.% (micro)", "#Add. (paper)", "Acc.% (paper)"],
        title="Table 4 — VGG-Small on CIFAR-100 (op counts exact; accuracy micro scale)"))
