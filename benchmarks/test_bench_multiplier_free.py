"""Bench E12 — the multiplier-free deployment claim (Sections 3.2 / 3.3).

PECAN-D's defining hardware property is that inference needs **zero
multiplications**: the prototype search is pure l1 (subtract / absolute /
accumulate) and the layer output is assembled by table lookups and additions.
This bench verifies the claim dynamically on the CAM inference engine, checks
that LUT inference is numerically identical to the training-graph forward
pass, reports the CAM activity statistics (searches, match-line evaluations,
energy) and benchmarks the lookup-only inference throughput.
"""

import numpy as np
import pytest

from repro.autograd import Tensor, no_grad
from repro.cam import CAMInferenceEngine, assert_multiplier_free
from repro.cam.lut import build_model_luts, total_memory_footprint
from repro.data import make_dataset
from repro.experiments.tables import format_table
from repro.models import build_model


@pytest.fixture(scope="module")
def pecan_d_lenet(rng):
    return build_model("lenet5_pecan_d", rng=rng)


@pytest.fixture(scope="module")
def mnist_batch():
    _, test = make_dataset("mnist", num_train=8, num_test=32)
    return test.images, test.labels


class TestMultiplierFree:
    def test_strict_assertion_passes(self, pecan_d_lenet, mnist_batch):
        images, _ = mnist_batch
        counter = assert_multiplier_free(pecan_d_lenet, images[:4], strict=True)
        assert counter.multiplications == 0
        assert counter.additions > 0

    def test_lut_inference_matches_training_graph(self, pecan_d_lenet, mnist_batch):
        images, _ = mnist_batch
        engine = CAMInferenceEngine(pecan_d_lenet)
        pecan_d_lenet.eval()
        with no_grad():
            direct = pecan_d_lenet(Tensor(images[:8])).data
        np.testing.assert_allclose(engine.predict(images[:8]), direct, atol=1e-8)

    def test_cam_activity_accounting(self, pecan_d_lenet, mnist_batch):
        images, _ = mnist_batch
        engine = CAMInferenceEngine(pecan_d_lenet)
        engine.predict(images[:4])
        stats = engine.cam_stats()
        assert stats.searches > 0
        assert stats.matchline_evaluations >= stats.searches
        assert stats.energy > 0

    def test_memory_footprint_reports_prototypes_and_tables(self, pecan_d_lenet):
        luts = build_model_luts(pecan_d_lenet)
        totals = total_memory_footprint(luts)
        assert totals["prototype_values"] > 0
        assert totals["table_values"] > 0
        # Section 3: storage = p·cin prototypes + cout·cin·p inner products per layer.
        conv1 = luts["features.0"]
        assert conv1.memory_footprint()["prototype_values"] == 1 * 9 * 64
        assert conv1.memory_footprint()["table_values"] == 1 * 8 * 64

    def test_angle_variant_is_not_multiplier_free(self, rng, mnist_batch):
        from repro.cam.verify import MultiplierUsageError
        images, _ = mnist_batch
        model = build_model("lenet5_pecan_a", rng=rng)
        with pytest.raises(MultiplierUsageError):
            assert_multiplier_free(model, images[:2], strict=False)


def test_bench_lut_inference_throughput(benchmark, pecan_d_lenet, mnist_batch):
    """Benchmark Algorithm-1 inference and print the per-layer op breakdown."""
    images, labels = mnist_batch
    engine = CAMInferenceEngine(pecan_d_lenet)

    benchmark(lambda: engine.predict(images[:8]))

    engine.reset_counters()
    engine.predict(images[:1])
    rows = [{
        "layer": name,
        "kind": kind,
        "additions": adds,
        "multiplications": muls,
    } for name, kind, adds, muls in engine.op_counter.per_layer_table()]
    print("\n" + format_table(
        rows, columns=["layer", "kind", "additions", "multiplications"],
        headers=["Layer", "Kind", "#Add. (1 image)", "#Mul. (1 image)"],
        title="Multiplier-free verification — traced LUT inference of PECAN-D LeNet5"))
    totals = total_memory_footprint(build_model_luts(pecan_d_lenet))
    print(f"\nDeployment memory: {totals['prototype_values']} prototype values + "
          f"{totals['table_values']} LUT values "
          f"({totals['total_bytes'] / 1024:.1f} KiB at 4 bytes/value)")
