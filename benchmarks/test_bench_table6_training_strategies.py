"""Bench E5 — Table 6: effect of the training strategy (co- vs uni-optimization).

The paper trains VGG-Small PECAN-A/D on CIFAR-10 either from scratch
(co-optimization of weights and prototypes) or starting from a pretrained CNN
with frozen weights (uni-optimization, prototypes only), finding co-optimization
slightly better (91.82/90.19 vs 91.76/87.43), with the gap largest for PECAN-D.

At micro scale this bench runs the four PECAN cells of Table 6 (plus the
baseline row) on the synthetic CIFAR-10 stand-in, using LeNet-scale budgets
for the uni runs (pretrain then prototype-only finetuning) and asserts the
structural facts: uni-optimization really freezes the weights, both strategies
produce learning models, and the co-optimized PECAN-D does not trail its
uni-optimized counterpart by more than the reporting tolerance.
"""

from dataclasses import replace

import pytest

from repro.experiments import run_experiment
from repro.experiments.tables import format_table
from repro.pecan.convert import pecan_layers

#: Table 6 reference accuracies (paper, VGG-Small on CIFAR-10).
PAPER_TABLE6 = {
    ("baseline", "scratch"): 91.21,
    ("pecan_a", "scratch"): 91.82,
    ("pecan_d", "scratch"): 90.19,
    ("pecan_a", "freeze"): 91.76,
    ("pecan_d", "freeze"): 87.43,
}


@pytest.fixture(scope="module")
def strategy_results(micro_cifar10_config):
    """Run the five Table 6 cells at micro scale."""
    cfg = micro_cifar10_config
    results = {}
    results[("baseline", "scratch")] = run_experiment(replace(cfg, arch="vgg_small", epochs=6))
    results[("pecan_a", "scratch")] = run_experiment(
        replace(cfg, arch="vgg_small_pecan_a", epochs=15, strategy="co"))
    results[("pecan_d", "scratch")] = run_experiment(
        replace(cfg, arch="vgg_small_pecan_d", epochs=15, strategy="co"))
    results[("pecan_a", "freeze")] = run_experiment(
        replace(cfg, arch="vgg_small_pecan_a", epochs=10, strategy="uni", pretrain_epochs=6))
    results[("pecan_d", "freeze")] = run_experiment(
        replace(cfg, arch="vgg_small_pecan_d", epochs=8, strategy="uni", pretrain_epochs=6))
    return results


@pytest.mark.slow
class TestTable6Shape:
    def test_baseline_learns(self, strategy_results):
        assert strategy_results[("baseline", "scratch")].accuracy > 0.5

    def test_uni_optimization_froze_weights(self, strategy_results):
        for mode in ("pecan_a", "pecan_d"):
            model = strategy_results[(mode, "freeze")].model
            for _, layer in pecan_layers(model):
                assert not layer.weight.requires_grad
                assert layer.codebook.prototypes.requires_grad

    def test_co_optimization_left_weights_trainable(self, strategy_results):
        model = strategy_results[("pecan_d", "scratch")].model
        assert all(p.requires_grad for p in model.parameters())

    def test_every_strategy_produces_learning_model(self, strategy_results):
        # Chance level is 10 %; every cell must clear it (the frozen-weight
        # PECAN-D cell has the smallest margin at the micro budget, matching
        # the paper's observation that uni-optimization hurts PECAN-D most).
        for key, result in strategy_results.items():
            assert result.accuracy > 0.12, key

    def test_co_opt_pecan_d_not_worse_than_uni(self, strategy_results):
        """Paper shape: training from scratch helps PECAN-D the most."""
        scratch = strategy_results[("pecan_d", "scratch")].accuracy
        freeze = strategy_results[("pecan_d", "freeze")].accuracy
        assert scratch >= freeze - 0.10


@pytest.mark.slow
def test_bench_table6_report(benchmark, strategy_results):
    """Print the reproduced Table 6 and benchmark evaluation of a trained model."""
    model = strategy_results[("pecan_a", "scratch")].model
    from repro.autograd import Tensor, no_grad
    from repro.data import make_dataset

    _, test = make_dataset("cifar10", num_train=8, num_test=32, image_size=16)

    def evaluate():
        model.eval()
        with no_grad():
            return model(Tensor(test.images[:16])).data

    benchmark(evaluate)

    rows = []
    for (mode, strategy), paper_acc in PAPER_TABLE6.items():
        result = strategy_results[(mode, strategy)]
        rows.append({
            "model": {"baseline": "Baseline", "pecan_a": "PECAN-A", "pecan_d": "PECAN-D"}[mode],
            "from_scratch": "yes" if strategy == "scratch" else "no",
            "freeze_weights": "yes" if strategy == "freeze" else "no",
            "acc_micro": round(result.accuracy * 100, 2),
            "paper_acc": paper_acc,
        })
    print("\n" + format_table(
        rows, columns=["model", "from_scratch", "freeze_weights", "acc_micro", "paper_acc"],
        headers=["Model", "From scratch", "Freeze weights", "Acc.% (micro)", "Acc.% (paper)"],
        title="Table 6 — training strategies (micro scale, synthetic CIFAR-10)"))
