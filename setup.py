"""Legacy setup shim.

The offline environment has no ``wheel`` package, so PEP-517 editable installs
fail with ``invalid command 'bdist_wheel'``.  Keeping a ``setup.py`` allows the
classic ``pip install -e . --no-build-isolation`` / ``python setup.py develop``
path to work without network access.  All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
