#!/usr/bin/env python3
"""Convert *your own* CNN into a PECAN network, layer by layer.

The other examples use the paper's model zoo; this one shows the workflow a
downstream user would follow for an arbitrary architecture:

1. define a custom CNN with the `repro.nn` building blocks,
2. pretrain it conventionally,
3. pick per-layer PQ settings (using the Section 3.3 constraint
   ``p ≤ min(λ·cout, (1−λ)·d)`` to keep PECAN-A cheaper than the baseline),
4. convert with frozen weights (uni-optimization) and train only prototypes,
5. fold batch-norm, build the LUTs and compare op counts before/after.

Run:  python examples/custom_model_conversion.py
"""

from __future__ import annotations

import numpy as np

from repro import nn
from repro.cam import CAMInferenceEngine
from repro.data import DataLoader, synthetic_cifar10
from repro.experiments.tables import format_table
from repro.hardware.opcount import count_model_ops, format_count, max_prototypes_for_reduction
from repro.optim import Adam
from repro.pecan import PECANTrainer, PQLayerConfig, convert_to_pecan
from repro.pecan.convert import fold_model_batchnorm, pecan_layers
from repro.pecan.training import initialize_codebooks_from_data


def build_custom_cnn(rng: np.random.Generator) -> nn.Module:
    """A small custom CNN: three conv blocks and a linear classifier."""
    return nn.Sequential(
        nn.Conv2d(3, 16, 3, padding=1, rng=rng), nn.BatchNorm2d(16), nn.ReLU(),
        nn.MaxPool2d(2),
        nn.Conv2d(16, 32, 3, padding=1, rng=rng), nn.BatchNorm2d(32), nn.ReLU(),
        nn.MaxPool2d(2),
        nn.Conv2d(32, 32, 3, padding=1, rng=rng), nn.BatchNorm2d(32), nn.ReLU(),
        nn.GlobalAvgPool2d(),
        nn.Linear(32, 10, rng=rng),
    )


def per_layer_settings(index: int, module: nn.Module) -> PQLayerConfig:
    """Choose (p, d) per layer with the Section 3.3 complexity constraint."""
    if isinstance(module, nn.Linear):
        return PQLayerConfig(num_prototypes=8, subvector_dim=8, mode="distance",
                             temperature=0.5)
    d = module.kernel_size ** 2
    p_limit = max_prototypes_for_reduction(module.out_channels, d, lam=0.5)
    p = max(4, min(16, p_limit * 4))          # distance mode can afford more prototypes
    return PQLayerConfig(num_prototypes=p, subvector_dim=d, mode="distance", temperature=0.5)


def main() -> None:
    rng = np.random.default_rng(0)
    train_set, test_set = synthetic_cifar10(num_train=192, num_test=96, image_size=16)
    train_loader = DataLoader(train_set, batch_size=32, shuffle=True, seed=0)
    test_loader = DataLoader(test_set, batch_size=32)

    # 1-2. Pretrain the conventional CNN.
    cnn = build_custom_cnn(rng)
    pretrainer = PECANTrainer(cnn, optimizer=Adam(cnn.parameters(), lr=0.003))
    pre_history = pretrainer.fit(train_loader, test_loader, epochs=6)
    print(f"pretrained custom CNN accuracy: {pre_history.final_accuracy:.3f}")

    # 3-4. Convert (weights copied) and uni-optimize the prototypes.
    pecan = convert_to_pecan(cnn, per_layer_settings, rng=rng)
    initialize_codebooks_from_data(pecan, train_loader, rng=rng)
    print("\nconverted layers:")
    for name, layer in pecan_layers(pecan):
        p, groups, dim = layer.pq_shape()
        print(f"  {name}: p={p}, D={groups}, d={dim}, mode={layer.config.mode.value}")

    finetuner = PECANTrainer(pecan, optimizer=Adam(pecan.parameters(), lr=0.01),
                             strategy="uni")
    history = finetuner.fit(train_loader, test_loader, epochs=6)
    print(f"\nPECAN-D accuracy after prototype-only finetuning: {history.final_accuracy:.3f}")

    # 5. Fold BN, build the LUTs, compare op counts and check LUT inference.
    deployable = fold_model_batchnorm(pecan)
    engine = CAMInferenceEngine(deployable)
    lut_accuracy = engine.accuracy(test_set.images, test_set.labels)
    print(f"LUT/CAM inference accuracy (BN folded):  {lut_accuracy:.3f}")

    rows = []
    for label, model in (("baseline CNN", cnn), ("PECAN-D", deployable)):
        report = count_model_ops(model, test_set.image_shape)
        rows.append({"model": label,
                     "adds": format_count(report.additions),
                     "muls": format_count(report.multiplications)})
    print("\n" + format_table(rows, columns=["model", "adds", "muls"],
                              headers=["Model", "#Add./image", "#Mul./image"],
                              title="Operation counts before / after PECAN conversion"))


if __name__ == "__main__":
    main()
