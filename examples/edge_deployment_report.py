#!/usr/bin/env python3
"""Edge-deployment study: op counts, power, latency and memory for PECAN.

The motivating scenario of the paper is edge AI on hardware with CAM support
(FPGAs, RRAM crossbars): what does a designer gain by replacing convolution
with prototype matching + table lookup?  This example produces the numbers a
deployment study needs, for any architecture in the model zoo:

* Table 1 style per-layer and total operation counts (baseline vs PECAN-A vs
  PECAN-D vs an AdderNet comparator),
* Table 5 style normalized power and latency under the VIA Nano constants,
* LUT/prototype memory footprint (the two quantities Section 3 says a PECAN
  layer must store),
* the prototype-pruning headroom of Section 5 (dead prototypes measured on a
  calibration batch).

Run:  python examples/edge_deployment_report.py [arch]        (default: resnet20)
"""

from __future__ import annotations

import sys

import numpy as np

from repro.analysis import collect_prototype_usage
from repro.cam.lut import build_model_luts, total_memory_footprint
from repro.data import synthetic_cifar10
from repro.experiments.tables import format_table
from repro.hardware.cost_model import VIA_NANO, comparison_table
from repro.hardware.opcount import count_model_ops, format_count
from repro.models import build_model


def main(arch: str = "resnet20") -> None:
    rng = np.random.default_rng(0)
    input_shape = (3, 32, 32)

    # ------------------------------------------------------------------ #
    # 1. Operation counts of the four implementations.
    # ------------------------------------------------------------------ #
    print(f"architecture: {arch}  (input {input_shape})")
    reports = {
        "CNN baseline": count_model_ops(build_model(arch, rng=rng), input_shape),
        "AdderNet": count_model_ops(build_model(arch, rng=rng), input_shape, addernet=True),
        "PECAN-A": count_model_ops(build_model(f"{arch}_pecan_a", rng=rng), input_shape),
        "PECAN-D": count_model_ops(build_model(f"{arch}_pecan_d", rng=rng), input_shape),
    }
    rows = [{"method": name,
             "adds": format_count(report.additions),
             "muls": format_count(report.multiplications)}
            for name, report in reports.items()]
    print("\n" + format_table(rows, columns=["method", "adds", "muls"],
                              headers=["Method", "#Add. / image", "#Mul. / image"],
                              title="Per-image inference operations (paper-scale architecture)"))

    # ------------------------------------------------------------------ #
    # 2. Power / latency under the VIA Nano 2000 model (Table 5 convention).
    # ------------------------------------------------------------------ #
    cost_rows = comparison_table({name: report.total for name, report in reports.items()},
                                 model=VIA_NANO, reference="PECAN-D")
    print("\n" + format_table(
        cost_rows, columns=["method", "normalized_power", "latency_str"],
        headers=["Method", "Normalized power", "Latency (cycles)"],
        title="Energy / latency (mul = 4 cycles & 4x adder energy, add = 2 cycles & 1x)"))

    # ------------------------------------------------------------------ #
    # 3. Deployment memory of the PECAN-D model (prototypes + LUTs).
    # ------------------------------------------------------------------ #
    pecan_d = build_model(f"{arch}_pecan_d", rng=rng)
    luts = build_model_luts(pecan_d)
    totals = total_memory_footprint(luts, bytes_per_value=4)
    print(f"\nPECAN-D deployment memory ({len(luts)} layers): "
          f"{totals['prototype_bytes'] / 1024:.1f} KiB prototypes + "
          f"{totals['table_bytes'] / 1024:.1f} KiB lookup tables")

    # ------------------------------------------------------------------ #
    # 4. Prototype-pruning headroom (Section 5) on a calibration batch.
    #    A reduced-width model keeps this demo fast; the measured sparsity is
    #    the same phenomenon Fig. 6 reports at paper scale.
    # ------------------------------------------------------------------ #
    small = build_model(f"{arch}_pecan_d", width_multiplier=0.125, prototype_cap=16,
                        image_size=16, rng=rng)
    calibration, _ = synthetic_cifar10(num_train=32, num_test=8, image_size=16)
    usage = collect_prototype_usage(small, calibration.images)
    print(f"\ncalibration over {len(calibration)} images (width-reduced model): "
          f"{usage.dead_prototypes} of {usage.total_prototypes} prototype slots never used "
          f"→ {usage.prunable_fraction():.1%} of prototype/LUT storage prunable for free")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "resnet20")
