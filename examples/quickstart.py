#!/usr/bin/env python3
"""Quickstart: train a PECAN-D LeNet5 on synthetic MNIST and deploy it as a LUT.

This walks through the full PECAN life cycle in a couple of minutes on a CPU:

1. build the modified LeNet5 of the paper (Appendix Table A1),
2. convert it into a distance-based PECAN model (PECAN-D),
3. co-optimize weights and prototypes with the epoch-aware sign-gradient
   schedule (Eq. 6),
4. precompute the lookup tables and run CAM-style, multiplication-free
   inference (Algorithm 1),
5. verify that the LUT path matches the training graph and report the
   operation counts of Table 2.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.autograd import Tensor, no_grad
from repro.cam import CAMInferenceEngine, assert_multiplier_free
from repro.data import DataLoader, synthetic_mnist
from repro.hardware.opcount import count_model_ops, format_count
from repro.models import LeNet5
from repro.optim import Adam, StepLR
from repro.pecan import PECANTrainer, PQLayerConfig, convert_to_pecan
from repro.pecan.training import initialize_codebooks_from_data


def main() -> None:
    rng = np.random.default_rng(0)

    # ------------------------------------------------------------------ #
    # 1. Data: a synthetic stand-in for MNIST (offline environment).
    # ------------------------------------------------------------------ #
    train_set, test_set = synthetic_mnist(num_train=256, num_test=128, image_size=20)
    train_loader = DataLoader(train_set, batch_size=32, shuffle=True, seed=0)
    test_loader = DataLoader(test_set, batch_size=32)
    print(f"dataset: {len(train_set)} train / {len(test_set)} test images "
          f"of shape {train_set.image_shape}")

    # ------------------------------------------------------------------ #
    # 2. Model: LeNet5 converted to PECAN-D (l1 prototype matching).
    # ------------------------------------------------------------------ #
    baseline = LeNet5(image_size=20, rng=rng)
    config = PQLayerConfig(num_prototypes=32, mode="distance", temperature=0.5)
    model = convert_to_pecan(baseline, config, rng=rng)
    initialize_codebooks_from_data(model, train_loader, rng=rng)
    print(f"PECAN-D LeNet5: {model.num_parameters()} parameters "
          f"({sum(1 for _ in model.modules())} modules)")

    # ------------------------------------------------------------------ #
    # 3. Training: co-optimization of weights and prototypes.
    # ------------------------------------------------------------------ #
    optimizer = Adam(model.parameters(), lr=0.01)
    scheduler = StepLR(optimizer, step_size=6, gamma=0.1)
    trainer = PECANTrainer(model, optimizer=optimizer, scheduler=scheduler, strategy="co")
    history = trainer.fit(train_loader, test_loader, epochs=8, verbose=True)
    print(f"final test accuracy (training graph): {history.final_accuracy:.3f}")

    # ------------------------------------------------------------------ #
    # 4. Deployment: lookup-table inference through the CAM engine.
    # ------------------------------------------------------------------ #
    engine = CAMInferenceEngine(model)
    lut_accuracy = engine.accuracy(test_set.images, test_set.labels)
    print(f"test accuracy via LUT/CAM inference:   {lut_accuracy:.3f}")

    model.eval()
    with no_grad():
        direct = model(Tensor(test_set.images[:16])).data
    via_lut = engine.predict(test_set.images[:16])
    print(f"max |LUT - training graph| difference: {np.abs(direct - via_lut).max():.2e}")

    # ------------------------------------------------------------------ #
    # 5. Hardware accounting: multiplier-freeness and op counts.
    # ------------------------------------------------------------------ #
    counter = assert_multiplier_free(model, test_set.images[:4], strict=True)
    print(f"traced inference operations: {counter.additions} additions, "
          f"{counter.multiplications} multiplications, {counter.lookups} lookups")

    report = count_model_ops(model, test_set.image_shape)
    print("analytic per-image op count (Table 1 formulas): "
          f"#Add {format_count(report.additions)}, #Mul {format_count(report.multiplications)}")


if __name__ == "__main__":
    main()
