#!/usr/bin/env python3
"""Prototype pruning: exploit sparse prototype usage to shrink the CAM (Section 5).

The paper's discussion section observes that a trained PECAN-D model only ever
selects a fraction of its prototypes at inference time (26 of 64 in ResNet-20's
second convolution), so the unused prototypes — and their lookup-table entries —
can be removed without touching accuracy.  The paper defers the full study to
follow-up work; this example implements the workflow end to end:

1. train a reduced-scale PECAN-D LeNet5,
2. run CAM inference over a calibration set and record per-prototype usage,
3. prune every dead prototype and its LUT column,
4. verify the pruned CAM produces identical predictions,
5. report the memory saved.

Run:  python examples/prototype_pruning.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis import collect_prototype_usage, usage_matrix
from repro.analysis.visualization import ascii_heatmap
from repro.cam import CAMInferenceEngine
from repro.cam.lut import build_model_luts
from repro.data import DataLoader, synthetic_mnist
from repro.experiments.tables import format_table
from repro.models import LeNet5
from repro.optim import Adam
from repro.pecan import PECANTrainer, PQLayerConfig, convert_to_pecan
from repro.pecan.training import initialize_codebooks_from_data


def main() -> None:
    rng = np.random.default_rng(0)

    # 1. Train a small PECAN-D model (the usage pattern is what matters here).
    train_set, test_set = synthetic_mnist(num_train=192, num_test=96, image_size=20)
    train_loader = DataLoader(train_set, batch_size=32, shuffle=True, seed=0)
    test_loader = DataLoader(test_set, batch_size=32)
    model = convert_to_pecan(LeNet5(image_size=20, rng=rng),
                             PQLayerConfig(num_prototypes=32, mode="distance", temperature=0.5),
                             rng=rng)
    initialize_codebooks_from_data(model, train_loader, rng=rng)
    trainer = PECANTrainer(model, optimizer=Adam(model.parameters(), lr=0.01))
    history = trainer.fit(train_loader, test_loader, epochs=6)
    print(f"trained PECAN-D LeNet5: test accuracy {history.final_accuracy:.3f}")

    # 2. Collect prototype usage on a calibration set.
    usage = collect_prototype_usage(model, train_set.images)
    rows = [{"layer": layer.name, "p": layer.num_prototypes, "groups": layer.num_groups,
             "used": layer.used, "dead": layer.dead,
             "used_in_group0": layer.used_in_group(0)}
            for layer in usage.layers]
    print("\n" + format_table(
        rows, columns=["layer", "p", "groups", "used", "dead", "used_in_group0"],
        headers=["Layer", "p", "D", "Used slots", "Dead slots", "Used (group 0)"],
        title="Prototype usage over the calibration set (cf. Fig. 6)"))
    print(f"prunable fraction of prototype/LUT slots: {usage.prunable_fraction():.1%}")

    print("\nusage matrix of codebook group 0 (rows = layers, columns = prototypes, "
          "dark = frequently used):")
    print(ascii_heatmap(usage_matrix(usage), width=64, height=len(usage.layers)))

    # 3-4. Prune dead prototypes and verify the pruned CAM agrees exactly.
    engine = CAMInferenceEngine(model)
    reference = engine.predict_classes(test_set.images)

    luts = build_model_luts(model)
    layer_usage = {layer.name: layer.counts for layer in usage.layers}
    saved_values = 0
    total_values = 0
    mismatches = 0
    for name, lut in luts.items():
        pruned = lut.prune_dead_prototypes(layer_usage[name])
        saved_values += (pruned.prototypes_total - pruned.prototypes_kept)
        total_values += pruned.prototypes_total
        # Spot-check: re-run the winning-column selection of a few calibration
        # subvectors against the pruned table and confirm the retrieved LUT
        # columns are identical to the unpruned ones.
        for j in range(lut.num_groups):
            kept = pruned.kept_indices[j]
            if not np.array_equal(pruned.tables[j], lut.table[j][:, kept]):
                mismatches += 1

    after = engine.predict_classes(test_set.images)
    print(f"\npruned {saved_values} of {total_values} prototype slots "
          f"({saved_values / total_values:.1%}); LUT column mismatches: {mismatches}")
    print(f"predictions identical before/after pruning bookkeeping: "
          f"{bool(np.array_equal(reference, after))}")


if __name__ == "__main__":
    main()
