#!/usr/bin/env python3
"""Compare the two PECAN similarity schemes (angle vs distance) end to end.

The paper's central design question is the complexity-accuracy trade-off
between PECAN-A (attention-style soft assignment, Eq. 2) and PECAN-D
(multiplier-free l1 hard assignment, Eq. 3-6).  This example trains both
variants of VGG-Small on the synthetic CIFAR-10 stand-in with the same
budget knobs as the benchmark harness and reports, for each:

* test accuracy and its trajectory,
* analytic operation counts (Table 1),
* the assignment entropy per layer (how soft or hard the prototype matching
  actually is after training),
* the sign-gradient schedule the distance variant used (Eq. 6 / Fig. 3).

Run:  python examples/compare_similarity_schemes.py
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro.autograd import Tensor, no_grad
from repro.data import make_dataset
from repro.experiments import ExperimentConfig, run_experiment
from repro.experiments.tables import format_table
from repro.hardware.opcount import format_count
from repro.pecan.convert import pecan_layers
from repro.pecan.similarity import assignment_entropy, sign_gradient_scale


def measure_assignment_entropy(model, images: np.ndarray) -> dict:
    """Prototype-assignment entropy of the first PECAN layer on a raw-image batch."""
    first_name, first_layer = pecan_layers(model)[0]
    with no_grad():
        cols = first_layer.unfold_input(Tensor(images))
        grouped = first_layer.group_columns(cols)
        assignment = first_layer.codebook.assign(grouped, first_layer.config)
    return {first_name: float(assignment_entropy(assignment.data))}


def main() -> None:
    base = ExperimentConfig(dataset="cifar10", arch="vgg_small", width_multiplier=0.0625,
                            image_size=16, num_train=192, num_test=96, batch_size=32,
                            learning_rate=0.002, lr_decay_step=10, seed=0, prototype_cap=8)

    print("training VGG-Small baseline / PECAN-A / PECAN-D on synthetic CIFAR-10 ...")
    results = {
        "Baseline": run_experiment(replace(base, epochs=6)),
        "PECAN-A": run_experiment(replace(base, arch="vgg_small_pecan_a", epochs=15)),
        "PECAN-D": run_experiment(replace(base, arch="vgg_small_pecan_d", epochs=15)),
    }

    rows = []
    for name, result in results.items():
        rows.append({
            "method": name,
            "accuracy": round(result.accuracy * 100, 2),
            "adds": format_count(result.additions),
            "muls": format_count(result.multiplications),
            "train_minutes": round(result.seconds / 60, 2),
        })
    print("\n" + format_table(
        rows, columns=["method", "accuracy", "adds", "muls", "train_minutes"],
        headers=["Method", "Test acc. %", "#Add./image", "#Mul./image", "Train (min)"],
        title="Angle vs distance similarity on VGG-Small (reduced scale)"))

    # Accuracy trajectories.
    for name, result in results.items():
        trajectory = ", ".join(f"{a:.2f}" for a in result.history["test_accuracy"])
        print(f"{name:>9} accuracy per epoch: {trajectory}")

    # How soft is the matching really?
    _, test = make_dataset("cifar10", num_train=8, num_test=16, image_size=16)
    print("\nfirst-layer assignment entropy (0 = hard one-hot, ln(p) = uniform):")
    for name in ("PECAN-A", "PECAN-D"):
        entropy = measure_assignment_entropy(results[name].model, test.images[:8])
        for layer_name, value in entropy.items():
            p = dict(pecan_layers(results[name].model))[layer_name].config.num_prototypes
            print(f"  {name}: H = {value:.3f} nats (uniform would be {np.log(p):.3f})")

    # The schedule PECAN-D trained with.
    epochs = 15
    schedule = [sign_gradient_scale(e, epochs) for e in (1, epochs // 2, epochs)]
    print("\nPECAN-D sign-gradient sharpness a = exp(4e/E) at epochs "
          f"1 / {epochs // 2} / {epochs}: " + " / ".join(f"{a:.2f}" for a in schedule))


if __name__ == "__main__":
    main()
