"""Performance infrastructure shared by the fused kernels and the benchmarks.

Three small building blocks keep the hot paths fast *and* memory-bounded:

* :mod:`repro.perf.timers` — monotonic wall-clock timers and a throughput
  helper used by the benchmark suite (``BENCH_PR1.json``),
* :mod:`repro.perf.chunking` — the chunk-size policy that bounds the peak
  size of broadcasted intermediates (the streaming CAM engine chunks the
  ``N × L`` position axis through it),
* :mod:`repro.perf.workspace` — keyed scratch-buffer reuse so repeated
  kernel invocations (im2col unfolds, per-chunk accumulators) do not
  re-allocate on every call,
* :mod:`repro.perf.ckernels` — an optionally compiled C fast path for the
  PECAN-D search + accumulate loop, with graceful NumPy fallback,
* :mod:`repro.perf.im2col` — the pure-NumPy im2col/col2im lowering shared by
  training and serving (autograd re-exports it).
"""

from repro.perf.chunking import ChunkPolicy, iter_slices
from repro.perf.ckernels import get_pecan_d_kernel, kernel_available
from repro.perf.im2col import col2im, conv_output_size, im2col
from repro.perf.timers import Timer, ThroughputResult, measure_throughput
from repro.perf.workspace import Workspace

__all__ = [
    "ChunkPolicy",
    "iter_slices",
    "im2col",
    "col2im",
    "conv_output_size",
    "Timer",
    "ThroughputResult",
    "measure_throughput",
    "Workspace",
    "get_pecan_d_kernel",
    "kernel_available",
]
