"""Keyed scratch-buffer reuse for repeatedly invoked kernels.

A :class:`Workspace` hands out NumPy arrays keyed by name; as long as the
requested shape and dtype match the previous request under the same key, the
same allocation is returned.  The CAM engine uses this to reuse its im2col
column buffer and per-chunk accumulators across layers and batches instead of
allocating fresh arrays on every forward.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np


class Workspace:
    """A small pool of named reusable ndarray buffers."""

    def __init__(self) -> None:
        self._buffers: Dict[str, np.ndarray] = {}

    def request(self, key: str, shape: Tuple[int, ...], dtype=np.float64) -> np.ndarray:
        """Return a buffer of ``shape``/``dtype`` under ``key``, reusing when possible.

        Contents are uninitialized (as with ``np.empty``); callers must fully
        overwrite the buffer.  A mismatched shape or dtype reallocates.
        """
        shape = tuple(int(s) for s in shape)
        dtype = np.dtype(dtype)
        buffer = self._buffers.get(key)
        if buffer is None or buffer.shape != shape or buffer.dtype != dtype:
            buffer = np.empty(shape, dtype=dtype)
            self._buffers[key] = buffer
        return buffer

    def nbytes(self) -> int:
        """Total bytes currently held by the pool."""
        return sum(buf.nbytes for buf in self._buffers.values())

    def clear(self) -> None:
        self._buffers.clear()

    def __contains__(self, key: str) -> bool:
        return key in self._buffers

    def __len__(self) -> int:
        return len(self._buffers)
