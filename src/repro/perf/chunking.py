"""Chunk-size policy bounding the peak memory of broadcasted kernels.

The fused CAM search materializes a ``(N, D, p, d, L_chunk)`` difference
tensor per chunk; the training-graph l1 backward re-materializes the same
shape while recomputing the smoothed sign.  Both ask a :class:`ChunkPolicy`
how many of the ``N × L`` independent positions they may process at once so
the intermediate stays below a fixed byte budget regardless of batch size.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

#: Default peak-intermediate budget (bytes).  Generous enough that small
#: workloads run unchunked, small enough that production batches stream.
DEFAULT_MAX_BYTES = 256 * 1024 * 1024

#: Default *preferred* transient size (bytes).  Distinct from the hard budget:
#: broadcasted elementwise kernels run fastest when their transients stay
#: roughly cache-resident, so chunks target this size even when the memory
#: budget would allow far larger ones.
DEFAULT_PREFERRED_BYTES = 8 * 1024 * 1024


def iter_slices(total: int, chunk: int) -> Iterator[slice]:
    """Yield consecutive slices of at most ``chunk`` elements covering ``total``."""
    if total <= 0:
        return
    chunk = max(1, int(chunk))
    for start in range(0, total, chunk):
        yield slice(start, min(start + chunk, total))


@dataclass(frozen=True)
class ChunkPolicy:
    """Decides how many independent columns a broadcasted kernel may process.

    Parameters
    ----------
    max_bytes:
        Upper bound on the size of the largest transient array a kernel is
        allowed to materialize.  ``None`` or non-positive disables chunking
        (everything runs in one pass).
    preferred_bytes:
        Soft target for the transient size; chunks aim for this so the
        per-chunk working set stays roughly cache-resident.  Clamped to
        ``max_bytes``; non-positive means "no preference" (use the budget).
    """

    max_bytes: int = DEFAULT_MAX_BYTES
    preferred_bytes: int = DEFAULT_PREFERRED_BYTES

    @property
    def enabled(self) -> bool:
        return self.max_bytes is not None and self.max_bytes > 0

    def _target_bytes(self) -> int:
        if self.preferred_bytes is not None and self.preferred_bytes > 0:
            return min(self.max_bytes, self.preferred_bytes)
        return self.max_bytes

    def columns_per_chunk(self, bytes_per_column: int, total_columns: int) -> int:
        """Largest column count whose transient stays within the target size.

        ``bytes_per_column`` is the size of the broadcasted intermediate per
        independent column (e.g. ``D·p·d·itemsize`` for the CAM l1 search).
        Always returns at least 1: a single column may exceed the budget, but
        it is the smallest unit of work.
        """
        if not self.enabled or bytes_per_column <= 0:
            return max(1, total_columns)
        return int(max(1, min(total_columns, self._target_bytes() // bytes_per_column)))

    def plan(self, bytes_per_column: int, total_columns: int) -> Tuple[int, int]:
        """Return ``(columns_per_chunk, num_chunks)`` for ``total_columns``."""
        per_chunk = self.columns_per_chunk(bytes_per_column, total_columns)
        num_chunks = -(-max(total_columns, 0) // per_chunk) if total_columns > 0 else 0
        return per_chunk, num_chunks
