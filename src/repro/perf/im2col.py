"""im2col / col2im transforms used to lower convolution to matrix product.

The PECAN paper (Fig. 1) lowers every convolution layer to the matrix-matrix
product ``F @ X`` where ``X`` is the im2col-unfolded input.  Product
quantization then acts on the columns of ``X``.  These routines are shared by
the baseline convolution layer, the PECAN layers, the CAM inference engine and
the bundle-backed serving engine.  They live under :mod:`repro.perf` (rather
than :mod:`repro.autograd`, which re-exports them) because they are pure NumPy
with no autograd dependency — the serving stack unfolds inputs without ever
loading the training substrate.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def conv_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    """Spatial output size of a convolution along one dimension."""
    return (size + 2 * padding - kernel) // stride + 1


def _padded(x: np.ndarray, padding: int) -> np.ndarray:
    if padding == 0:
        return x
    return np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)), mode="constant")


def im2col(x: np.ndarray, kernel_size: int, stride: int = 1, padding: int = 0,
           out: np.ndarray = None) -> np.ndarray:
    """Unfold ``x`` of shape ``(N, C, H, W)`` into columns.

    Returns an array of shape ``(N, C * k * k, Hout * Wout)`` whose column
    ``i`` contains the receptive field of output position ``i`` flattened in
    channel-major order — exactly the layout the paper's ``X`` matrix uses
    (each channel contributes a contiguous block of ``k*k`` rows).

    ``out``, when given, must be a C-contiguous ``(N, C*k*k, Hout*Wout)``
    array of the input's dtype; the columns are written into it and it is
    returned, so steady-state callers (the streaming CAM engine) can reuse
    one workspace buffer instead of allocating per call.
    """
    n, c, h, w = x.shape
    k = kernel_size
    hout = conv_output_size(h, k, stride, padding)
    wout = conv_output_size(w, k, stride, padding)
    xp = _padded(x, padding)

    # as_strided windows: (N, C, Hout, Wout, k, k)
    sn, sc, sh, sw = xp.strides
    windows = np.lib.stride_tricks.as_strided(
        xp,
        shape=(n, c, hout, wout, k, k),
        strides=(sn, sc, sh * stride, sw * stride, sh, sw),
        writeable=False,
    )
    # -> (N, C, k, k, Hout, Wout) -> (N, C*k*k, Hout*Wout)
    shuffled = windows.transpose(0, 1, 4, 5, 2, 3)
    if out is not None:
        expected = (n, c * k * k, hout * wout)
        if out.shape != expected:
            raise ValueError(f"out buffer has shape {out.shape}, expected {expected}")
        if not out.flags.c_contiguous:
            raise ValueError("out buffer must be C-contiguous")
        np.copyto(out.reshape(n, c, k, k, hout, wout), shuffled)
        return out
    cols = shuffled.reshape(n, c * k * k, hout * wout)
    return np.ascontiguousarray(cols)


def col2im(cols: np.ndarray, input_shape: Tuple[int, int, int, int], kernel_size: int,
           stride: int = 1, padding: int = 0) -> np.ndarray:
    """Fold columns back into an image, summing overlapping contributions.

    This is the adjoint of :func:`im2col` and is used in the convolution
    backward pass to compute the input gradient.
    """
    n, c, h, w = input_shape
    k = kernel_size
    hout = conv_output_size(h, k, stride, padding)
    wout = conv_output_size(w, k, stride, padding)
    hp, wp = h + 2 * padding, w + 2 * padding

    cols = cols.reshape(n, c, k, k, hout, wout)
    out = np.zeros((n, c, hp, wp), dtype=cols.dtype)
    for ki in range(k):
        for kj in range(k):
            out[:, :, ki:ki + stride * hout:stride, kj:kj + stride * wout:stride] += cols[:, :, ki, kj]
    if padding:
        out = out[:, :, padding:padding + h, padding:padding + w]
    return out
