"""Optional compiled fused kernels (C via ``gcc`` + ``ctypes``).

The PECAN-D lookup inference hot loop — im2col unfold, l1 prototype search,
and LUT-column accumulation — is memory-bound in NumPy because every
broadcasted formulation materializes large transients.  A ~50-line C kernel
performs the whole thing in a single pass per output position with no
intermediates at all, reading receptive fields straight out of the (padded)
input through a precomputed row-offset table, and is bitwise-identical to the
NumPy reference: each distance is summed in the same left-to-right dimension
order (the inner loop vectorizes across *prototypes*, never reordering a
single sum) and ties break to the first minimum exactly like ``argmin``.

The kernel is compiled on first use into ``src/repro/perf/_build/`` (keyed by
a hash of the source and flags, so edits rebuild automatically) and loaded
with ``ctypes``.  Everything degrades gracefully: no compiler, a failed
compile, or ``REPRO_DISABLE_CKERNELS=1`` simply means
:func:`get_pecan_d_kernel` returns ``None`` and callers use their NumPy path.
No third-party packages are involved.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import platform
import subprocess
import tempfile
from pathlib import Path
from typing import Optional

import numpy as np

#: Prototype-count ceiling baked into the kernel's stack buffer.
MAX_PROTOTYPES = 1024

_C_SOURCE = r"""
#include <stdint.h>
#include <math.h>

/* Fused im2col + PECAN-D search + lookup-accumulate over all groups.
 *
 * xp:         (N, C, Hp, Wp) zero-padded input, C-contiguous.  A fully
 *             connected layer is the degenerate case Hp = Wp = 1.
 * row_offset: (G*d,) offset of grouped im2col row r within one sample at
 *             output position (0, 0): c*Hp*Wp + ki*Wp + kj, with any group
 *             permutation already applied.
 * protos:     (G, d, p) codebooks in their native layout (prototype index m
 *             contiguous, so the m-loop vectorizes without reordering any
 *             individual distance sum).
 * table_flat: (G*p, cout) row j*p + m = LUT column of prototype m, group j.
 * out:        (N*Hout*Wout, cout) position-major output (bias NOT added).
 * winners:    (N*Hout*Wout, G) winning prototype per position and group.
 */
#define MAX_P %(max_p)d
void pecan_d_lookup(const double* xp, const int64_t* row_offset,
                    const double* protos, const double* table_flat,
                    double* out, int64_t* winners,
                    int64_t N, int64_t sample_stride, int64_t Wp, int64_t stride,
                    int64_t Hout, int64_t Wout,
                    int64_t G, int64_t d, int64_t p, int64_t cout)
{
    double dists[MAX_P];
    for (int64_t n = 0; n < N; ++n) {
        const double* xn = xp + n * sample_stride;
        for (int64_t oh = 0; oh < Hout; ++oh) {
            for (int64_t ow = 0; ow < Wout; ++ow) {
                const double* xq = xn + (oh * Wp + ow) * stride;
                const int64_t q = (n * Hout + oh) * Wout + ow;
                double* orow = out + q * cout;
                for (int64_t c = 0; c < cout; ++c) orow[c] = 0.0;
                int64_t* wrow = winners + q * G;
                const int64_t* roff = row_offset;
                for (int64_t j = 0; j < G; ++j) {
                    const double* pj = protos + j * d * p;
                    for (int64_t m = 0; m < p; ++m) dists[m] = 0.0;
                    for (int64_t i = 0; i < d; ++i) {
                        const double qi = xq[roff[i]];
                        const double* prow = pj + i * p;
                        for (int64_t m = 0; m < p; ++m) dists[m] += fabs(qi - prow[m]);
                    }
                    roff += d;
                    double best = dists[0]; int64_t bm = 0;
                    for (int64_t m = 1; m < p; ++m) {
                        if (dists[m] < best) { best = dists[m]; bm = m; }
                    }
                    wrow[j] = bm;
                    const double* trow = table_flat + (j * p + bm) * cout;
                    for (int64_t c = 0; c < cout; ++c) orow[c] += trow[c];
                }
            }
        }
    }
}
""" % {"max_p": MAX_PROTOTYPES}

_BASE_FLAGS = ["-O3", "-shared", "-fPIC"]
_ARCH_FLAGS = ["-march=native"]

_lib: Optional[ctypes.CDLL] = None
_load_attempted = False


def _build_dir() -> Path:
    override = os.environ.get("REPRO_CKERNEL_DIR")
    if override:
        return Path(override)
    return Path(__file__).resolve().parent / "_build"


def _compiler_candidates():
    env_cc = os.environ.get("CC")
    if env_cc:
        yield env_cc
    yield "gcc"
    yield "cc"


def _compile(source: str) -> Optional[Path]:
    """Compile ``source`` into the build cache, returning the .so path or None."""
    tag = hashlib.sha256(
        (source + " ".join(_BASE_FLAGS + _ARCH_FLAGS) + platform.machine()).encode()
    ).hexdigest()[:16]
    build_dir = _build_dir()
    lib_path = build_dir / f"pecan_kernels_{tag}.so"
    if lib_path.exists():
        return lib_path
    try:
        build_dir.mkdir(parents=True, exist_ok=True)
    except OSError:
        return None
    with tempfile.TemporaryDirectory(dir=str(build_dir)) as tmp:
        src_path = Path(tmp) / "pecan_kernels.c"
        src_path.write_text(source)
        tmp_lib = Path(tmp) / "pecan_kernels.so"
        for cc in _compiler_candidates():
            for flags in (_BASE_FLAGS + _ARCH_FLAGS, _BASE_FLAGS):
                cmd = [cc, *flags, "-o", str(tmp_lib), str(src_path)]
                try:
                    result = subprocess.run(cmd, capture_output=True, timeout=120)
                except (OSError, subprocess.TimeoutExpired):
                    break      # compiler missing/hung: try the next candidate
                if result.returncode == 0:
                    try:
                        os.replace(tmp_lib, lib_path)
                    except OSError:
                        return None
                    return lib_path
    return None


def _load() -> Optional[ctypes.CDLL]:
    global _lib, _load_attempted
    if _load_attempted:
        return _lib
    _load_attempted = True
    if os.environ.get("REPRO_DISABLE_CKERNELS"):
        return None
    lib_path = _compile(_C_SOURCE)
    if lib_path is None:
        return None
    try:
        lib = ctypes.CDLL(str(lib_path))
    except OSError:
        return None
    lib.pecan_d_lookup.restype = None
    lib.pecan_d_lookup.argtypes = [ctypes.c_void_p] * 6 + [ctypes.c_int64] * 10
    _lib = lib
    return _lib


def kernel_available() -> bool:
    """Whether the compiled PECAN-D kernel can be used on this machine."""
    return _load() is not None


def get_pecan_d_kernel():
    """Return the fused PECAN-D lookup kernel, or ``None`` if unavailable.

    The returned callable has signature ``kernel(xp, row_offset, protos,
    table_flat, out, winners, wp, stride, hout, wout)`` with the array
    layouts documented in the C source.  ``xp`` is the already-padded input
    of shape ``(N, C, Hp, Wp)`` (or ``(N, features, 1, 1)``-equivalent for a
    fully connected layer); ``out`` receives the bias-free position-major
    layer output and ``winners`` the per-group winning prototype indices.
    """
    lib = _load()
    if lib is None:
        return None

    def kernel(xp: np.ndarray, row_offset: np.ndarray, protos: np.ndarray,
               table_flat: np.ndarray, out: np.ndarray, winners: np.ndarray,
               wp: int, stride: int, hout: int, wout: int) -> None:
        n = xp.shape[0]
        sample_stride = int(np.prod(xp.shape[1:], dtype=np.int64))
        g, d, p = protos.shape
        cout = table_flat.shape[-1]
        if p > MAX_PROTOTYPES:
            raise ValueError(f"kernel supports at most {MAX_PROTOTYPES} prototypes, got {p}")
        if row_offset.shape != (g * d,):
            raise ValueError(f"row_offset must have shape ({g * d},)")
        for name, arr, dtype in (("xp", xp, np.float64),
                                 ("row_offset", row_offset, np.int64),
                                 ("protos", protos, np.float64),
                                 ("table_flat", table_flat, np.float64),
                                 ("out", out, np.float64),
                                 ("winners", winners, np.int64)):
            if arr.dtype != dtype or not arr.flags.c_contiguous:
                raise ValueError(f"{name} must be C-contiguous {np.dtype(dtype).name}")
        lib.pecan_d_lookup(
            xp.ctypes.data, row_offset.ctypes.data, protos.ctypes.data,
            table_flat.ctypes.data, out.ctypes.data, winners.ctypes.data,
            n, sample_stride, wp, stride, hout, wout, g, d, p, cout)

    return kernel
