"""Wall-clock timing helpers for the throughput benchmarks.

Kept dependency-free (``time.perf_counter`` only) so they can run inside the
test suite as well as in ad-hoc scripts.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional


class Timer:
    """Context-manager stopwatch accumulating across entries.

    >>> t = Timer()
    >>> with t:
    ...     work()
    >>> t.elapsed  # seconds of the last entry
    >>> t.total    # seconds across all entries
    """

    def __init__(self) -> None:
        self.elapsed: float = 0.0
        self.total: float = 0.0
        self.entries: int = 0
        self._start: Optional[float] = None

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        if self._start is not None:
            self.elapsed = time.perf_counter() - self._start
            self.total += self.elapsed
            self.entries += 1
            self._start = None


@dataclass
class ThroughputResult:
    """Aggregate of repeated timed runs of one workload."""

    label: str
    repeats: int
    items_per_run: int
    times: List[float] = field(default_factory=list)

    @property
    def best(self) -> float:
        return min(self.times) if self.times else float("inf")

    @property
    def mean(self) -> float:
        return sum(self.times) / len(self.times) if self.times else float("inf")

    @property
    def items_per_second(self) -> float:
        """Throughput of the best run (items = e.g. images for inference)."""
        return self.items_per_run / self.best if self.best > 0 else float("inf")

    def speedup_over(self, other: "ThroughputResult") -> float:
        """How many times faster this workload ran than ``other`` (best-of)."""
        return other.best / self.best if self.best > 0 else float("inf")

    def to_dict(self) -> dict:
        return {
            "label": self.label,
            "repeats": self.repeats,
            "items_per_run": self.items_per_run,
            "best_seconds": self.best,
            "mean_seconds": self.mean,
            "items_per_second": self.items_per_second,
        }


def measure_throughput(fn: Callable[[], object], label: str, items_per_run: int,
                       repeats: int = 3, warmup: int = 1) -> ThroughputResult:
    """Time ``fn`` ``repeats`` times after ``warmup`` untimed calls."""
    for _ in range(max(0, warmup)):
        fn()
    result = ThroughputResult(label=label, repeats=repeats, items_per_run=items_per_run)
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        fn()
        result.times.append(time.perf_counter() - start)
    return result
