"""Model and deployment-artifact serialization.

Two kinds of artifacts need to move between machines in a PECAN workflow:

* **training checkpoints** — parameters + buffers + optimizer-agnostic
  metadata, so a pretrained baseline (or a converted PECAN model) can be
  reloaded and finetuned later;
* **deployment bundles** — the prototypes and lookup tables of every PECAN
  layer (what the CAM hardware actually stores) plus an optional recorded
  inference program, exported in a plain ``.npz`` container that firmware, an
  RTL testbench or the :mod:`repro.serve` stack can consume without the
  training half of this library.

Re-exports resolve lazily (PEP 562): loading a bundle
(:mod:`repro.io.deployment`) is deployment-side and must not import the
checkpoint machinery, which depends on the training module tree.
"""

import importlib

#: Lazily resolved re-exports: attribute name -> providing submodule.
_EXPORTS = {
    "save_checkpoint": "repro.io.checkpoint",
    "load_checkpoint": "repro.io.checkpoint",
    "Checkpoint": "repro.io.checkpoint",
    "export_deployment_bundle": "repro.io.deployment",
    "load_deployment_bundle": "repro.io.deployment",
    "materialize_bundle_cache": "repro.io.deployment",
    "bundle_cache_dir": "repro.io.deployment",
    "DeploymentBundle": "repro.io.deployment",
    "BundleFormatError": "repro.io.deployment",
}

__all__ = list(_EXPORTS)


def __getattr__(name):
    try:
        module_name = _EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    value = getattr(importlib.import_module(module_name), name)
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))
