"""Model and deployment-artifact serialization.

Two kinds of artifacts need to move between machines in a PECAN workflow:

* **training checkpoints** — parameters + buffers + optimizer-agnostic
  metadata, so a pretrained baseline (or a converted PECAN model) can be
  reloaded and finetuned later;
* **deployment bundles** — the prototypes and lookup tables of every PECAN
  layer (what the CAM hardware actually stores), exported in a plain ``.npz``
  container that firmware or an RTL testbench can consume without this
  library.
"""

from repro.io.checkpoint import save_checkpoint, load_checkpoint, Checkpoint
from repro.io.deployment import (
    export_deployment_bundle,
    load_deployment_bundle,
    DeploymentBundle,
)

__all__ = [
    "save_checkpoint",
    "load_checkpoint",
    "Checkpoint",
    "export_deployment_bundle",
    "load_deployment_bundle",
    "DeploymentBundle",
]
