"""Training checkpoints: save/load model state with metadata.

Checkpoints are plain ``.npz`` archives (no pickling of code objects), so they
stay loadable across refactors of the library.  Arbitrary JSON-serializable
metadata (epoch, accuracy, experiment config) rides along in a ``meta`` entry.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional, Union

import numpy as np

from repro.nn.module import Module

PathLike = Union[str, Path]

_META_KEY = "__checkpoint_meta__"
_FORMAT_VERSION = 1


@dataclass
class Checkpoint:
    """An in-memory checkpoint: a state dict plus metadata."""

    state: Dict[str, np.ndarray]
    metadata: Dict[str, object] = field(default_factory=dict)

    @property
    def num_arrays(self) -> int:
        return len(self.state)

    @property
    def num_values(self) -> int:
        return int(sum(np.asarray(v).size for v in self.state.values()))


def save_checkpoint(model: Module, path: PathLike,
                    metadata: Optional[Dict[str, object]] = None) -> Path:
    """Serialize ``model.state_dict()`` (parameters + buffers) to ``path``.

    Returns the path actually written (a ``.npz`` suffix is appended when
    missing).  ``metadata`` must be JSON serializable.
    """
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz") if path.suffix else path.with_suffix(".npz")
    state = model.state_dict()
    meta = {"format_version": _FORMAT_VERSION, "model_class": type(model).__name__,
            "user": metadata or {}}
    arrays = dict(state)
    arrays[_META_KEY] = np.frombuffer(json.dumps(meta).encode("utf-8"), dtype=np.uint8)
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(path, **arrays)
    return path


def load_checkpoint(path: PathLike, model: Optional[Module] = None,
                    strict: bool = True) -> Checkpoint:
    """Load a checkpoint; optionally restore it into ``model`` in place.

    Raises ``FileNotFoundError`` for missing files and ``ValueError`` for
    archives that were not produced by :func:`save_checkpoint`.
    """
    path = Path(path)
    if not path.exists():
        candidate = path.with_suffix(path.suffix + ".npz") if path.suffix != ".npz" else path
        if candidate.exists():
            path = candidate
        else:
            raise FileNotFoundError(f"checkpoint not found: {path}")
    with np.load(path, allow_pickle=False) as archive:
        if _META_KEY not in archive.files:
            raise ValueError(f"{path} is not a repro checkpoint (missing metadata entry)")
        meta = json.loads(bytes(archive[_META_KEY].tobytes()).decode("utf-8"))
        if meta.get("format_version") != _FORMAT_VERSION:
            raise ValueError(f"unsupported checkpoint format version: {meta.get('format_version')}")
        state = {name: archive[name] for name in archive.files if name != _META_KEY}
    checkpoint = Checkpoint(state=state, metadata=meta.get("user", {}))
    if model is not None:
        model.load_state_dict(checkpoint.state, strict=strict)
    return checkpoint
