"""Deployment bundles: export the CAM contents of a trained PECAN model.

A deployed PECAN layer stores exactly two arrays per layer (Section 3 of the
paper): the prototypes searched by the CAM and the precomputed
weight-prototype products addressed by the match result.  A
:class:`DeploymentBundle` collects those arrays for every PECAN layer of a
model together with the geometry metadata an accelerator needs (kernel size,
stride, padding, group permutation, similarity mode), and round-trips through
a single ``.npz`` file so hardware testbenches can consume it without Python.

Since format version 3 a bundle can additionally carry a serialized
**inference graph**: the :class:`~repro.ir.graph.Graph` recorded by the
tape-based tracer of :mod:`repro.ir.trace` (PECAN layers by reference to
their LUT, conventional layers with their folded parameters, explicit
``add``/``concat`` join nodes for residual and shortcut topologies).  With a
graph embedded, :class:`repro.serve.engine.BundleEngine` reconstructs the
*entire* forward pass from the ``.npz`` alone — no model object, no autograd
— which is what the serving stack runs in production.  Export validates the
graph by replaying it and comparing against the live CAM engine.

Format history (all versions load through :func:`load_deployment_bundle`):

* **v1** — LUTs only; not directly servable.
* **v2** — LUTs + a *linear* inference program (a flat step list; only
  sequential models could export).  Loaded v2 programs lift automatically
  into an equivalent chain graph (:func:`repro.ir.graph.lift_linear_program`)
  and serve unchanged.
* **v3** — LUTs + the inference graph with its topological schedule, so any
  traceable topology (ResNet residuals, ConvMixer blocks, option-A
  concatenation shortcuts) exports and serves.

This module is import-lean on the load path: reading a bundle pulls in the
graph IR but no training modules, so a server process stays free of autograd.

Memory-mapped loading
---------------------
``load_deployment_bundle(path, mmap_mode="r")`` serves the bundle's arrays as
**memory maps** instead of heap copies.  A compressed ``.npz`` cannot be
mapped directly (zip members are neither page-aligned nor stored raw), so the
loader materializes a one-time sidecar cache next to the bundle —
``<bundle>.npz.mmap/<version>/`` holding one plain ``.npy`` file per array —
and then opens every array with ``np.load(..., mmap_mode=...)``.  Versions
are keyed on the bundle file's size+mtime and created atomically (extract to
a staging directory, rename into place), so concurrent loaders — e.g. the N
worker processes of :class:`repro.serve.pool.PoolServer` — race safely;
bundles on read-only mounts fall back to a per-bundle directory under the
system temp dir.  Because all workers map the *same* files, the OS shares
the resident LUT/weight pages between them instead of copying them per
process.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.cam.layer_lut import LayerLUT
from repro.ir.graph import Graph, GraphError, lift_linear_program
from repro.pecan.config import PECANMode

PathLike = Union[str, Path]

_MANIFEST_KEY = "__deployment_manifest__"
_PROGRAM_PREFIX = "__program__"        # v2 array namespace (read-compat)
_GRAPH_PREFIX = "__graph__"            # v3 array namespace
_FORMAT_VERSION = 3
#: Versions this loader understands.  v1 bundles carry LUTs only (no program),
#: v2 bundles carry a linear program (lifted to a graph at load time).
_SUPPORTED_VERSIONS = (1, 2, 3)

#: Per-layer manifest keys every supported version must provide.
_REQUIRED_LAYER_KEYS = (
    "kind", "mode", "temperature", "kernel_size", "stride", "padding",
    "in_channels", "out_channels", "has_bias", "has_permutation",
)


class BundleFormatError(ValueError):
    """A deployment bundle is malformed, truncated or from an unknown version."""


@dataclass
class DeploymentBundle:
    """All CAM/LUT artifacts of one model, keyed by layer name.

    ``graph`` (format v3, optional) is the recorded inference graph.  Nodes
    that need tensors beyond the LUTs (unconverted conv/linear layers,
    batch-norm statistics, traced constants) carry them in their ``arrays``.
    ``program`` holds the raw linear step list of a legacy v2 bundle (its
    lifted graph is stored in ``graph``).  ``input_shape`` is the per-sample
    shape the program was traced with.
    """

    luts: Dict[str, LayerLUT] = field(default_factory=dict)
    metadata: Dict[str, object] = field(default_factory=dict)
    graph: Optional[Graph] = None
    program: Optional[List[Dict[str, object]]] = None
    input_shape: Optional[Tuple[int, ...]] = None

    def __post_init__(self) -> None:
        # Legacy construction path: a bundle built with only a linear program
        # (old v2 in-process API) lifts to a graph automatically.
        if self.graph is None and self.program:
            self.graph = lift_linear_program(self.program)

    @property
    def layer_names(self) -> List[str]:
        return list(self.luts)

    @property
    def has_program(self) -> bool:
        """True when the bundle is servable (carries an inference graph)."""
        return self.graph is not None

    def total_values(self) -> int:
        """Total scalar values stored across prototypes, tables and graph arrays."""
        total = sum(lut.prototypes.size + lut.table.size for lut in self.luts.values())
        if self.graph is not None:
            for node in self.graph.nodes:
                for array in node.arrays.values():
                    total += array.size
        return int(total)

    def is_multiplier_free(self) -> bool:
        """True when every exported layer uses the distance (PECAN-D) mode."""
        return all(lut.mode is PECANMode.DISTANCE for lut in self.luts.values())


# --------------------------------------------------------------------------- #
# Graph tracing (export side; imports the training stack lazily)
# --------------------------------------------------------------------------- #
def trace_inference_graph(model, input_shape: Sequence[int]) -> Graph:
    """Record the inference graph of ``model`` for one per-sample input shape.

    Thin wrapper over :func:`repro.ir.trace.trace_graph` (tape-based DAG
    tracing through autograd, replacing the old linear recorder).  Residual
    additions and channel concatenations trace as explicit join nodes;
    untraceable models raise :class:`repro.ir.trace.GraphTraceError` naming
    every offending module and the supported-op list.
    """
    from repro.ir.trace import trace_graph

    return trace_graph(model, input_shape)


def export_deployment_bundle(model, path: PathLike,
                             metadata: Optional[Dict[str, object]] = None,
                             input_shape: Optional[Sequence[int]] = None) -> Path:
    """Build the LUTs of every PECAN layer in ``model`` and write them to ``path``.

    When ``input_shape`` (per-sample, e.g. ``(1, 28, 28)``) is given, the
    model's inference graph is traced and embedded so the bundle alone can
    drive :class:`repro.serve.engine.BundleEngine`.  The traced graph is
    replay-verified against :class:`repro.cam.inference.CAMInferenceEngine`
    before the bundle is written; an untraceable model raises ``ValueError``
    (:class:`repro.ir.trace.GraphTraceError`) naming the offending modules
    instead of exporting a silently wrong program.
    """
    from repro.cam.lut import build_model_luts

    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz") if path.suffix else path.with_suffix(".npz")
    luts = build_model_luts(model)
    if not luts:
        raise ValueError("model contains no PECAN layers; nothing to export")

    graph = None
    if input_shape is not None:
        input_shape = tuple(int(s) for s in input_shape)
        graph = trace_inference_graph(model, input_shape)
        traced_pecan = set(graph.pecan_layers())
        if traced_pecan != set(luts):
            raise ValueError(
                f"traced graph exercises PECAN layers {sorted(traced_pecan)} but the "
                f"model contains {sorted(luts)}; some PECAN layers never ran on the "
                f"traced input shape {input_shape}, so the bundle cannot be exported "
                f"as a servable program")
        _verify_graph(model, luts, graph, input_shape)

    arrays: Dict[str, np.ndarray] = {}
    manifest: Dict[str, object] = {
        "format_version": _FORMAT_VERSION,
        "layers": {},
        "user": metadata or {},
        "input_shape": list(input_shape) if input_shape is not None else None,
        "graph": None,
        "graph_output": None,
    }
    for name, lut in luts.items():
        arrays[f"{name}/prototypes"] = lut.prototypes
        arrays[f"{name}/table"] = lut.table
        if lut.bias is not None:
            arrays[f"{name}/bias"] = lut.bias
        if lut.group_permutation is not None:
            arrays[f"{name}/permutation"] = lut.group_permutation
        manifest["layers"][name] = {
            "kind": lut.kind,
            "mode": lut.mode.value,
            "temperature": lut.temperature,
            "kernel_size": lut.kernel_size,
            "stride": lut.stride,
            "padding": lut.padding,
            "in_channels": lut.in_channels,
            "out_channels": lut.out_channels,
            "has_bias": lut.bias is not None,
            "has_permutation": lut.group_permutation is not None,
        }
    if graph is not None:
        entries, graph_arrays = graph.to_manifest()
        manifest["graph"] = entries
        manifest["graph_output"] = graph.output_id
        for key, array in graph_arrays.items():
            arrays[f"{_GRAPH_PREFIX}/{key}"] = array

    arrays[_MANIFEST_KEY] = np.frombuffer(json.dumps(manifest).encode("utf-8"), dtype=np.uint8)
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(path, **arrays)
    return path


def _verify_graph(model, luts, graph, input_shape) -> None:
    """Replay the traced graph and compare against the model's own forward.

    The oracle is :meth:`CAMInferenceEngine.predict_via_module` — Algorithm 1
    through the *live* model forward with only the PECAN layers swapped for
    their LUT runtimes, never through the traced graph.  Comparing the
    bundle replay against the graph-executing engine would be circular: a
    mis-trace (a forward that smuggles input-dependent values past the trace
    hooks, which the tracer then freezes as constants) would replay
    identically on both sides and export a silently wrong program.  Against
    the module forward it diverges on the random probe and is rejected here.
    """
    from repro.cam.inference import CAMInferenceEngine
    from repro.serve.engine import BundleEngine

    bundle = DeploymentBundle(luts=dict(luts), graph=graph,
                              input_shape=tuple(input_shape))
    rng = np.random.default_rng(0)
    probe = rng.standard_normal((2, *input_shape))
    replayed = BundleEngine(bundle).predict(probe)
    expected = CAMInferenceEngine(model).predict_via_module(probe)
    exact = bundle.is_multiplier_free()
    close = (np.array_equal(replayed, expected) if exact
             else np.allclose(replayed, expected, atol=1e-8))
    if not close:
        raise ValueError(
            "replaying the traced inference graph does not reproduce the "
            "model's own forward pass; the model must perform an operation "
            "the tracer cannot capture (e.g. math smuggled through fresh "
            "arrays) — export without input_shape to write a LUT-only bundle")


# --------------------------------------------------------------------------- #
# Loading (deployment side; no training imports)
# --------------------------------------------------------------------------- #
def _manifest_from_archive(archive, path: Path) -> Dict[str, object]:
    if _MANIFEST_KEY not in archive.files:
        raise BundleFormatError(f"{path} is not a repro deployment bundle "
                                f"(missing {_MANIFEST_KEY!r})")
    try:
        manifest = json.loads(bytes(archive[_MANIFEST_KEY].tobytes()).decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise BundleFormatError(f"{path}: deployment manifest is corrupt: {exc}") from exc
    if not isinstance(manifest, dict):
        raise BundleFormatError(f"{path}: deployment manifest must be a JSON object")
    version = manifest.get("format_version")
    if version not in _SUPPORTED_VERSIONS:
        raise BundleFormatError(
            f"{path}: unsupported deployment bundle format version {version!r}; "
            f"this build reads versions {list(_SUPPORTED_VERSIONS)} "
            f"(re-export the bundle with the current repro.io)")
    if not isinstance(manifest.get("layers"), dict) or not manifest["layers"]:
        raise BundleFormatError(f"{path}: manifest has no 'layers' table")
    return manifest


def _archive_array(archive, key: str, path: Path) -> np.ndarray:
    if key not in archive.files:
        raise BundleFormatError(f"{path}: bundle is missing array {key!r} "
                                f"referenced by its manifest")
    return archive[key]


# --------------------------------------------------------------------------- #
# Memory-mapped array cache (one .npy per array, shared across processes)
# --------------------------------------------------------------------------- #
_CACHE_STAMP_NAME = "SOURCE_STAMP"


def bundle_cache_dir(path: PathLike) -> Path:
    """Preferred root of the extraction cache: ``<bundle>.npz.mmap/``.

    :func:`materialize_bundle_cache` falls back to
    :func:`_fallback_cache_dir` when this sidecar location is unusable (the
    bundle lives on a read-only mount, e.g. a container image layer) — mmap
    page sharing only needs every process to open the *same* files, wherever
    they live.
    """
    path = Path(path)
    return path.with_name(path.name + ".mmap")


def _fallback_cache_dir(path: Path) -> Path:
    import hashlib

    digest = hashlib.sha1(str(path.resolve()).encode("utf-8")).hexdigest()[:16]
    return (Path(tempfile.gettempdir()) / "repro-bundle-cache"
            / f"{path.name}.{digest}")


def _cache_stamp(path: Path) -> str:
    stat = path.stat()
    return f"size={stat.st_size} mtime_ns={stat.st_mtime_ns} cache=1"


def materialize_bundle_cache(path: PathLike, refresh: bool = False) -> Path:
    """Extract every array of bundle ``path`` into its mmap cache directory.

    Returns the cache directory holding one plain ``.npy`` per bundle array.
    The cache is **versioned by source stamp** (size + mtime of the ``.npz``):
    each version is a subdirectory of :func:`bundle_cache_dir` (or of the
    temp-dir fallback when the sidecar is unwritable) that is extracted into
    a staging directory and atomically renamed into place, so

    * a re-exported bundle gets a fresh version (stale versions are pruned
      best-effort),
    * concurrent extractors — the N workers of a serving pool — race safely:
      whoever renames first wins and everyone else adopts that directory,
    * a version directory's existence implies it is complete.
    """
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"deployment bundle not found: {path}")
    stamp = _cache_stamp(path)
    version = stamp.replace(" ", "_").replace("=", "-")
    roots = (bundle_cache_dir(path), _fallback_cache_dir(path))
    if not refresh:
        for root in roots:
            if (root / version).is_dir():
                return root / version
    last_error: Optional[OSError] = None
    for root in roots:
        cache = root / version
        try:
            root.mkdir(parents=True, exist_ok=True)
            staging = Path(tempfile.mkdtemp(prefix=version + ".", dir=str(root)))
        except OSError as exc:
            last_error = exc                   # unwritable root: try fallback
            continue
        try:
            with np.load(path, allow_pickle=False) as archive:
                for key in archive.files:
                    target = staging / (key + ".npy")
                    target.parent.mkdir(parents=True, exist_ok=True)
                    np.save(target, archive[key])
            (staging / _CACHE_STAMP_NAME).write_text(stamp)
            if refresh and cache.is_dir():
                shutil.rmtree(cache, ignore_errors=True)
            try:
                os.rename(staging, cache)
            except OSError:
                if not cache.is_dir():         # not just "a concurrent winner"
                    raise
                shutil.rmtree(staging, ignore_errors=True)
        except BaseException:
            shutil.rmtree(staging, ignore_errors=True)
            raise
        # Best-effort prune of stale versions — but only while this
        # extractor's view of the bundle is still current: if the bundle was
        # re-exported mid-extraction, a concurrent loader may have installed
        # a *newer* version that must survive.  Current-version entries (the
        # winning cache and any concurrent extractor's staging, which shares
        # the version prefix) are always left alone; unlinking files another
        # process still maps is safe on POSIX — existing maps stay valid.
        try:
            still_current = _cache_stamp(path) == stamp
        except OSError:
            still_current = False
        if still_current:
            for entry in root.iterdir():
                if not entry.name.startswith(version):
                    shutil.rmtree(entry, ignore_errors=True)
        return cache
    raise last_error


def _cache_array(cache: Path, key: str, path: Path, mmap_mode: str) -> np.ndarray:
    npy = cache / (key + ".npy")
    if not npy.exists():
        raise BundleFormatError(f"{path}: bundle is missing array {key!r} "
                                f"referenced by its manifest")
    return np.load(npy, mmap_mode=mmap_mode, allow_pickle=False)


# --------------------------------------------------------------------------- #
# Manifest interpretation (shared by the eager and memory-mapped loaders)
# --------------------------------------------------------------------------- #
_Fetch = Callable[[str], np.ndarray]


def _load_v2_program(fetch: _Fetch, manifest, path: Path) -> List[Dict[str, object]]:
    """Parse a v2 linear step list (with its ``__program__`` array table)."""
    program = []
    for index, entry in enumerate(manifest["program"]):
        if "op" not in entry:
            raise BundleFormatError(
                f"{path}: program step {index} is missing its 'op' key")
        step = {key: value for key, value in entry.items() if key != "array_keys"}
        step["arrays"] = {
            key: fetch(f"{_PROGRAM_PREFIX}/{index}/{key}")
            for key in entry.get("array_keys", [])}
        program.append(step)
    return program


def _load_v3_graph(fetch: _Fetch, manifest, path: Path) -> Graph:
    """Deserialize and validate a v3 inference graph."""
    if manifest.get("graph_output") is None:
        raise BundleFormatError(f"{path}: graph manifest has no 'graph_output'")

    def lookup(node_id: int, key: str) -> np.ndarray:
        return fetch(f"{_GRAPH_PREFIX}/{node_id}/{key}")

    try:
        return Graph.from_manifest(manifest["graph"], manifest["graph_output"],
                                   lookup)
    except GraphError as exc:
        raise BundleFormatError(f"{path}: invalid inference graph: {exc}") from exc


def _bundle_from_manifest(manifest: Dict[str, object], fetch: _Fetch,
                          path: Path) -> DeploymentBundle:
    """Assemble a :class:`DeploymentBundle`, pulling arrays through ``fetch``."""
    luts: Dict[str, LayerLUT] = {}
    for name, info in manifest["layers"].items():
        missing = [key for key in _REQUIRED_LAYER_KEYS if key not in info]
        if missing:
            raise BundleFormatError(
                f"{path}: layer {name!r} manifest entry is missing keys {missing}")
        try:
            mode = PECANMode.parse(info["mode"])
        except ValueError as exc:
            raise BundleFormatError(f"{path}: layer {name!r}: {exc}") from exc
        luts[name] = LayerLUT(
            name=name,
            kind=info["kind"],
            mode=mode,
            prototypes=fetch(f"{name}/prototypes"),
            table=fetch(f"{name}/table"),
            bias=fetch(f"{name}/bias") if info["has_bias"] else None,
            temperature=info["temperature"],
            kernel_size=info["kernel_size"],
            stride=info["stride"],
            padding=info["padding"],
            in_channels=info["in_channels"],
            out_channels=info["out_channels"],
            group_permutation=(fetch(f"{name}/permutation")
                               if info["has_permutation"] else None),
        )
    graph = None
    program = None
    if manifest.get("graph"):
        graph = _load_v3_graph(fetch, manifest, path)
    elif manifest.get("program"):
        program = _load_v2_program(fetch, manifest, path)
        try:
            graph = lift_linear_program(program)
        except GraphError as exc:
            raise BundleFormatError(
                f"{path}: cannot lift v2 linear program: {exc}") from exc
    if graph is not None:
        unknown = [name for name in graph.pecan_layers() if name not in luts]
        if unknown:
            raise BundleFormatError(
                f"{path}: inference program references unknown PECAN "
                f"layer(s) {sorted(set(unknown))}")
    input_shape = (tuple(manifest["input_shape"])
                   if manifest.get("input_shape") else None)
    return DeploymentBundle(luts=luts, metadata=manifest.get("user", {}),
                            graph=graph, program=program, input_shape=input_shape)


def load_deployment_bundle(path: PathLike,
                           mmap_mode: Optional[str] = None) -> DeploymentBundle:
    """Read a bundle written by :func:`export_deployment_bundle`.

    Format-v2 bundles (linear programs) load via the automatic lift-to-graph
    path and serve exactly as before; v1 bundles load LUT-only (servable only
    after re-export with an ``input_shape``).

    With ``mmap_mode`` (typically ``"r"``) every array is served as a
    read-only memory map of the sidecar cache built by
    :func:`materialize_bundle_cache` instead of a heap copy.  Array *values*
    are bitwise-identical to an eager load; the difference is purely where
    the bytes live — in file-backed pages the OS shares across every process
    mapping the same bundle.

    Raises
    ------
    FileNotFoundError
        If ``path`` does not exist.
    BundleFormatError
        If the file is not a bundle, its manifest is corrupt, its format
        version is unknown, a per-layer entry misses required keys, an array
        referenced by the manifest is absent from the archive, or the
        embedded inference graph is structurally invalid.  (A subclass of
        ``ValueError``.)
    """
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"deployment bundle not found: {path}")
    if mmap_mode is not None:
        cache = materialize_bundle_cache(path)
        with np.load(path, allow_pickle=False) as archive:
            manifest = _manifest_from_archive(archive, path)
        return _bundle_from_manifest(
            manifest, lambda key: _cache_array(cache, key, path, mmap_mode), path)
    with np.load(path, allow_pickle=False) as archive:
        manifest = _manifest_from_archive(archive, path)
        return _bundle_from_manifest(
            manifest, lambda key: _archive_array(archive, key, path), path)
