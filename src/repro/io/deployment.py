"""Deployment bundles: export the CAM contents of a trained PECAN model.

A deployed PECAN layer stores exactly two arrays per layer (Section 3 of the
paper): the prototypes searched by the CAM and the precomputed
weight-prototype products addressed by the match result.  A
:class:`DeploymentBundle` collects those arrays for every PECAN layer of a
model together with the geometry metadata an accelerator needs (kernel size,
stride, padding, group permutation, similarity mode), and round-trips through
a single ``.npz`` file so hardware testbenches can consume it without Python.

Since format version 2 a bundle can additionally carry a recorded **inference
program**: a linear trace of every layer the model executes (PECAN layers by
reference to their LUT, conventional layers with their folded parameters).
With a program embedded, :class:`repro.serve.engine.BundleEngine` can
reconstruct the *entire* forward pass from the ``.npz`` alone — no model
object, no autograd — which is what the serving stack runs in production.
Export validates the trace by replaying it and comparing against the live
CAM engine, so a bundle whose model is not sequentially traceable (e.g. has
residual additions outside leaf modules) is rejected instead of silently
serving wrong outputs.

This module is import-lean on the load path: reading a bundle pulls in no
training modules, so a server process stays free of autograd.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.cam.layer_lut import LayerLUT
from repro.pecan.config import PECANMode

PathLike = Union[str, Path]

_MANIFEST_KEY = "__deployment_manifest__"
_PROGRAM_PREFIX = "__program__"
_FORMAT_VERSION = 2
#: Versions this loader understands.  v1 bundles carry LUTs only (no program).
_SUPPORTED_VERSIONS = (1, 2)

#: Per-layer manifest keys every supported version must provide.
_REQUIRED_LAYER_KEYS = (
    "kind", "mode", "temperature", "kernel_size", "stride", "padding",
    "in_channels", "out_channels", "has_bias", "has_permutation",
)


class BundleFormatError(ValueError):
    """A deployment bundle is malformed, truncated or from an unknown version."""


@dataclass
class DeploymentBundle:
    """All CAM/LUT artifacts of one model, keyed by layer name.

    ``program`` (format v2, optional) is the recorded inference program: a
    list of op dicts in execution order.  Steps that need tensors beyond the
    LUTs (unconverted conv/linear layers, batch-norm statistics) carry them
    in their ``"arrays"`` entry.  ``input_shape`` is the per-sample shape the
    program was traced with.
    """

    luts: Dict[str, LayerLUT] = field(default_factory=dict)
    metadata: Dict[str, object] = field(default_factory=dict)
    program: Optional[List[Dict[str, object]]] = None
    input_shape: Optional[Tuple[int, ...]] = None

    @property
    def layer_names(self) -> List[str]:
        return list(self.luts)

    @property
    def has_program(self) -> bool:
        return bool(self.program)

    def total_values(self) -> int:
        """Total scalar values stored across prototypes, tables and program arrays."""
        total = sum(lut.prototypes.size + lut.table.size for lut in self.luts.values())
        for step in self.program or []:
            for array in step.get("arrays", {}).values():
                total += array.size
        return int(total)

    def is_multiplier_free(self) -> bool:
        """True when every exported layer uses the distance (PECAN-D) mode."""
        return all(lut.mode is PECANMode.DISTANCE for lut in self.luts.values())


# --------------------------------------------------------------------------- #
# Program tracing (export side; imports the training stack lazily)
# --------------------------------------------------------------------------- #
def trace_inference_program(model, input_shape: Sequence[int]):
    """Record the linear inference program of ``model`` for one input shape.

    Every *leaf* module's forward is wrapped, a dummy batch of shape
    ``(1, *input_shape)`` is pushed through the model in eval mode, and each
    call is serialized to an op dict (PECAN layers by name, conventional
    layers with their parameters).  Returns the list of steps in execution
    order.  Models whose forward performs tensor math outside leaf modules
    (residual additions, concatenations) produce a program that replays
    incorrectly; :func:`export_deployment_bundle` detects that by replaying.
    """
    from repro.autograd.tensor import Tensor, no_grad
    from repro.nn.layers import (AvgPool2d, BatchNorm2d, Conv2d, Dropout, Flatten,
                                 GELU, GlobalAvgPool2d, Identity, Linear, MaxPool2d,
                                 ReLU)
    from repro.nn.module import Module
    from repro.pecan.layers import PECANConv2d, PECANLinear

    def describe(name: str, module: Module) -> Dict[str, object]:
        if isinstance(module, (PECANConv2d, PECANLinear)):
            return {"op": "pecan", "layer": name}
        if isinstance(module, Conv2d):
            arrays = {"weight": np.asarray(module.weight.data, dtype=np.float64)}
            if module.bias is not None:
                arrays["bias"] = np.asarray(module.bias.data, dtype=np.float64)
            return {"op": "conv", "stride": module.stride, "padding": module.padding,
                    "arrays": arrays}
        if isinstance(module, Linear):
            arrays = {"weight": np.asarray(module.weight.data, dtype=np.float64)}
            if module.bias is not None:
                arrays["bias"] = np.asarray(module.bias.data, dtype=np.float64)
            return {"op": "linear", "arrays": arrays}
        if isinstance(module, BatchNorm2d):    # covers BatchNorm1d subclass too
            arrays = {"mean": np.asarray(module.running_mean, dtype=np.float64),
                      "var": np.asarray(module.running_var, dtype=np.float64),
                      "gamma": np.asarray(module.weight.data, dtype=np.float64),
                      "beta": np.asarray(module.bias.data, dtype=np.float64)}
            return {"op": "batchnorm", "eps": module.eps, "arrays": arrays}
        if isinstance(module, ReLU):
            return {"op": "relu"}
        if isinstance(module, GELU):
            return {"op": "gelu"}
        if isinstance(module, MaxPool2d):
            return {"op": "maxpool", "kernel_size": module.kernel_size,
                    "stride": module.stride}
        if isinstance(module, AvgPool2d):
            return {"op": "avgpool", "kernel_size": module.kernel_size,
                    "stride": module.stride}
        if isinstance(module, GlobalAvgPool2d):
            return {"op": "global_avgpool"}
        if isinstance(module, Flatten):
            return {"op": "flatten"}
        if isinstance(module, (Dropout, Identity)):
            return {"op": "identity"}
        raise ValueError(
            f"cannot serialize module {name!r} of type {type(module).__name__} "
            f"into a deployment program; supported leaves are PECAN layers, "
            f"Conv2d/Linear, BatchNorm, ReLU/GELU, pooling, Flatten, "
            f"Dropout and Identity")

    # PECAN layers are trace leaves even though they own child modules (their
    # codebook); nothing nested inside one is wrapped.
    pecan_names = [name for name, module in model.named_modules()
                   if isinstance(module, (PECANConv2d, PECANLinear))]
    leaves = [(name, module) for name, module in model.named_modules()
              if name
              and (isinstance(module, (PECANConv2d, PECANLinear))
                   or (not list(module.children())
                       and not any(name.startswith(p + ".") for p in pecan_names)))]
    program: List[Dict[str, object]] = []
    originals = {}

    def recorder(name: str, module: Module, original):
        def wrapped(x):
            program.append(describe(name, module))
            return original(x)
        return wrapped

    was_training = model.training
    model.eval()
    try:
        for name, module in leaves:
            originals[name] = module.forward
            module.forward = recorder(name, module, module.forward)
        with no_grad():
            model(Tensor(np.zeros((1, *input_shape), dtype=np.float64)))
    finally:
        for name, module in leaves:
            module.forward = originals[name]
        model.train(was_training)
    return program


def export_deployment_bundle(model, path: PathLike,
                             metadata: Optional[Dict[str, object]] = None,
                             input_shape: Optional[Sequence[int]] = None) -> Path:
    """Build the LUTs of every PECAN layer in ``model`` and write them to ``path``.

    When ``input_shape`` (per-sample, e.g. ``(1, 28, 28)``) is given, the
    model's inference program is traced and embedded so the bundle alone can
    drive :class:`repro.serve.engine.BundleEngine`.  The traced program is
    replay-verified against :class:`repro.cam.inference.CAMInferenceEngine`
    before the bundle is written; a model that is not sequentially traceable
    raises ``ValueError`` instead of exporting a silently wrong program.
    """
    from repro.cam.lut import build_model_luts

    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz") if path.suffix else path.with_suffix(".npz")
    luts = build_model_luts(model)
    if not luts:
        raise ValueError("model contains no PECAN layers; nothing to export")

    program = None
    if input_shape is not None:
        input_shape = tuple(int(s) for s in input_shape)
        program = trace_inference_program(model, input_shape)
        traced_pecan = {step["layer"] for step in program if step["op"] == "pecan"}
        if traced_pecan != set(luts):
            raise ValueError(
                f"traced program exercises PECAN layers {sorted(traced_pecan)} but the "
                f"model contains {sorted(luts)}; the model's forward is not a plain "
                f"sequence of its leaf modules, so it cannot be exported as a program")
        _verify_program(model, luts, program, input_shape)

    arrays: Dict[str, np.ndarray] = {}
    manifest: Dict[str, object] = {
        "format_version": _FORMAT_VERSION,
        "layers": {},
        "user": metadata or {},
        "input_shape": list(input_shape) if input_shape is not None else None,
        "program": None,
    }
    for name, lut in luts.items():
        arrays[f"{name}/prototypes"] = lut.prototypes
        arrays[f"{name}/table"] = lut.table
        if lut.bias is not None:
            arrays[f"{name}/bias"] = lut.bias
        if lut.group_permutation is not None:
            arrays[f"{name}/permutation"] = lut.group_permutation
        manifest["layers"][name] = {
            "kind": lut.kind,
            "mode": lut.mode.value,
            "temperature": lut.temperature,
            "kernel_size": lut.kernel_size,
            "stride": lut.stride,
            "padding": lut.padding,
            "in_channels": lut.in_channels,
            "out_channels": lut.out_channels,
            "has_bias": lut.bias is not None,
            "has_permutation": lut.group_permutation is not None,
        }
    if program is not None:
        serialized_steps = []
        for index, step in enumerate(program):
            entry = {key: value for key, value in step.items() if key != "arrays"}
            entry["array_keys"] = sorted(step.get("arrays", {}))
            for key, array in step.get("arrays", {}).items():
                arrays[f"{_PROGRAM_PREFIX}/{index}/{key}"] = array
            serialized_steps.append(entry)
        manifest["program"] = serialized_steps

    arrays[_MANIFEST_KEY] = np.frombuffer(json.dumps(manifest).encode("utf-8"), dtype=np.uint8)
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(path, **arrays)
    return path


def _verify_program(model, luts, program, input_shape) -> None:
    """Replay the traced program and compare against the live CAM engine."""
    from repro.cam.inference import CAMInferenceEngine
    from repro.serve.engine import BundleEngine

    bundle = DeploymentBundle(luts=dict(luts), program=program,
                              input_shape=tuple(input_shape))
    rng = np.random.default_rng(0)
    probe = rng.standard_normal((2, *input_shape))
    replayed = BundleEngine(bundle).predict(probe)
    expected = CAMInferenceEngine(model).predict(probe)
    exact = bundle.is_multiplier_free()
    close = (np.array_equal(replayed, expected) if exact
             else np.allclose(replayed, expected, atol=1e-8))
    if not close:
        raise ValueError(
            "replaying the traced inference program does not reproduce the CAM "
            "engine's outputs; the model's forward must perform tensor math "
            "outside its leaf modules (e.g. residual additions), which a linear "
            "program cannot express — export without input_shape to write a "
            "LUT-only bundle")


# --------------------------------------------------------------------------- #
# Loading (deployment side; no training imports)
# --------------------------------------------------------------------------- #
def _manifest_from_archive(archive, path: Path) -> Dict[str, object]:
    if _MANIFEST_KEY not in archive.files:
        raise BundleFormatError(f"{path} is not a repro deployment bundle "
                                f"(missing {_MANIFEST_KEY!r})")
    try:
        manifest = json.loads(bytes(archive[_MANIFEST_KEY].tobytes()).decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise BundleFormatError(f"{path}: deployment manifest is corrupt: {exc}") from exc
    if not isinstance(manifest, dict):
        raise BundleFormatError(f"{path}: deployment manifest must be a JSON object")
    version = manifest.get("format_version")
    if version not in _SUPPORTED_VERSIONS:
        raise BundleFormatError(
            f"{path}: unsupported deployment bundle format version {version!r}; "
            f"this build reads versions {list(_SUPPORTED_VERSIONS)} "
            f"(re-export the bundle with the current repro.io)")
    if not isinstance(manifest.get("layers"), dict) or not manifest["layers"]:
        raise BundleFormatError(f"{path}: manifest has no 'layers' table")
    return manifest


def _archive_array(archive, key: str, path: Path) -> np.ndarray:
    if key not in archive.files:
        raise BundleFormatError(f"{path}: bundle is missing array {key!r} "
                                f"referenced by its manifest")
    return archive[key]


def load_deployment_bundle(path: PathLike) -> DeploymentBundle:
    """Read a bundle written by :func:`export_deployment_bundle`.

    Raises
    ------
    FileNotFoundError
        If ``path`` does not exist.
    BundleFormatError
        If the file is not a bundle, its manifest is corrupt, its format
        version is unknown, a per-layer entry misses required keys, or an
        array referenced by the manifest is absent from the archive.  (A
        subclass of ``ValueError``.)
    """
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"deployment bundle not found: {path}")
    with np.load(path, allow_pickle=False) as archive:
        manifest = _manifest_from_archive(archive, path)
        luts: Dict[str, LayerLUT] = {}
        for name, info in manifest["layers"].items():
            missing = [key for key in _REQUIRED_LAYER_KEYS if key not in info]
            if missing:
                raise BundleFormatError(
                    f"{path}: layer {name!r} manifest entry is missing keys {missing}")
            try:
                mode = PECANMode.parse(info["mode"])
            except ValueError as exc:
                raise BundleFormatError(f"{path}: layer {name!r}: {exc}") from exc
            luts[name] = LayerLUT(
                name=name,
                kind=info["kind"],
                mode=mode,
                prototypes=_archive_array(archive, f"{name}/prototypes", path),
                table=_archive_array(archive, f"{name}/table", path),
                bias=(_archive_array(archive, f"{name}/bias", path)
                      if info["has_bias"] else None),
                temperature=info["temperature"],
                kernel_size=info["kernel_size"],
                stride=info["stride"],
                padding=info["padding"],
                in_channels=info["in_channels"],
                out_channels=info["out_channels"],
                group_permutation=(_archive_array(archive, f"{name}/permutation", path)
                                   if info["has_permutation"] else None),
            )
        program = None
        if manifest.get("program"):
            program = []
            for index, entry in enumerate(manifest["program"]):
                if "op" not in entry:
                    raise BundleFormatError(
                        f"{path}: program step {index} is missing its 'op' key")
                step = {key: value for key, value in entry.items() if key != "array_keys"}
                step["arrays"] = {
                    key: _archive_array(archive, f"{_PROGRAM_PREFIX}/{index}/{key}", path)
                    for key in entry.get("array_keys", [])}
                if step["op"] == "pecan" and step.get("layer") not in luts:
                    raise BundleFormatError(
                        f"{path}: program step {index} references unknown PECAN "
                        f"layer {step.get('layer')!r}")
                program.append(step)
        input_shape = (tuple(manifest["input_shape"])
                       if manifest.get("input_shape") else None)
    return DeploymentBundle(luts=luts, metadata=manifest.get("user", {}),
                            program=program, input_shape=input_shape)
