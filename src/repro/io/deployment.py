"""Deployment bundles: export the CAM contents of a trained PECAN model.

A deployed PECAN layer stores exactly two arrays per layer (Section 3 of the
paper): the prototypes searched by the CAM and the precomputed
weight-prototype products addressed by the match result.  A
:class:`DeploymentBundle` collects those arrays for every PECAN layer of a
model together with the geometry metadata an accelerator needs (kernel size,
stride, padding, group permutation, similarity mode), and round-trips through
a single ``.npz`` file so hardware testbenches can consume it without Python.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

import numpy as np

from repro.cam.lut import LayerLUT, build_model_luts
from repro.nn.module import Module
from repro.pecan.config import PECANMode

PathLike = Union[str, Path]

_MANIFEST_KEY = "__deployment_manifest__"
_FORMAT_VERSION = 1


@dataclass
class DeploymentBundle:
    """All CAM/LUT artifacts of one model, keyed by layer name."""

    luts: Dict[str, LayerLUT] = field(default_factory=dict)
    metadata: Dict[str, object] = field(default_factory=dict)

    @property
    def layer_names(self) -> List[str]:
        return list(self.luts)

    def total_values(self) -> int:
        """Total scalar values stored across prototypes and tables."""
        return int(sum(lut.prototypes.size + lut.table.size for lut in self.luts.values()))

    def is_multiplier_free(self) -> bool:
        """True when every exported layer uses the distance (PECAN-D) mode."""
        return all(lut.mode is PECANMode.DISTANCE for lut in self.luts.values())


def export_deployment_bundle(model: Module, path: PathLike,
                             metadata: Optional[Dict[str, object]] = None) -> Path:
    """Build the LUTs of every PECAN layer in ``model`` and write them to ``path``."""
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz") if path.suffix else path.with_suffix(".npz")
    luts = build_model_luts(model)
    if not luts:
        raise ValueError("model contains no PECAN layers; nothing to export")

    arrays: Dict[str, np.ndarray] = {}
    manifest: Dict[str, object] = {
        "format_version": _FORMAT_VERSION,
        "layers": {},
        "user": metadata or {},
    }
    for name, lut in luts.items():
        arrays[f"{name}/prototypes"] = lut.prototypes
        arrays[f"{name}/table"] = lut.table
        if lut.bias is not None:
            arrays[f"{name}/bias"] = lut.bias
        if lut.group_permutation is not None:
            arrays[f"{name}/permutation"] = lut.group_permutation
        manifest["layers"][name] = {
            "kind": lut.kind,
            "mode": lut.mode.value,
            "temperature": lut.temperature,
            "kernel_size": lut.kernel_size,
            "stride": lut.stride,
            "padding": lut.padding,
            "in_channels": lut.in_channels,
            "out_channels": lut.out_channels,
            "has_bias": lut.bias is not None,
            "has_permutation": lut.group_permutation is not None,
        }
    arrays[_MANIFEST_KEY] = np.frombuffer(json.dumps(manifest).encode("utf-8"), dtype=np.uint8)
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(path, **arrays)
    return path


def load_deployment_bundle(path: PathLike) -> DeploymentBundle:
    """Read a bundle written by :func:`export_deployment_bundle`."""
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"deployment bundle not found: {path}")
    with np.load(path, allow_pickle=False) as archive:
        if _MANIFEST_KEY not in archive.files:
            raise ValueError(f"{path} is not a repro deployment bundle")
        manifest = json.loads(bytes(archive[_MANIFEST_KEY].tobytes()).decode("utf-8"))
        if manifest.get("format_version") != _FORMAT_VERSION:
            raise ValueError("unsupported deployment bundle format version")
        luts: Dict[str, LayerLUT] = {}
        for name, info in manifest["layers"].items():
            luts[name] = LayerLUT(
                name=name,
                kind=info["kind"],
                mode=PECANMode.parse(info["mode"]),
                prototypes=archive[f"{name}/prototypes"],
                table=archive[f"{name}/table"],
                bias=archive[f"{name}/bias"] if info["has_bias"] else None,
                temperature=info["temperature"],
                kernel_size=info["kernel_size"],
                stride=info["stride"],
                padding=info["padding"],
                in_channels=info["in_channels"],
                out_channels=info["out_channels"],
                group_permutation=(archive[f"{name}/permutation"]
                                   if info["has_permutation"] else None),
            )
    return DeploymentBundle(luts=luts, metadata=manifest.get("user", {}))
