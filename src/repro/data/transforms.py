"""Batch-level data augmentation transforms.

Each transform is a callable ``(images, rng=...) -> images`` acting on a
``(N, C, H, W)`` batch; :class:`Compose` chains them.  These mirror the
standard CIFAR training recipe (random crop with padding, horizontal flip,
normalization) used by the paper's baselines.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np


class Compose:
    """Apply a sequence of transforms in order."""

    def __init__(self, transforms: Sequence):
        self.transforms = list(transforms)

    def __call__(self, images: np.ndarray, rng: Optional[np.random.Generator] = None) -> np.ndarray:
        for transform in self.transforms:
            images = transform(images, rng=rng)
        return images


class RandomHorizontalFlip:
    """Flip each image left-right with probability ``p``."""

    def __init__(self, p: float = 0.5):
        self.p = p

    def __call__(self, images: np.ndarray, rng: Optional[np.random.Generator] = None) -> np.ndarray:
        gen = rng if rng is not None else np.random.default_rng()
        flip = gen.random(images.shape[0]) < self.p
        out = images.copy()
        out[flip] = out[flip][..., ::-1]
        return out


class RandomCrop:
    """Pad by ``padding`` pixels then crop back to the original size at a random offset."""

    def __init__(self, padding: int = 4):
        self.padding = padding

    def __call__(self, images: np.ndarray, rng: Optional[np.random.Generator] = None) -> np.ndarray:
        if self.padding == 0:
            return images
        gen = rng if rng is not None else np.random.default_rng()
        n, c, h, w = images.shape
        pad = self.padding
        padded = np.pad(images, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
        out = np.empty_like(images)
        offsets = gen.integers(0, 2 * pad + 1, size=(n, 2))
        for i in range(n):
            oy, ox = offsets[i]
            out[i] = padded[i, :, oy:oy + h, ox:ox + w]
        return out


class Normalize:
    """Per-channel standardization ``(x − mean) / std``."""

    def __init__(self, mean: Sequence[float], std: Sequence[float]):
        self.mean = np.asarray(mean).reshape(1, -1, 1, 1)
        self.std = np.asarray(std).reshape(1, -1, 1, 1)

    def __call__(self, images: np.ndarray, rng: Optional[np.random.Generator] = None) -> np.ndarray:
        return (images - self.mean) / self.std


class AddGaussianNoise:
    """Additive Gaussian noise, a cheap robustness augmentation."""

    def __init__(self, sigma: float = 0.05):
        self.sigma = sigma

    def __call__(self, images: np.ndarray, rng: Optional[np.random.Generator] = None) -> np.ndarray:
        gen = rng if rng is not None else np.random.default_rng()
        return images + self.sigma * gen.standard_normal(images.shape)
