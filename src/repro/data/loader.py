"""Mini-batch iterator over a dataset with optional shuffling and transforms."""

from __future__ import annotations

from typing import Iterator, Tuple

import numpy as np

from repro.data.datasets import SyntheticImageClassification


class DataLoader:
    """Iterate a dataset in mini-batches of numpy arrays.

    Parameters
    ----------
    dataset:
        Any object with ``images``/``labels`` arrays (the synthetic datasets).
    batch_size:
        Number of samples per batch; the last batch may be smaller unless
        ``drop_last`` is set.
    shuffle:
        Reshuffle the sample order each epoch (seeded for reproducibility).
    transform:
        Optional callable applied to the image batch (augmentation pipeline).
    """

    def __init__(self, dataset: SyntheticImageClassification, batch_size: int = 64,
                 shuffle: bool = False, drop_last: bool = False, transform=None,
                 seed: int = 0):
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self.dataset = dataset
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.drop_last = drop_last
        self.transform = transform
        self._rng = np.random.default_rng(seed)

    def __len__(self) -> int:
        n = len(self.dataset)
        if self.drop_last:
            return n // self.batch_size
        return (n + self.batch_size - 1) // self.batch_size

    def __iter__(self) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        n = len(self.dataset)
        order = np.arange(n)
        if self.shuffle:
            self._rng.shuffle(order)
        for start in range(0, n, self.batch_size):
            index = order[start:start + self.batch_size]
            if self.drop_last and index.size < self.batch_size:
                break
            images = self.dataset.images[index]
            labels = self.dataset.labels[index]
            if self.transform is not None:
                images = self.transform(images, rng=self._rng)
            yield images, labels
