"""Synthetic image-classification datasets standing in for MNIST / CIFAR / TinyImageNet.

Design
------
Real archives cannot be downloaded offline, so each dataset is generated
procedurally but in a way that makes the classification task *learnable and
non-trivial*, exercising the same code paths a real dataset would:

* each class has a smooth random "template" image (low-frequency pattern,
  generated from a class-specific seed);
* each sample is its class template plus a random affine-ish perturbation
  (shift, per-channel gain) plus i.i.d. Gaussian noise;
* difficulty is controlled by the noise level and the template similarity, so
  baseline CNNs reach high accuracy while quantized variants lose a little —
  the same qualitative regime as the paper's tables.

Shapes match the originals: MNIST ``1×28×28`` / 10 classes, CIFAR-10
``3×32×32`` / 10 classes, CIFAR-100 ``3×32×32`` / 100 classes, TinyImageNet
``3×64×64`` / 200 classes.  Reduced ``image_size`` / ``num_classes`` overrides
exist for CI-speed experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

import numpy as np


def _smooth_template(rng: np.random.Generator, channels: int, size: int,
                     smoothness: int = 4) -> np.ndarray:
    """Low-frequency random pattern: coarse noise upsampled bilinearly."""
    coarse = rng.standard_normal((channels, smoothness, smoothness))
    # Bilinear upsample by separable linear interpolation.
    idx = np.linspace(0, smoothness - 1, size)
    lo = np.floor(idx).astype(int)
    hi = np.minimum(lo + 1, smoothness - 1)
    frac = idx - lo
    rows = coarse[:, lo, :] * (1 - frac)[None, :, None] + coarse[:, hi, :] * frac[None, :, None]
    template = (rows[:, :, lo] * (1 - frac)[None, None, :]
                + rows[:, :, hi] * frac[None, None, :])
    template -= template.mean()
    template /= template.std() + 1e-8
    return template


@dataclass
class SyntheticImageClassification:
    """A deterministic synthetic classification dataset.

    Attributes
    ----------
    images:
        ``(N, C, H, W)`` float64 array, roughly zero-mean unit-variance.
    labels:
        ``(N,)`` int64 class indices.
    """

    name: str
    images: np.ndarray
    labels: np.ndarray
    num_classes: int

    def __len__(self) -> int:
        return self.images.shape[0]

    @property
    def image_shape(self) -> Tuple[int, int, int]:
        return tuple(self.images.shape[1:])

    def __getitem__(self, index: int) -> Tuple[np.ndarray, int]:
        return self.images[index], int(self.labels[index])

    def subset(self, n: int) -> "SyntheticImageClassification":
        """Return a class-balanced prefix of ``n`` samples (for quick tests)."""
        n = min(n, len(self))
        order = np.argsort(self.labels, kind="stable")
        per_class = max(1, n // self.num_classes)
        chosen = []
        for cls in range(self.num_classes):
            cls_idx = order[self.labels[order] == cls][:per_class]
            chosen.append(cls_idx)
        index = np.concatenate(chosen)[:n]
        return SyntheticImageClassification(self.name, self.images[index],
                                            self.labels[index], self.num_classes)


def _generate(name: str, num_samples: int, num_classes: int, channels: int, size: int,
              noise: float, seed: int, shift_max: int = 2,
              template_seed: Optional[int] = None) -> SyntheticImageClassification:
    """Generate one split.  ``template_seed`` fixes the class templates so the
    train and test splits of a dataset share the same classes while drawing
    independent samples/noise from ``seed``."""
    rng = np.random.default_rng(seed)
    template_seed = seed if template_seed is None else template_seed
    templates = np.stack(
        [_smooth_template(np.random.default_rng(template_seed + 1000 + c), channels, size)
         for c in range(num_classes)])
    labels = rng.integers(0, num_classes, size=num_samples)
    images = np.empty((num_samples, channels, size, size))
    gains = 1.0 + 0.1 * rng.standard_normal((num_samples, channels, 1, 1))
    shifts = rng.integers(-shift_max, shift_max + 1, size=(num_samples, 2))
    for i in range(num_samples):
        base = templates[labels[i]]
        shifted = np.roll(base, shift=tuple(shifts[i]), axis=(1, 2))
        images[i] = shifted * gains[i]
    images += noise * rng.standard_normal(images.shape)
    return SyntheticImageClassification(name, images, labels.astype(np.int64), num_classes)


def synthetic_mnist(num_train: int = 512, num_test: int = 256, image_size: int = 28,
                    num_classes: int = 10, noise: float = 0.35, seed: int = 0
                    ) -> Tuple[SyntheticImageClassification, SyntheticImageClassification]:
    """Synthetic stand-in for MNIST: greyscale ``1×28×28``, 10 classes."""
    train = _generate("mnist-train", num_train, num_classes, 1, image_size, noise, seed,
                      template_seed=seed)
    test = _generate("mnist-test", num_test, num_classes, 1, image_size, noise, seed + 7777,
                     template_seed=seed)
    return train, test


def synthetic_cifar10(num_train: int = 512, num_test: int = 256, image_size: int = 32,
                      num_classes: int = 10, noise: float = 0.45, seed: int = 1
                      ) -> Tuple[SyntheticImageClassification, SyntheticImageClassification]:
    """Synthetic stand-in for CIFAR-10: RGB ``3×32×32``, 10 classes."""
    train = _generate("cifar10-train", num_train, num_classes, 3, image_size, noise, seed,
                      template_seed=seed)
    test = _generate("cifar10-test", num_test, num_classes, 3, image_size, noise, seed + 7777,
                     template_seed=seed)
    return train, test


def synthetic_cifar100(num_train: int = 1024, num_test: int = 512, image_size: int = 32,
                       num_classes: int = 100, noise: float = 0.45, seed: int = 2
                       ) -> Tuple[SyntheticImageClassification, SyntheticImageClassification]:
    """Synthetic stand-in for CIFAR-100: RGB ``3×32×32``, 100 classes."""
    train = _generate("cifar100-train", num_train, num_classes, 3, image_size, noise, seed,
                      template_seed=seed)
    test = _generate("cifar100-test", num_test, num_classes, 3, image_size, noise, seed + 7777,
                     template_seed=seed)
    return train, test


def synthetic_tiny_imagenet(num_train: int = 1024, num_test: int = 512, image_size: int = 64,
                            num_classes: int = 200, noise: float = 0.45, seed: int = 3
                            ) -> Tuple[SyntheticImageClassification, SyntheticImageClassification]:
    """Synthetic stand-in for Tiny-ImageNet: RGB ``3×64×64``, 200 classes."""
    train = _generate("tiny-imagenet-train", num_train, num_classes, 3, image_size, noise, seed,
                      template_seed=seed)
    test = _generate("tiny-imagenet-test", num_test, num_classes, 3, image_size, noise, seed + 7777,
                     template_seed=seed)
    return train, test


DATASET_REGISTRY: Dict[str, Callable[..., Tuple[SyntheticImageClassification,
                                                SyntheticImageClassification]]] = {
    "mnist": synthetic_mnist,
    "cifar10": synthetic_cifar10,
    "cifar100": synthetic_cifar100,
    "tiny_imagenet": synthetic_tiny_imagenet,
}


def make_dataset(name: str, **kwargs) -> Tuple[SyntheticImageClassification,
                                               SyntheticImageClassification]:
    """Build a (train, test) pair by registry name (case-insensitive)."""
    key = name.lower().replace("-", "_")
    if key not in DATASET_REGISTRY:
        raise KeyError(f"unknown dataset {name!r}; available: {sorted(DATASET_REGISTRY)}")
    return DATASET_REGISTRY[key](**kwargs)
