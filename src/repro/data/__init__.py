"""Data substrate: synthetic datasets, loaders and augmentation.

The paper evaluates on MNIST, CIFAR-10, CIFAR-100 and Tiny-ImageNet.  Those
archives cannot be downloaded in this offline environment, so this package
provides deterministic synthetic stand-ins with the same tensor shapes, class
counts and train/evaluate protocol (see DESIGN.md §2 for the substitution
rationale).  Every dataset is seeded, so runs are exactly reproducible.
"""

from repro.data.datasets import (
    SyntheticImageClassification,
    synthetic_mnist,
    synthetic_cifar10,
    synthetic_cifar100,
    synthetic_tiny_imagenet,
    DATASET_REGISTRY,
    make_dataset,
)
from repro.data.loader import DataLoader
from repro.data.transforms import (
    Compose,
    RandomHorizontalFlip,
    RandomCrop,
    Normalize,
    AddGaussianNoise,
)

__all__ = [
    "SyntheticImageClassification",
    "synthetic_mnist",
    "synthetic_cifar10",
    "synthetic_cifar100",
    "synthetic_tiny_imagenet",
    "DATASET_REGISTRY",
    "make_dataset",
    "DataLoader",
    "Compose",
    "RandomHorizontalFlip",
    "RandomCrop",
    "Normalize",
    "AddGaussianNoise",
]
