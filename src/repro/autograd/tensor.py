"""The autograd :class:`Tensor` and the dynamic computation graph.

The design follows the classic define-by-run recipe: every differentiable
operation returns a new :class:`Tensor` holding references to its parents and
a closure that, given the gradient of the loss with respect to the output,
accumulates gradients into the parents.  :meth:`Tensor.backward` performs a
topological sort of the graph and runs those closures in reverse order.

Only float64/float32 arrays are supported for differentiable tensors; integer
tensors (labels, indices) can be wrapped but never require gradients.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

ArrayLike = Union[np.ndarray, float, int, Sequence]

_GRAD_ENABLED = True

#: Optional inference-graph tracer (see :mod:`repro.ir.trace`).  When set, the
#: hook's ``created(tensor)`` fires for every op-produced tensor and
#: ``tensor_op(op, operands, out, attrs)`` for the inline ops a DAG trace must
#: capture (residual adds, concats, slicing).  The hooks cost one global
#: ``None`` check per operation when tracing is off.
_TRACE_HOOK = None


def set_trace_hook(hook) -> None:
    """Install (or clear, with ``None``) the inference-graph trace hook."""
    global _TRACE_HOOK
    _TRACE_HOOK = hook


def get_trace_hook():
    return _TRACE_HOOK


def _notify_trace(op: str, operands, out, **attrs) -> None:
    if _TRACE_HOOK is not None:
        _TRACE_HOOK.tensor_op(op, operands, out, attrs)


def is_grad_enabled() -> bool:
    """Return whether operations currently record the autograd graph."""
    return _GRAD_ENABLED


@contextlib.contextmanager
def no_grad():
    """Context manager that disables graph recording (inference mode)."""
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` so its shape matches ``shape`` (inverse of broadcasting)."""
    if grad.shape == shape:
        return grad
    # Sum over leading dimensions that were added by broadcasting.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum over dimensions that were broadcast from size 1.
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad.reshape(shape)


def _as_array(data: ArrayLike, dtype=None) -> np.ndarray:
    if isinstance(data, np.ndarray):
        array = data
    else:
        array = np.asarray(data)
    if dtype is not None:
        array = array.astype(dtype, copy=False)
    elif array.dtype == np.float16:
        array = array.astype(np.float32)
    return array


class Tensor:
    """A NumPy-backed tensor participating in reverse-mode autodiff.

    Parameters
    ----------
    data:
        Array-like payload.  Stored as a ``numpy.ndarray``.
    requires_grad:
        When ``True`` (and grad mode is enabled) operations on this tensor are
        recorded so gradients can flow back to it.
    """

    __slots__ = ("data", "grad", "requires_grad", "_parents", "_backward_fn", "name")

    def __init__(self, data: ArrayLike, requires_grad: bool = False, name: str = ""):
        self.data = _as_array(data)
        self.requires_grad = bool(requires_grad) and is_grad_enabled()
        self.grad: Optional[np.ndarray] = None
        self._parents: Tuple["Tensor", ...] = ()
        self._backward_fn: Optional[Callable[[np.ndarray], None]] = None
        self.name = name

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def zeros(shape, requires_grad: bool = False, dtype=np.float64) -> "Tensor":
        return Tensor(np.zeros(shape, dtype=dtype), requires_grad=requires_grad)

    @staticmethod
    def ones(shape, requires_grad: bool = False, dtype=np.float64) -> "Tensor":
        return Tensor(np.ones(shape, dtype=dtype), requires_grad=requires_grad)

    @staticmethod
    def randn(*shape, requires_grad: bool = False, rng: Optional[np.random.Generator] = None,
              scale: float = 1.0) -> "Tensor":
        gen = rng if rng is not None else np.random.default_rng()
        return Tensor(gen.standard_normal(shape) * scale, requires_grad=requires_grad)

    @staticmethod
    def from_op(data: np.ndarray, parents: Iterable["Tensor"],
                backward_fn: Callable[[np.ndarray], None]) -> "Tensor":
        """Build a tensor produced by an operation, wiring the graph edges."""
        parents = tuple(parents)
        requires = is_grad_enabled() and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires)
        if requires:
            out._parents = parents
            out._backward_fn = backward_fn
        if _TRACE_HOOK is not None:
            _TRACE_HOOK.created(out)
        return out

    # ------------------------------------------------------------------ #
    # Basic properties
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else float(self.data)

    def detach(self) -> "Tensor":
        """Return a tensor sharing data but cut off from the graph."""
        return Tensor(self.data, requires_grad=False)

    def copy(self) -> "Tensor":
        return Tensor(self.data.copy(), requires_grad=self.requires_grad)

    def zero_grad(self) -> None:
        self.grad = None

    def __len__(self) -> int:
        return self.data.shape[0]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}, dtype={self.dtype}{flag})"

    # ------------------------------------------------------------------ #
    # Gradient accumulation / backward
    # ------------------------------------------------------------------ #
    def _accumulate_grad(self, grad: np.ndarray) -> None:
        grad = _unbroadcast(np.asarray(grad, dtype=self.data.dtype), self.data.shape)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad = self.grad + grad

    def backward(self, grad: Optional[ArrayLike] = None) -> None:
        """Backpropagate gradients from this tensor through the graph.

        Parameters
        ----------
        grad:
            Gradient of the final objective w.r.t. this tensor.  Defaults to
            ``1`` for scalar tensors (the usual loss case).
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be provided for non-scalar tensors")
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=self.data.dtype)

        # Topological ordering of the reachable graph.
        topo: List[Tensor] = []
        visited = set()

        def visit(node: "Tensor") -> None:
            if id(node) in visited:
                return
            visited.add(id(node))
            for parent in node._parents:
                if parent.requires_grad:
                    visit(parent)
            topo.append(node)

        visit(self)

        self._accumulate_grad(grad)
        for node in reversed(topo):
            if node._backward_fn is None or node.grad is None:
                continue
            node._backward_fn(node.grad)

    # ------------------------------------------------------------------ #
    # Arithmetic
    # ------------------------------------------------------------------ #
    def _coerce(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        return other if isinstance(other, Tensor) else Tensor(_as_array(other, dtype=self.data.dtype))

    def __add__(self, other):
        other = self._coerce(other)
        out_data = self.data + other.data

        def backward(grad):
            if self.requires_grad:
                self._accumulate_grad(grad)
            if other.requires_grad:
                other._accumulate_grad(grad)

        out = Tensor.from_op(out_data, (self, other), backward)
        _notify_trace("add", (self, other), out)
        return out

    __radd__ = __add__

    def __neg__(self):
        out_data = -self.data

        def backward(grad):
            if self.requires_grad:
                self._accumulate_grad(-grad)

        out = Tensor.from_op(out_data, (self,), backward)
        _notify_trace("neg", (self,), out)
        return out

    def __sub__(self, other):
        other = self._coerce(other)
        out_data = self.data - other.data

        def backward(grad):
            if self.requires_grad:
                self._accumulate_grad(grad)
            if other.requires_grad:
                other._accumulate_grad(-grad)

        out = Tensor.from_op(out_data, (self, other), backward)
        _notify_trace("sub", (self, other), out)
        return out

    def __rsub__(self, other):
        return self._coerce(other) - self

    def __mul__(self, other):
        other = self._coerce(other)
        out_data = self.data * other.data

        def backward(grad):
            if self.requires_grad:
                self._accumulate_grad(grad * other.data)
            if other.requires_grad:
                other._accumulate_grad(grad * self.data)

        out = Tensor.from_op(out_data, (self, other), backward)
        _notify_trace("mul", (self, other), out)
        return out

    __rmul__ = __mul__

    def __truediv__(self, other):
        other = self._coerce(other)
        out_data = self.data / other.data

        def backward(grad):
            if self.requires_grad:
                self._accumulate_grad(grad / other.data)
            if other.requires_grad:
                other._accumulate_grad(-grad * self.data / (other.data ** 2))

        out = Tensor.from_op(out_data, (self, other), backward)
        _notify_trace("div", (self, other), out)
        return out

    def __rtruediv__(self, other):
        return self._coerce(other) / self

    def __pow__(self, exponent: float):
        out_data = self.data ** exponent

        def backward(grad):
            if self.requires_grad:
                self._accumulate_grad(grad * exponent * self.data ** (exponent - 1))

        return Tensor.from_op(out_data, (self,), backward)

    def __matmul__(self, other):
        return self.matmul(other)

    # Comparison operators produce plain boolean arrays (no gradients).
    def __gt__(self, other):
        other = other.data if isinstance(other, Tensor) else other
        return self.data > other

    def __lt__(self, other):
        other = other.data if isinstance(other, Tensor) else other
        return self.data < other

    def __ge__(self, other):
        other = other.data if isinstance(other, Tensor) else other
        return self.data >= other

    def __le__(self, other):
        other = other.data if isinstance(other, Tensor) else other
        return self.data <= other

    # ------------------------------------------------------------------ #
    # Linear algebra / shape ops
    # ------------------------------------------------------------------ #
    def matmul(self, other: "Tensor") -> "Tensor":
        other = self._coerce(other)
        out_data = self.data @ other.data
        a, b = self, other

        def backward(grad):
            if a.requires_grad:
                if b.data.ndim == 1:
                    a._accumulate_grad(np.outer(grad, b.data) if a.data.ndim == 2 else grad * b.data)
                else:
                    a._accumulate_grad(grad @ np.swapaxes(b.data, -1, -2))
            if b.requires_grad:
                if a.data.ndim == 1:
                    b._accumulate_grad(np.outer(a.data, grad))
                else:
                    b._accumulate_grad(np.swapaxes(a.data, -1, -2) @ grad)

        return Tensor.from_op(out_data, (self, other), backward)

    def transpose(self, *axes) -> "Tensor":
        if not axes:
            axes = tuple(reversed(range(self.data.ndim)))
        elif len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        out_data = np.transpose(self.data, axes)
        inverse = np.argsort(axes)

        def backward(grad):
            if self.requires_grad:
                self._accumulate_grad(np.transpose(grad, inverse))

        return Tensor.from_op(out_data, (self,), backward)

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        original = self.data.shape
        out_data = self.data.reshape(shape)

        def backward(grad):
            if self.requires_grad:
                self._accumulate_grad(grad.reshape(original))

        return Tensor.from_op(out_data, (self,), backward)

    def flatten(self, start_dim: int = 0) -> "Tensor":
        shape = self.data.shape
        new_shape = shape[:start_dim] + (-1,)
        return self.reshape(new_shape)

    def squeeze(self, axis=None) -> "Tensor":
        original = self.data.shape
        out_data = np.squeeze(self.data, axis=axis)

        def backward(grad):
            if self.requires_grad:
                self._accumulate_grad(grad.reshape(original))

        return Tensor.from_op(out_data, (self,), backward)

    def unsqueeze(self, axis: int) -> "Tensor":
        out_data = np.expand_dims(self.data, axis)
        original = self.data.shape

        def backward(grad):
            if self.requires_grad:
                self._accumulate_grad(grad.reshape(original))

        return Tensor.from_op(out_data, (self,), backward)

    def __getitem__(self, index) -> "Tensor":
        out_data = self.data[index]

        def backward(grad):
            if self.requires_grad:
                full = np.zeros_like(self.data)
                np.add.at(full, index, grad)
                self._accumulate_grad(full)

        out = Tensor.from_op(out_data, (self,), backward)
        _notify_trace("getitem", (self,), out, index=index)
        return out

    # ------------------------------------------------------------------ #
    # Reductions
    # ------------------------------------------------------------------ #
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad):
            if not self.requires_grad:
                return
            g = np.asarray(grad)
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=axis)
            self._accumulate_grad(np.broadcast_to(g, self.data.shape))

        return Tensor.from_op(out_data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        elif isinstance(axis, tuple):
            count = int(np.prod([self.data.shape[a] for a in axis]))
        else:
            count = self.data.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) / float(count)

    def var(self, axis=None, keepdims: bool = False) -> "Tensor":
        mean = self.mean(axis=axis, keepdims=True)
        centered = self - mean
        return (centered * centered).mean(axis=axis, keepdims=keepdims)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad):
            if not self.requires_grad:
                return
            expanded = self.data.max(axis=axis, keepdims=True)
            mask = (self.data == expanded).astype(self.data.dtype)
            mask /= np.maximum(mask.sum(axis=axis, keepdims=True), 1.0)
            g = np.asarray(grad)
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=axis)
            self._accumulate_grad(mask * g)

        return Tensor.from_op(out_data, (self,), backward)

    def min(self, axis=None, keepdims: bool = False) -> "Tensor":
        return -((-self).max(axis=axis, keepdims=keepdims))

    def argmax(self, axis=None) -> np.ndarray:
        """Index of maxima.  Not differentiable; returns a plain array."""
        return self.data.argmax(axis=axis)

    # ------------------------------------------------------------------ #
    # Elementwise nonlinearities
    # ------------------------------------------------------------------ #
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(grad):
            if self.requires_grad:
                self._accumulate_grad(grad * out_data)

        return Tensor.from_op(out_data, (self,), backward)

    def log(self) -> "Tensor":
        out_data = np.log(self.data)

        def backward(grad):
            if self.requires_grad:
                self._accumulate_grad(grad / self.data)

        return Tensor.from_op(out_data, (self,), backward)

    def sqrt(self) -> "Tensor":
        out_data = np.sqrt(self.data)

        def backward(grad):
            if self.requires_grad:
                self._accumulate_grad(grad * 0.5 / np.maximum(out_data, 1e-12))

        return Tensor.from_op(out_data, (self,), backward)

    def abs(self) -> "Tensor":
        out_data = np.abs(self.data)

        def backward(grad):
            if self.requires_grad:
                self._accumulate_grad(grad * np.sign(self.data))

        return Tensor.from_op(out_data, (self,), backward)

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(grad):
            if self.requires_grad:
                self._accumulate_grad(grad * (1.0 - out_data ** 2))

        return Tensor.from_op(out_data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(grad):
            if self.requires_grad:
                self._accumulate_grad(grad * out_data * (1.0 - out_data))

        return Tensor.from_op(out_data, (self,), backward)

    def relu(self) -> "Tensor":
        mask = self.data > 0
        out_data = self.data * mask

        def backward(grad):
            if self.requires_grad:
                self._accumulate_grad(grad * mask)

        return Tensor.from_op(out_data, (self,), backward)

    def clip(self, low: float, high: float) -> "Tensor":
        out_data = np.clip(self.data, low, high)
        mask = (self.data > low) & (self.data < high)

        def backward(grad):
            if self.requires_grad:
                self._accumulate_grad(grad * mask)

        return Tensor.from_op(out_data, (self,), backward)


def tensor(data: ArrayLike, requires_grad: bool = False) -> Tensor:
    """Convenience constructor mirroring ``torch.tensor``."""
    return Tensor(data, requires_grad=requires_grad)
