"""Numerical gradient checking utilities used throughout the test suite."""

from __future__ import annotations

from typing import Callable, Sequence, Tuple

import numpy as np

from repro.autograd.tensor import Tensor


def numerical_gradient(fn: Callable[..., Tensor], inputs: Sequence[Tensor], index: int,
                       epsilon: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of ``fn(*inputs).sum()`` w.r.t. ``inputs[index]``.

    ``fn`` must be deterministic (no internal randomness) for the comparison
    with the analytic gradient to be meaningful.
    """
    target = inputs[index]
    grad = np.zeros_like(target.data)
    flat = target.data.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + epsilon
        plus = float(fn(*inputs).data.sum())
        flat[i] = original - epsilon
        minus = float(fn(*inputs).data.sum())
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2.0 * epsilon)
    return grad


def check_gradient(fn: Callable[..., Tensor], inputs: Sequence[Tensor], index: int = 0,
                   epsilon: float = 1e-6, atol: float = 1e-4,
                   rtol: float = 1e-3) -> Tuple[bool, float]:
    """Compare analytic vs numerical gradients of ``fn(*inputs).sum()``.

    Returns ``(passed, max_abs_error)``.
    """
    for tensor in inputs:
        tensor.grad = None
    output = fn(*inputs)
    output.sum().backward()
    analytic = inputs[index].grad
    if analytic is None:
        analytic = np.zeros_like(inputs[index].data)
    numeric = numerical_gradient(fn, inputs, index, epsilon=epsilon)
    error = float(np.max(np.abs(analytic - numeric)))
    tolerance = atol + rtol * float(np.max(np.abs(numeric)) if numeric.size else 0.0)
    return error <= tolerance, error
