"""im2col / col2im transforms used to lower convolution to matrix product.

The canonical implementation lives in :mod:`repro.perf.im2col` so the
deployment/serving stack can unfold inputs without importing the autograd
package; this module re-exports it for the training-side callers that have
always imported it from here.
"""

from repro.perf.im2col import col2im, conv_output_size, im2col

__all__ = ["im2col", "col2im", "conv_output_size"]
