"""Reverse-mode automatic differentiation engine backed by NumPy.

This package is the training substrate of the reproduction: the PECAN paper
implements its layers in PyTorch, and because PyTorch is not available in this
environment we provide an equivalent (much smaller) tensor library.  It
supports everything the PECAN layers require: broadcasting arithmetic, matrix
multiplication, convolution via im2col, softmax/log-softmax, ``l1`` distances,
argmax with straight-through gradients, and stop-gradient.

Public API
----------
``Tensor``
    The autograd tensor.  Wraps a ``numpy.ndarray`` and records the operations
    applied to it so that :meth:`Tensor.backward` can propagate gradients.
``no_grad``
    Context manager disabling graph construction (used for inference).
``functional``
    Free functions (``relu``, ``softmax``, ``conv2d`` ...) mirroring the
    ``torch.nn.functional`` layout that the paper's code would have used.
"""

from repro.autograd.tensor import Tensor, no_grad, is_grad_enabled, tensor
from repro.autograd import functional
from repro.autograd.im2col import im2col, col2im, conv_output_size
from repro.autograd.gradcheck import check_gradient, numerical_gradient

__all__ = [
    "Tensor",
    "tensor",
    "no_grad",
    "is_grad_enabled",
    "functional",
    "im2col",
    "col2im",
    "conv_output_size",
    "check_gradient",
    "numerical_gradient",
]
