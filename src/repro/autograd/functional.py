"""Differentiable functional operators built on :class:`~repro.autograd.Tensor`.

Mirrors the subset of ``torch.nn.functional`` that the PECAN layers and the
baseline networks need, plus the PQ-specific primitives:

* :func:`pairwise_l1_distance` — the ``‖X_i − C_m‖₁`` term of Eq. (3)/(4),
* :func:`stop_gradient` — the ``sg`` operator of Eq. (5),
* :func:`straight_through` — the forward/backward split used by PECAN-D.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.autograd.im2col import col2im, conv_output_size, im2col
from repro.autograd.tensor import Tensor, _notify_trace
from repro.perf.chunking import ChunkPolicy, iter_slices

#: Memory budget for the broadcasted ``(..., p, d, L)`` transient of the l1
#: kernels.  Callers can pass an explicit :class:`ChunkPolicy` to override.
DEFAULT_L1_CHUNK_POLICY = ChunkPolicy()


# --------------------------------------------------------------------------- #
# Activations and normalizations
# --------------------------------------------------------------------------- #
def relu(x: Tensor) -> Tensor:
    """Rectified linear unit."""
    return x.relu()


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    exp = shifted.exp()
    return exp / exp.sum(axis=axis, keepdims=True)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def sigmoid(x: Tensor) -> Tensor:
    return x.sigmoid()


def tanh(x: Tensor) -> Tensor:
    return x.tanh()


def gelu(x: Tensor) -> Tensor:
    """Gaussian error linear unit (tanh approximation)."""
    inner = (x + x * x * x * 0.044715) * 0.7978845608028654
    return x * (inner.tanh() + 1.0) * 0.5


def dropout(x: Tensor, p: float, training: bool, rng: Optional[np.random.Generator] = None) -> Tensor:
    """Inverted dropout; identity when ``training`` is False or ``p == 0``."""
    if not training or p <= 0.0:
        return x
    gen = rng if rng is not None else np.random.default_rng()
    mask = (gen.random(x.shape) >= p).astype(x.data.dtype) / (1.0 - p)
    return x * Tensor(mask)


# --------------------------------------------------------------------------- #
# Losses
# --------------------------------------------------------------------------- #
def cross_entropy(logits: Tensor, targets: np.ndarray, label_smoothing: float = 0.0) -> Tensor:
    """Mean cross-entropy between ``logits`` ``(N, K)`` and integer ``targets``.

    ``label_smoothing`` follows the usual convention of mixing the one-hot
    target with the uniform distribution.
    """
    targets = np.asarray(targets, dtype=np.int64)
    n, k = logits.shape
    logp = log_softmax(logits, axis=1)
    onehot = np.zeros((n, k), dtype=logits.data.dtype)
    onehot[np.arange(n), targets] = 1.0
    if label_smoothing > 0.0:
        onehot = onehot * (1.0 - label_smoothing) + label_smoothing / k
    return -(logp * Tensor(onehot)).sum() / float(n)


def mse_loss(prediction: Tensor, target: Tensor) -> Tensor:
    """Mean squared error."""
    diff = prediction - target
    return (diff * diff).mean()


def l1_loss(prediction: Tensor, target: Tensor) -> Tensor:
    """Mean absolute error."""
    return (prediction - target).abs().mean()


def accuracy(logits: Tensor, targets: np.ndarray) -> float:
    """Top-1 classification accuracy in ``[0, 1]``."""
    predicted = logits.data.argmax(axis=1)
    return float((predicted == np.asarray(targets)).mean())


def topk_accuracy(logits: Tensor, targets: np.ndarray, k: int = 5) -> float:
    """Top-k classification accuracy in ``[0, 1]``."""
    targets = np.asarray(targets)
    topk = np.argsort(-logits.data, axis=1)[:, :k]
    return float(np.any(topk == targets[:, None], axis=1).mean())


# --------------------------------------------------------------------------- #
# Linear / convolution / pooling
# --------------------------------------------------------------------------- #
def linear(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None) -> Tensor:
    """``x @ weight.T + bias`` with ``weight`` of shape ``(out, in)``."""
    out = x.matmul(weight.T)
    if bias is not None:
        out = out + bias
    return out


def conv2d(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None,
           stride: int = 1, padding: int = 0) -> Tensor:
    """2-D convolution via im2col lowering.

    ``x``: ``(N, Cin, H, W)``; ``weight``: ``(Cout, Cin, k, k)``.
    """
    n, cin, h, w = x.shape
    cout, cin_w, k, _ = weight.shape
    if cin != cin_w:
        raise ValueError(f"channel mismatch: input has {cin}, weight expects {cin_w}")
    hout = conv_output_size(h, k, stride, padding)
    wout = conv_output_size(w, k, stride, padding)

    cols = im2col(x.data, k, stride, padding)            # (N, Cin*k*k, L)
    w_mat = weight.data.reshape(cout, -1)                # (Cout, Cin*k*k)
    out_data = np.einsum("of,nfl->nol", w_mat, cols)     # (N, Cout, L)
    out_data = out_data.reshape(n, cout, hout, wout)
    if bias is not None:
        out_data = out_data + bias.data.reshape(1, cout, 1, 1)

    parents = (x, weight) if bias is None else (x, weight, bias)

    def backward(grad):
        grad_mat = grad.reshape(n, cout, hout * wout)     # (N, Cout, L)
        if weight.requires_grad:
            gw = np.einsum("nol,nfl->of", grad_mat, cols).reshape(weight.shape)
            weight._accumulate_grad(gw)
        if bias is not None and bias.requires_grad:
            bias._accumulate_grad(grad.sum(axis=(0, 2, 3)))
        if x.requires_grad:
            gcols = np.einsum("of,nol->nfl", w_mat, grad_mat)
            gx = col2im(gcols, (n, cin, h, w), k, stride, padding)
            x._accumulate_grad(gx)

    return Tensor.from_op(out_data, parents, backward)


def max_pool2d(x: Tensor, kernel_size: int, stride: Optional[int] = None) -> Tensor:
    """Max pooling with square window; ``stride`` defaults to ``kernel_size``."""
    stride = stride if stride is not None else kernel_size
    n, c, h, w = x.shape
    k = kernel_size
    hout = (h - k) // stride + 1
    wout = (w - k) // stride + 1

    sn, sc, sh, sw = x.data.strides
    windows = np.lib.stride_tricks.as_strided(
        x.data,
        shape=(n, c, hout, wout, k, k),
        strides=(sn, sc, sh * stride, sw * stride, sh, sw),
        writeable=False,
    )
    flat = windows.reshape(n, c, hout, wout, k * k)
    arg = flat.argmax(axis=-1)
    out_data = np.take_along_axis(flat, arg[..., None], axis=-1)[..., 0]

    def backward(grad):
        if not x.requires_grad:
            return
        gx = np.zeros_like(x.data)
        # col2im-style accumulation: one strided slice-add per window offset,
        # gated by the argmax mask, instead of a full-size fancy-index scatter.
        for offset in range(k * k):
            mask = arg == offset
            if not mask.any():
                continue
            ki, kj = divmod(offset, k)
            gx[:, :, ki:ki + stride * hout:stride,
               kj:kj + stride * wout:stride] += grad * mask
        x._accumulate_grad(gx)

    return Tensor.from_op(out_data, (x,), backward)


def avg_pool2d(x: Tensor, kernel_size: int, stride: Optional[int] = None) -> Tensor:
    """Average pooling with square window."""
    stride = stride if stride is not None else kernel_size
    n, c, h, w = x.shape
    k = kernel_size
    hout = (h - k) // stride + 1
    wout = (w - k) // stride + 1

    sn, sc, sh, sw = x.data.strides
    windows = np.lib.stride_tricks.as_strided(
        x.data,
        shape=(n, c, hout, wout, k, k),
        strides=(sn, sc, sh * stride, sw * stride, sh, sw),
        writeable=False,
    )
    out_data = windows.mean(axis=(-1, -2))

    def backward(grad):
        if not x.requires_grad:
            return
        gx = np.zeros_like(x.data)
        share = grad / float(k * k)
        if stride >= k:
            # Non-overlapping windows (the usual pooling configuration) map to
            # disjoint memory, so a single broadcast through a strided view of
            # the gradient buffer distributes every share at once.
            gn, gc, gh, gw = gx.strides
            window_view = np.lib.stride_tricks.as_strided(
                gx,
                shape=(n, c, hout, wout, k, k),
                strides=(gn, gc, gh * stride, gw * stride, gh, gw),
            )
            window_view += share[..., None, None]
        else:
            # Overlapping windows alias memory; fall back to one strided
            # slice-add per window offset (col2im-style accumulation).
            for ki in range(k):
                for kj in range(k):
                    gx[:, :, ki:ki + stride * hout:stride,
                       kj:kj + stride * wout:stride] += share
        x._accumulate_grad(gx)

    return Tensor.from_op(out_data, (x,), backward)


def global_avg_pool2d(x: Tensor) -> Tensor:
    """Average over the spatial dimensions, returning ``(N, C)``."""
    return x.mean(axis=(2, 3))


def batch_norm(x: Tensor, gamma: Tensor, beta: Tensor, running_mean: np.ndarray,
               running_var: np.ndarray, training: bool, momentum: float = 0.1,
               eps: float = 1e-5) -> Tensor:
    """Batch normalization over ``(N, C, H, W)`` or ``(N, C)`` tensors.

    ``running_mean``/``running_var`` are updated in place during training.
    """
    if x.ndim == 4:
        axes = (0, 2, 3)
        shape = (1, -1, 1, 1)
    elif x.ndim == 2:
        axes = (0,)
        shape = (1, -1)
    else:
        raise ValueError(f"batch_norm expects 2-D or 4-D input, got {x.ndim}-D")

    if training:
        mean = x.data.mean(axis=axes)
        var = x.data.var(axis=axes)
        running_mean *= 1.0 - momentum
        running_mean += momentum * mean
        running_var *= 1.0 - momentum
        running_var += momentum * var
    else:
        mean = running_mean
        var = running_var

    mean_t = Tensor(mean.reshape(shape))
    std_t = Tensor(np.sqrt(var.reshape(shape) + eps))
    normalized = (x - mean_t) / std_t
    return normalized * gamma.reshape(shape) + beta.reshape(shape)


# --------------------------------------------------------------------------- #
# Einstein summation
# --------------------------------------------------------------------------- #
def einsum(subscripts: str, *operands: Tensor) -> Tensor:
    """Differentiable ``np.einsum`` over explicit subscripts.

    Supports the multi-operand contractions the PECAN hot paths need — e.g.
    the fused ``Y = Σ_j W₁^(j) C^(j) K^(j)`` reconstruction
    ``einsum("god,gdp,ngpl->nol", W, C, K)`` — letting NumPy pick the optimal
    contraction order instead of materializing per-group intermediates.

    Restrictions (enough for our use, checked eagerly): the output subscript
    must be explicit (``->`` present), ellipses and repeated indices within a
    single operand are not supported, and every index of an operand must also
    appear in the output or another operand (otherwise its gradient would need
    an internal broadcast).

    The gradient of operand ``i`` is itself an einsum: contract the output
    gradient with every other operand, targeting operand ``i``'s subscript.
    """
    if "->" not in subscripts:
        raise ValueError("einsum requires an explicit output subscript, e.g. 'ij,jk->ik'")
    if "..." in subscripts:
        raise NotImplementedError("ellipsis subscripts are not supported")
    lhs, out_subs = (part.strip() for part in subscripts.split("->"))
    in_subs = [term.strip() for term in lhs.split(",")]
    if len(in_subs) != len(operands):
        raise ValueError(f"einsum got {len(operands)} operands for {len(in_subs)} subscripts")
    for term in in_subs + [out_subs]:
        if len(set(term)) != len(term):
            raise NotImplementedError(f"repeated index in term {term!r} is not supported")

    for i, term in enumerate(in_subs):
        available = set(out_subs).union(*(in_subs[:i] + in_subs[i + 1:])) \
            if len(in_subs) > 1 else set(out_subs)
        missing = [c for c in term if c not in available]
        if missing:
            raise NotImplementedError(
                f"index {missing[0]!r} appears only in operand {i}; its gradient "
                "would require an internal broadcast")

    tensors = [t if isinstance(t, Tensor) else Tensor(t) for t in operands]
    arrays = [t.data for t in tensors]
    out_data = np.einsum(subscripts, *arrays, optimize=True)

    def backward(grad):
        for i, t in enumerate(tensors):
            if not t.requires_grad:
                continue
            other_subs = [in_subs[j] for j in range(len(tensors)) if j != i]
            other_arrays = [arrays[j] for j in range(len(tensors)) if j != i]
            grad_spec = ",".join([out_subs] + other_subs) + "->" + in_subs[i]
            t._accumulate_grad(np.einsum(grad_spec, grad, *other_arrays, optimize=True))

    return Tensor.from_op(out_data, tensors, backward)


# --------------------------------------------------------------------------- #
# Shape utilities
# --------------------------------------------------------------------------- #
def concatenate(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Differentiable concatenation along ``axis``."""
    tensors = list(tensors)
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad):
        for t, start, end in zip(tensors, offsets[:-1], offsets[1:]):
            if t.requires_grad:
                index = [slice(None)] * grad.ndim
                index[axis] = slice(start, end)
                t._accumulate_grad(grad[tuple(index)])

    out = Tensor.from_op(out_data, tensors, backward)
    _notify_trace("concat", tuple(tensors), out, axis=axis)
    return out


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Differentiable stacking along a new ``axis``."""
    tensors = list(tensors)
    out_data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad):
        slices = np.moveaxis(grad, axis, 0)
        for t, g in zip(tensors, slices):
            if t.requires_grad:
                t._accumulate_grad(g)

    return Tensor.from_op(out_data, tensors, backward)


def pad2d(x: Tensor, padding: int) -> Tensor:
    """Zero-pad the two trailing spatial dimensions of a 4-D tensor."""
    if padding == 0:
        return x
    out_data = np.pad(x.data, ((0, 0), (0, 0), (padding, padding), (padding, padding)))

    def backward(grad):
        if x.requires_grad:
            x._accumulate_grad(grad[:, :, padding:-padding, padding:-padding])

    return Tensor.from_op(out_data, (x,), backward)


def unfold(x: Tensor, kernel_size: int, stride: int = 1, padding: int = 0) -> Tensor:
    """Differentiable im2col: ``(N, C, H, W) -> (N, C·k·k, Hout·Wout)``.

    This is the ``X`` matrix of the paper (Fig. 1b); the backward pass is the
    col2im fold, so gradients propagate to earlier layers through the PECAN
    quantization.
    """
    n, c, h, w = x.shape
    cols = im2col(x.data, kernel_size, stride, padding)

    def backward(grad):
        if x.requires_grad:
            x._accumulate_grad(col2im(grad, (n, c, h, w), kernel_size, stride, padding))

    return Tensor.from_op(cols, (x,), backward)


# --------------------------------------------------------------------------- #
# PQ-specific primitives
# --------------------------------------------------------------------------- #
def stop_gradient(x: Tensor) -> Tensor:
    """The ``sg(·)`` operator of Eq. (5): identity forward, zero gradient back."""
    return x.detach()


def straight_through(soft: Tensor, hard: np.ndarray) -> Tensor:
    """Combine a soft (differentiable) and hard (discrete) value per Eq. (5).

    Forward value equals ``hard``; the gradient flows entirely through
    ``soft``:  ``soft - sg(soft - hard)``.
    """
    hard_t = Tensor(np.asarray(hard, dtype=soft.data.dtype))
    return soft - stop_gradient(soft - hard_t)


def pairwise_l1_distance(x: Tensor, prototypes: Tensor, sign_fn=None,
                         chunk_policy: Optional[ChunkPolicy] = None) -> Tensor:
    """l1 distances between columns of ``x`` and prototype columns.

    Parameters
    ----------
    x:
        Tensor of shape ``(..., d, L)`` — ``L`` subvectors of dimension ``d``.
    prototypes:
        Tensor of shape ``(..., d, p)`` — ``p`` prototypes of dimension ``d``.
    sign_fn:
        Subgradient of ``|·|`` used in the backward pass.  Defaults to the
        exact ``np.sign``; :mod:`repro.pecan.similarity` passes the smoothed
        ``tanh(a·x)`` surrogate of Eq. (6) here.
    chunk_policy:
        Memory budget for the broadcasted ``(..., p, d, L_chunk)`` transient.
        Defaults to :data:`DEFAULT_L1_CHUNK_POLICY`.

    Returns
    -------
    Tensor of shape ``(..., p, L)`` with ``out[..., m, i] = ‖x_i − c_m‖₁``.

    Neither the difference tensor nor its sign is retained between forward and
    backward: the backward pass recomputes ``x − c`` chunk-by-chunk over the
    column axis, so peak memory stays bounded even at production batch sizes.
    """
    sign_fn = np.sign if sign_fn is None else sign_fn
    policy = chunk_policy if chunk_policy is not None else DEFAULT_L1_CHUNK_POLICY
    x_data, proto_data = x.data, prototypes.data
    proto_cols = proto_data[..., :, :, None].swapaxes(-3, -2)    # (..., p, d, 1)
    d, length = x_data.shape[-2], x_data.shape[-1]
    p = proto_data.shape[-1]
    batch_shape = np.broadcast_shapes(x_data.shape[:-2], proto_data.shape[:-2])
    batch = int(np.prod(batch_shape, dtype=np.int64)) if batch_shape else 1
    dtype = np.result_type(x_data.dtype, proto_data.dtype)
    per_column = max(1, batch * p * d) * dtype.itemsize
    chunk = policy.columns_per_chunk(per_column, length)

    out_data = np.empty(batch_shape + (p, length), dtype=dtype)
    for sl in iter_slices(length, chunk):
        # diff shape: (..., p, d, L_chunk); prototypes broadcast over L, x over p
        diff = x_data[..., None, :, sl] - proto_cols
        np.abs(diff, out=diff)
        out_data[..., sl] = diff.sum(axis=-2)

    def backward(grad):
        gx = np.empty(batch_shape + (d, length), dtype=dtype) if x.requires_grad else None
        gp = np.zeros(batch_shape + (p, d), dtype=dtype) if prototypes.requires_grad else None
        for sl in iter_slices(length, chunk):
            sign = sign_fn(x_data[..., None, :, sl] - proto_cols)  # (..., p, d, Lc)
            g = grad[..., :, None, sl]
            if gx is not None:
                gx[..., sl] = (sign * g).sum(axis=-3)
            if gp is not None:
                gp -= (sign * g).sum(axis=-1)
        if gx is not None:
            x._accumulate_grad(gx)
        if gp is not None:
            prototypes._accumulate_grad(gp.swapaxes(-1, -2))

    return Tensor.from_op(out_data, (x, prototypes), backward)


def pairwise_dot(x: Tensor, prototypes: Tensor) -> Tensor:
    """Dot products ``prototypesᵀ x`` used by PECAN-A (Eq. 2).

    Shapes follow :func:`pairwise_l1_distance`: ``x`` is ``(..., d, L)``,
    ``prototypes`` is ``(..., d, p)`` and the result is ``(..., p, L)``.
    """
    return prototypes.transpose(*range(prototypes.ndim - 2), prototypes.ndim - 1,
                                prototypes.ndim - 2).matmul(x)


def one_hot(indices: np.ndarray, depth: int, dtype=np.float64) -> np.ndarray:
    """Plain (non-differentiable) one-hot encoding along a new trailing axis."""
    indices = np.asarray(indices)
    out = np.zeros(indices.shape + (depth,), dtype=dtype)
    np.put_along_axis(out, indices[..., None], 1.0, axis=-1)
    return out
