"""Adam and AdamW optimizers (the paper optimizes PECAN with Adam)."""

from __future__ import annotations

from typing import Iterable, Tuple

import numpy as np

from repro.nn.module import Parameter
from repro.optim.optimizer import Optimizer


class Adam(Optimizer):
    """Adam with bias correction; ``weight_decay`` is L2 added to the gradient."""

    def __init__(self, params: Iterable[Parameter], lr: float = 1e-3,
                 betas: Tuple[float, float] = (0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.0):
        super().__init__(params, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step_count = 0
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]

    def _apply_decay(self, param: Parameter, grad: np.ndarray) -> np.ndarray:
        if self.weight_decay:
            return grad + self.weight_decay * param.data
        return grad

    def step(self) -> None:
        self._step_count += 1
        bias1 = 1.0 - self.beta1 ** self._step_count
        bias2 = 1.0 - self.beta2 ** self._step_count
        for param, m, v in zip(self.params, self._m, self._v):
            if param.grad is None or not param.requires_grad:
                continue
            grad = self._apply_decay(param, param.grad)
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            param.data = param.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


class AdamW(Adam):
    """Adam with decoupled weight decay (applied directly to the weights)."""

    def _apply_decay(self, param: Parameter, grad: np.ndarray) -> np.ndarray:
        if self.weight_decay:
            param.data = param.data * (1.0 - self.lr * self.weight_decay)
        return grad
