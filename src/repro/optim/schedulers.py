"""Learning-rate schedulers.

The paper decays the learning rate every 50 epochs on MNIST (StepLR) and at
epoch 200 for PECAN-D on CIFAR (MultiStepLR); both are reproduced here.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.optim.optimizer import Optimizer


class LRScheduler:
    """Base scheduler: call :meth:`step` once per epoch."""

    def __init__(self, optimizer: Optimizer):
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.last_epoch = 0

    def get_lr(self) -> float:
        raise NotImplementedError

    def step(self) -> float:
        self.last_epoch += 1
        lr = self.get_lr()
        self.optimizer.lr = lr
        return lr

    @property
    def current_lr(self) -> float:
        return self.optimizer.lr


class StepLR(LRScheduler):
    """Multiply the learning rate by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.1):
        super().__init__(optimizer)
        if step_size <= 0:
            raise ValueError("step_size must be positive")
        self.step_size = step_size
        self.gamma = gamma

    def get_lr(self) -> float:
        return self.base_lr * (self.gamma ** (self.last_epoch // self.step_size))


class MultiStepLR(LRScheduler):
    """Multiply the learning rate by ``gamma`` at each listed milestone epoch."""

    def __init__(self, optimizer: Optimizer, milestones: Sequence[int], gamma: float = 0.1):
        super().__init__(optimizer)
        self.milestones = sorted(milestones)
        self.gamma = gamma

    def get_lr(self) -> float:
        passed = sum(1 for m in self.milestones if self.last_epoch >= m)
        return self.base_lr * (self.gamma ** passed)


class CosineAnnealingLR(LRScheduler):
    """Cosine decay from the base learning rate to ``eta_min`` over ``t_max`` epochs."""

    def __init__(self, optimizer: Optimizer, t_max: int, eta_min: float = 0.0):
        super().__init__(optimizer)
        if t_max <= 0:
            raise ValueError("t_max must be positive")
        self.t_max = t_max
        self.eta_min = eta_min

    def get_lr(self) -> float:
        progress = min(self.last_epoch, self.t_max) / self.t_max
        return self.eta_min + 0.5 * (self.base_lr - self.eta_min) * (1.0 + math.cos(math.pi * progress))
