"""Optimizers and learning-rate schedulers.

The paper trains PECAN with Adam and a step-decay learning-rate schedule
(Section 4 implementation details); both are provided here along with SGD for
the baseline comparisons.
"""

from repro.optim.optimizer import Optimizer
from repro.optim.sgd import SGD
from repro.optim.adam import Adam, AdamW
from repro.optim.schedulers import StepLR, MultiStepLR, CosineAnnealingLR, LRScheduler

__all__ = [
    "Optimizer",
    "SGD",
    "Adam",
    "AdamW",
    "StepLR",
    "MultiStepLR",
    "CosineAnnealingLR",
    "LRScheduler",
]
