"""Stochastic gradient descent with momentum / Nesterov / weight decay."""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.nn.module import Parameter
from repro.optim.optimizer import Optimizer


class SGD(Optimizer):
    """Classic SGD: ``v ← μv + g``, ``w ← w − lr·v`` (optionally Nesterov)."""

    def __init__(self, params: Iterable[Parameter], lr: float = 0.01, momentum: float = 0.0,
                 weight_decay: float = 0.0, nesterov: bool = False):
        super().__init__(params, lr)
        if nesterov and momentum <= 0:
            raise ValueError("nesterov momentum requires momentum > 0")
        self.momentum = momentum
        self.weight_decay = weight_decay
        self.nesterov = nesterov
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for param, velocity in zip(self.params, self._velocity):
            if param.grad is None or not param.requires_grad:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                update = grad + self.momentum * velocity if self.nesterov else velocity
            else:
                update = grad
            param.data = param.data - self.lr * update
