"""Optimizer base class."""

from __future__ import annotations

from typing import Iterable, List

import numpy as np

from repro.nn.module import Parameter


class Optimizer:
    """Base class: tracks parameters and provides ``zero_grad``/``step``.

    Parameters that were frozen (``requires_grad == False``) are skipped at
    step time, which is how the paper's uni-optimization strategy (update only
    the prototypes, freeze the convolution weights) is expressed.
    """

    def __init__(self, params: Iterable[Parameter], lr: float):
        self.params: List[Parameter] = list(params)
        if not self.params:
            raise ValueError("optimizer received an empty parameter list")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = float(lr)

    def zero_grad(self) -> None:
        for param in self.params:
            param.grad = None

    def step(self) -> None:
        raise NotImplementedError

    def clip_grad_norm(self, max_norm: float) -> float:
        """Clip the global gradient norm; returns the pre-clip norm."""
        grads = [p.grad for p in self.params if p.grad is not None]
        if not grads:
            return 0.0
        total = float(np.sqrt(sum(float((g ** 2).sum()) for g in grads)))
        if total > max_norm and total > 0:
            scale = max_norm / total
            for g in grads:
                g *= scale
        return total
