"""Command-line interface mirroring the paper's released training commands.

Appendix E of the paper documents the original repository's interface::

    python train.py --log_dir ... --data_dir ... --dataset CIFAR10 \
        --arch resnet20_pecan_d --batch_size 64 --epochs 300 \
        --learning_rate 0.001 --lr_decay_step 200 --query_metric adder --gpu 0

This module reproduces that interface (``repro-pecan train`` /
``python -m repro.cli train``) on top of the experiment runner, and adds two
subcommands the deployment story needs:

* ``evaluate`` — reload a checkpoint and report training-graph and LUT/CAM
  accuracies plus the op counts;
* ``export`` — write the CAM deployment bundle (prototypes + lookup tables +
  the recorded inference program);
* ``serve`` — stand up the :mod:`repro.serve` HTTP endpoint from exported
  bundles alone (no checkpoint, no model construction); with ``--workers N``
  it becomes the data-parallel router + worker-process pool of
  :mod:`repro.serve.pool` over memory-mapped bundles;
* ``deploy`` / ``promote`` / ``rollback`` — the model-lifecycle verbs
  (:mod:`repro.serve.lifecycle`): hot-load a new bundle version into a
  *running* serve/pool process, watch a parity-gated canary rollout, flip or
  restore the active version — all without restarting the serving process;
* ``score`` — offline bulk scoring against a running endpoint at ``batch``
  priority (:class:`repro.serve.client.BulkScorer`): chunked submission that
  soaks idle capacity but yields to online traffic and rides out brownouts.

Flags that only make sense on the authors' setup (``--data_dir``, ``--gpu``)
are accepted and ignored so published command lines run unchanged; extra
``--width_multiplier`` / ``--num_train`` / ``--prototype_cap`` flags expose the
reduced-scale knobs of this reproduction.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional, Sequence

# Heavy subsystems (training substrate, experiment runner, model zoo) are
# imported inside the command handlers that need them: the ``serve`` command
# must start from the lean deployment import graph (`repro.serve` only), and
# parser construction / --help must stay instant.


def _arch_type(value: str) -> str:
    """Validate ``--arch`` against the model zoo, importing it lazily.

    Used as an argparse ``type`` so the zoo only loads when a train/evaluate/
    export command is actually parsed — never for ``serve`` or ``--help``.
    """
    from repro.models import available_models

    if value not in available_models():
        raise argparse.ArgumentTypeError(
            f"unknown arch {value!r}; available: {', '.join(available_models())}")
    return value


def _add_paper_flags(parser: argparse.ArgumentParser) -> None:
    """The flag set published in Appendix E (plus reproduction extras)."""
    parser.add_argument("--log_dir", default="runs", help="directory for logs and checkpoints")
    parser.add_argument("--data_dir", default="", help="accepted for compatibility; unused "
                                                       "(datasets are synthetic)")
    parser.add_argument("--dataset", default="CIFAR10",
                        help="MNIST / CIFAR10 / CIFAR100 / TINY_IMAGENET")
    parser.add_argument("--arch", default="resnet20_pecan_d", type=_arch_type,
                        help="architecture name (baseline or _pecan_a / _pecan_d "
                             "variant); see repro.models.available_models()")
    parser.add_argument("--batch_size", type=int, default=64)
    parser.add_argument("--epochs", type=int, default=150)
    parser.add_argument("--learning_rate", type=float, default=0.01)
    parser.add_argument("--lr_decay_step", type=int, default=50)
    parser.add_argument("--query_metric", choices=["dot", "adder"], default=None,
                        help="dot = PECAN-A, adder = PECAN-D; overrides the arch suffix")
    parser.add_argument("--gpu", default=None, help="accepted for compatibility; unused "
                                                    "(this reproduction is CPU-only)")
    parser.add_argument("--seed", type=int, default=0)
    # Reproduction-scale knobs (not in the original interface).
    parser.add_argument("--width_multiplier", type=float, default=1.0)
    parser.add_argument("--num_train", type=int, default=512)
    parser.add_argument("--num_test", type=int, default=256)
    parser.add_argument("--image_size", type=int, default=None)
    parser.add_argument("--prototype_cap", type=int, default=None)
    parser.add_argument("--strategy", choices=["co", "uni"], default="co")
    parser.add_argument("--pretrain_epochs", type=int, default=0)


def _resolve_arch(arch: str, query_metric: Optional[str]) -> str:
    """Apply the ``--query_metric`` override the original interface uses."""
    if query_metric is None:
        return arch
    base = arch
    for suffix in ("_pecan_a", "_pecan_d"):
        if base.endswith(suffix):
            base = base[: -len(suffix)]
    return base + ("_pecan_a" if query_metric == "dot" else "_pecan_d")


def config_from_args(args: argparse.Namespace):
    """Translate parsed CLI flags into an :class:`ExperimentConfig`."""
    from repro.experiments import ExperimentConfig

    return ExperimentConfig(
        dataset=args.dataset.lower().replace("-", "_"),
        arch=_resolve_arch(args.arch, args.query_metric),
        width_multiplier=args.width_multiplier,
        num_train=args.num_train,
        num_test=args.num_test,
        image_size=args.image_size,
        batch_size=args.batch_size,
        epochs=args.epochs,
        learning_rate=args.learning_rate,
        lr_decay_step=args.lr_decay_step,
        strategy=args.strategy,
        pretrain_epochs=args.pretrain_epochs,
        prototype_cap=args.prototype_cap,
        seed=args.seed,
    )


def _command_train(args: argparse.Namespace) -> int:
    from repro.experiments import run_experiment
    from repro.hardware.opcount import format_count
    from repro.io import save_checkpoint

    config = config_from_args(args)
    print(f"training {config.arch} on synthetic {config.dataset} "
          f"({config.num_train} train / {config.num_test} test images, "
          f"{config.epochs} epochs, lr {config.learning_rate})")
    result = run_experiment(config, verbose=not args.quiet)

    log_dir = Path(args.log_dir)
    log_dir.mkdir(parents=True, exist_ok=True)
    checkpoint_path = save_checkpoint(result.model, log_dir / f"{config.arch}.npz",
                                      metadata={"accuracy": result.accuracy,
                                                "arch": config.arch,
                                                "dataset": config.dataset,
                                                "epochs": config.epochs})
    history_path = log_dir / f"{config.arch}_history.json"
    history_path.write_text(json.dumps({"history": result.history,
                                        "summary": result.summary()}, indent=2))
    print(f"final test accuracy: {result.accuracy:.4f}")
    print(f"per-image ops: #Add {format_count(result.additions)}, "
          f"#Mul {format_count(result.multiplications)}")
    print(f"checkpoint: {checkpoint_path}")
    print(f"history:    {history_path}")
    return 0


def _rebuild_model(args: argparse.Namespace):
    import numpy as np

    from repro.data import make_dataset
    from repro.models import build_model

    config = config_from_args(args)
    dataset_kwargs = {"num_train": 8, "num_test": args.num_test, "seed": args.seed}
    if args.image_size is not None:
        dataset_kwargs["image_size"] = args.image_size
    _, test = make_dataset(config.dataset, **dataset_kwargs)
    in_channels, image_size, _ = test.image_shape
    model = build_model(config.arch, num_classes=config.dataset_num_classes(),
                        width_multiplier=config.width_multiplier,
                        prototype_cap=config.prototype_cap,
                        rng=np.random.default_rng(config.seed),
                        in_channels=in_channels, image_size=image_size)
    return config, model, test


def _command_evaluate(args: argparse.Namespace) -> int:
    from repro.cam import CAMInferenceEngine
    from repro.hardware.opcount import count_model_ops, format_count
    from repro.io import load_checkpoint

    config, model, test = _rebuild_model(args)
    load_checkpoint(args.checkpoint, model=model)
    from repro.autograd import Tensor, no_grad
    from repro.autograd.functional import accuracy as accuracy_fn

    model.eval()
    with no_grad():
        logits = model(Tensor(test.images))
    graph_accuracy = accuracy_fn(logits, test.labels)
    print(f"training-graph accuracy: {graph_accuracy:.4f}")

    from repro.pecan.convert import pecan_layers
    if pecan_layers(model):
        engine = CAMInferenceEngine(model)
        lut_accuracy = engine.accuracy(test.images, test.labels)
        print(f"LUT/CAM accuracy:        {lut_accuracy:.4f}")
        print(f"traced multiplications:  {engine.op_counter.multiplications}")
    report = count_model_ops(model, test.image_shape, model_name=config.arch)
    print(f"analytic per-image ops: #Add {format_count(report.additions)}, "
          f"#Mul {format_count(report.multiplications)}")
    return 0


def _parse_input_shape(spec: str):
    """``"1,28,28"`` (or ``1x28x28``) -> ``(1, 28, 28)``."""
    parts = [p for p in spec.replace("x", ",").split(",") if p.strip()]
    try:
        shape = tuple(int(p) for p in parts)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"invalid --input-shape {spec!r}; expected comma-separated "
            f"integers like 3,32,32") from None
    if not shape or any(s <= 0 for s in shape):
        raise argparse.ArgumentTypeError(
            f"invalid --input-shape {spec!r}; dimensions must be positive")
    return shape


def _command_export(args: argparse.Namespace) -> int:
    from repro.io import export_deployment_bundle, load_checkpoint

    config, model, test = _rebuild_model(args)
    load_checkpoint(args.checkpoint, model=model)
    output = Path(args.output or (Path(args.log_dir) / f"{config.arch}_deployment.npz"))
    if args.no_program:
        input_shape = None
    elif args.input_shape is not None:
        input_shape = args.input_shape       # explicit override
    else:
        input_shape = test.image_shape       # derived from the dataset
    try:
        path = export_deployment_bundle(model, output, metadata={"arch": config.arch},
                                        input_shape=input_shape)
    except ValueError as exc:
        if input_shape is None:
            raise
        # An untraceable forward (GraphTraceError names every offending
        # module) cannot be recorded; fall back to a LUT-only bundle.
        print(f"note: {exc}")
        print("falling back to a LUT-only bundle (not directly servable)")
        path = export_deployment_bundle(model, output, metadata={"arch": config.arch})
    from repro.io import load_deployment_bundle

    bundle = load_deployment_bundle(path)
    print(f"exported {len(bundle.layer_names)} PECAN layers "
          f"({bundle.total_values()} stored values) to {path}")
    print(f"multiplier-free bundle: {bundle.is_multiplier_free()}")
    print(f"inference program embedded: {bundle.has_program} "
          f"(servable with `repro-pecan serve --bundle {path}`)"
          if bundle.has_program else "inference program embedded: False")
    return 0


def _parse_bundle_spec(spec: str):
    """``name=path`` or bare ``path`` (name defaults to the file stem)."""
    if "=" in spec:
        name, _, path = spec.partition("=")
        return name or None, path
    return None, spec


# --------------------------------------------------------------------------- #
# Lifecycle admin commands (talk to a *running* serve/pool over HTTP)
# --------------------------------------------------------------------------- #
def _admin_client(args: argparse.Namespace):
    from repro.serve.client import ServeClient

    return ServeClient(args.url, timeout_s=args.timeout_s)


def _command_deploy(args: argparse.Namespace) -> int:
    from repro.serve.client import ServeHTTPError

    client = _admin_client(args)
    options = {"canary_fraction": args.canary,
               "min_samples": args.min_samples,
               "max_parity_violations": args.max_parity_violations,
               "auto": not args.no_auto}
    if args.max_latency_ratio is not None:
        options["max_latency_ratio"] = (None if args.max_latency_ratio <= 0
                                        else args.max_latency_ratio)
    try:
        response = client.deploy(args.model, str(Path(args.bundle).resolve()),
                                 version=args.version, **options)
    except ServeHTTPError as exc:
        print(f"deploy failed: {exc}")
        return 1
    print(f"deployed {response.get('deployed', args.model)} "
          f"(canary fraction {args.canary}, "
          f"gate: {args.min_samples} samples / "
          f"{args.max_parity_violations} violations budget)")
    print(json.dumps(response.get("rollout", response), indent=2))
    return 0


def _command_promote(args: argparse.Namespace) -> int:
    from repro.serve.client import ServeHTTPError

    try:
        response = _admin_client(args).promote(args.model, version=args.version)
    except ServeHTTPError as exc:
        print(f"promote failed: {exc}")
        return 1
    print(f"promoted {response.get('model', args.model)} to "
          f"v{response.get('active_version')} "
          f"(was v{response.get('previous_version')})")
    return 0


def _command_rollback(args: argparse.Namespace) -> int:
    from repro.serve.client import ServeHTTPError

    try:
        response = _admin_client(args).rollback(args.model)
    except ServeHTTPError as exc:
        print(f"rollback failed: {exc}")
        return 1
    if "aborted_canary" in response:
        print(f"aborted canary {response['aborted_canary']}; "
              f"{response.get('model', args.model)} stays at "
              f"v{response.get('active_version')}")
    else:
        print(f"rolled {response.get('model', args.model)} back to "
              f"v{response.get('active_version')}")
    return 0


def _command_scale(args: argparse.Namespace) -> int:
    from repro.serve.client import ServeHTTPError

    try:
        response = _admin_client(args).scale(args.workers,
                                             reason=args.reason)
    except ServeHTTPError as exc:
        print(f"scale failed: {exc}")
        return 1
    if "members" in response:       # federation front: per-member results
        print(json.dumps(response, indent=2))
    else:
        print(f"pool pinned to {response.get('workers', args.workers)} "
              f"worker(s) (spawned {response.get('spawned', 0)}, "
              f"retired {response.get('retired', 0)})")
    return 0


def _add_admin_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--url", default="http://127.0.0.1:8080",
                        help="base URL of the running serve/pool process")
    parser.add_argument("--model", required=True,
                        help="base model name (as registered with serve)")
    parser.add_argument("--timeout_s", type=float, default=180.0,
                        help="HTTP timeout (bundle loads happen in-band)")


def _command_score(args: argparse.Namespace) -> int:
    import time

    import numpy as np

    from repro.serve.client import BulkScorer, ServeClient, ServeHTTPError

    if args.dataset == "random":
        if args.input_shape is None:
            print("score: --input-shape is required with --dataset random")
            return 2
        rng = np.random.default_rng(args.seed)
        inputs = rng.standard_normal((args.num_samples, *args.input_shape))
    else:
        path = Path(args.dataset)
        if not path.exists():
            print(f"score: dataset not found: {path}")
            return 2
        if path.suffix == ".npz":
            with np.load(path) as archive:
                key = "images" if "images" in archive.files else archive.files[0]
                inputs = np.asarray(archive[key])
        else:
            inputs = np.load(path)
        if args.num_samples is not None:
            inputs = inputs[: args.num_samples]
    client = ServeClient(args.url, timeout_s=args.timeout_s)
    scorer = BulkScorer(client, model=args.model, tenant=args.tenant,
                        chunk_size=args.chunk,
                        max_chunk_retries=args.max_chunk_retries)
    print(f"scoring {inputs.shape[0]} samples against {args.url} "
          f"(chunks of {args.chunk}, priority batch, tenant {args.tenant!r})")
    started = time.monotonic()
    try:
        logits = scorer.score(inputs)
    except ServeHTTPError as exc:
        print(f"score failed: {exc}")
        return 1
    elapsed = max(time.monotonic() - started, 1e-9)
    print(f"scored {logits.shape[0]} samples in {elapsed:.2f}s "
          f"({logits.shape[0] / elapsed:.1f} samples/s) over "
          f"{scorer.chunks_total} chunks; {scorer.retries_total} chunk "
          f"retries, {scorer.backoff_s_total:.2f}s spent backing off")
    if args.output:
        output = Path(args.output)
        output.parent.mkdir(parents=True, exist_ok=True)
        np.savez(output, logits=logits, classes=np.argmax(logits, axis=1))
        print(f"logits: {output}")
    else:
        classes, counts = np.unique(np.argmax(logits, axis=1),
                                    return_counts=True)
        histogram = {int(cls): int(count) for cls, count
                     in zip(classes, counts)}
        print(f"predicted-class histogram: {histogram}")
    return 0


def _command_serve(args: argparse.Namespace) -> int:
    from repro.serve.config import serve_config_from_args

    config = serve_config_from_args(args)
    if config.federation.members:
        return _serve_federation(config)
    if not config.lifecycle.bundles:
        print("error: serve needs at least one --bundle "
              "(or --federate to start the federation front router)")
        return 2
    if config.pool.workers > 1 or config.autoscale.enabled:
        return _serve_pool(config)
    return _serve_single(config)


def _serve_single(config) -> int:
    from repro.serve import PECANServer
    from repro.serve.registry import ModelRegistry

    mmap_mode = config.engine.mmap_mode
    engine_factory = None
    if config.engine.optimize:
        from repro.serve import BundleEngine

        engine_factory = (lambda path:                        # noqa: E731
                          BundleEngine(path, optimize=True, mmap_mode=mmap_mode))
    registry = ModelRegistry(max_total_values=config.engine.max_total_values,
                             engine_factory=engine_factory, mmap_mode=mmap_mode)
    server = PECANServer(registry=registry, config=config)
    for spec in config.lifecycle.bundles:
        name, path = _parse_bundle_spec(spec)
        registered = server.add_bundle(path, name=name,
                                       preload=config.lifecycle.preload)
        print(f"registered model {registered!r} from {path}")
    server.start()
    print(f"serving on {server.url}  "
          f"(POST /predict, GET /models /metrics /healthz)")
    print(f"batching: up to {config.engine.max_batch_size} samples / "
          f"{config.engine.max_wait_ms} ms; "
          f"queue depth {config.engine.max_queue_depth}; "
          f"parity audit every {config.engine.audit_every or '∞'} batches")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.stop()
    return 0


def _serve_pool(config) -> int:
    import signal

    from repro.serve import PoolServer

    pool = PoolServer(config=config)
    # Installed before start: a SIGTERM that lands while workers are still
    # spawning (or during the readiness wait below) must still drain cleanly.
    signal.signal(signal.SIGTERM, lambda signum, frame: pool.request_stop())
    for spec in config.lifecycle.bundles:
        name, path = _parse_bundle_spec(spec)
        registered = pool.add_bundle(path, name=name)
        print(f"registered model {registered!r} from {path}")
    pool.start()
    print(f"routing on {pool.url} over {pool.num_workers} worker processes "
          f"(policy: {pool.policy.name}, "
          f"bundle arrays "
          f"{'memory-mapped/shared' if config.engine.mmap else 'copied per worker'})")
    if config.autoscale.enabled:
        scaler = pool.autoscaler
        print(f"autoscale: workers {scaler.floor}..{scaler.ceiling} from "
              f"queue depth / p99; POST /admin/scale pins a target")
    if pool.wait_ready(timeout_s=120.0):
        print("all workers ready  (POST /predict, GET /models /metrics /healthz)")
    else:
        print("warning: pool started degraded "
              f"({len(pool.ready_workers())}/{pool.num_workers} workers ready); "
              "see /healthz for per-worker errors")
    print("SIGTERM or Ctrl-C drains in-flight requests before shutdown")
    pool.serve_forever(install_signal_handler=False)
    return 0


def _serve_federation(config) -> int:
    import signal

    from repro.serve.federation import FrontRouter

    front = FrontRouter(config)
    signal.signal(signal.SIGTERM, lambda signum, frame: front.stop())
    front.start()
    members = ", ".join(config.federation.members)
    print(f"federating on {front.url} over members: {members}")
    print("model@version namespaces shard by consistent hashing; "
          "failover to surviving members on connection failure "
          "(POST /predict /admin/*, GET /models /metrics /healthz /trace)")
    try:
        front.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        front.stop()
    return 0


def _command_trace(args: argparse.Namespace) -> int:
    """Offline analysis of a ``--trace_dir`` JSONL export."""
    from repro.serve.trace import (causal_sort, group_by_trace, read_trace_dir,
                                   slowest_traces, summarize_spans)

    spans = read_trace_dir(args.dir)
    if not spans:
        print(f"no spans found under {args.dir}")
        return 1
    traces = group_by_trace(spans)
    print(f"{len(spans)} spans across {len(traces)} traces from {args.dir}")

    if args.id:
        selected = traces.get(args.id)
        if not selected:
            print(f"no spans for trace {args.id!r}")
            return 1
        print(f"\ntrace {args.id}:")
        for span in causal_sort(selected):
            lamport = (span.get("lamport") or {}).get("start")
            duration = span.get("duration_ms")
            duration_txt = "" if duration is None else f"{duration:9.2f} ms"
            print(f"  [{lamport:>4}] {span.get('service', '?'):>7} "
                  f"{span.get('name', '?'):<22} {duration_txt:>12} "
                  f"{span.get('status', '')}")
        return 0

    print("\nper-stage latency (ms):")
    summary = summarize_spans(spans)
    for name in sorted(summary):
        stats = summary[name]
        print(f"  {name:<22} count={stats['count']:<6} "
              f"p50={stats['p50_ms']:.2f} p95={stats['p95_ms']:.2f} "
              f"p99={stats['p99_ms']:.2f} max={stats['max_ms']:.2f}")

    violations = [span for span in spans
                  if span.get("name") == "invariant.violation"]
    print(f"\ninvariant violations: {len(violations)}")
    for span in violations[:10]:
        attrs = span.get("attrs") or {}
        print(f"  {attrs.get('invariant', '?')}: {attrs.get('detail', '')} "
              f"(trace {span.get('trace_id')})")

    print(f"\nslowest {args.slowest} traces (by root span):")
    for entry in slowest_traces(spans, limit=args.slowest):
        print(f"  {entry['trace_id']}  {entry['duration_ms']:9.2f} ms  "
              f"{entry['root']}  spans={entry['spans']}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro-pecan",
                                     description="PECAN reproduction command line")
    parser.add_argument("--quiet", action="store_true", help="suppress per-epoch output")
    subparsers = parser.add_subparsers(dest="command", required=True)

    train = subparsers.add_parser("train", help="train a model (Appendix E interface)")
    _add_paper_flags(train)
    train.set_defaults(handler=_command_train)

    evaluate = subparsers.add_parser("evaluate", help="evaluate a saved checkpoint")
    _add_paper_flags(evaluate)
    evaluate.add_argument("--checkpoint", required=True)
    evaluate.set_defaults(handler=_command_evaluate)

    export = subparsers.add_parser("export", help="export the CAM deployment bundle")
    _add_paper_flags(export)
    export.add_argument("--checkpoint", required=True)
    export.add_argument("--output", default=None)
    export.add_argument("--no_program", action="store_true",
                        help="write a LUT-only bundle without the traced "
                             "inference graph (not servable)")
    export.add_argument("--input-shape", "--input_shape", dest="input_shape",
                        type=_parse_input_shape, default=None,
                        metavar="C,H,W",
                        help="per-sample input shape to trace the inference "
                             "graph with, overriding the dataset-derived "
                             "shape (e.g. 3,32,32)")
    export.set_defaults(handler=_command_export)

    serve = subparsers.add_parser(
        "serve", help="serve exported deployment bundles over HTTP")
    # Every serve flag is generated from the ServeConfig field metadata
    # (repro.serve.config) — one source of truth for flags, constructor
    # fields, --help text and the README reference table.
    from repro.serve.config import add_serve_arguments
    add_serve_arguments(serve)
    serve.set_defaults(handler=_command_serve)

    trace = subparsers.add_parser(
        "trace", help="analyse exported trace JSONL: per-stage latency "
                      "percentiles, slowest traces, invariant violations")
    trace.add_argument("--dir", required=True,
                       help="trace directory written by serve --trace_dir")
    trace.add_argument("--id", default=None,
                       help="print one trace's causally-ordered span "
                            "timeline instead of the summary")
    trace.add_argument("--slowest", type=int, default=5,
                       help="how many slowest traces to list")
    trace.set_defaults(handler=_command_trace)

    score = subparsers.add_parser(
        "score", help="bulk offline scoring against a running serve/pool "
                      "at batch priority (yields to online traffic)")
    score.add_argument("--url", default="http://127.0.0.1:8080",
                       help="base URL of the running serve/pool process")
    score.add_argument("--model", default=None,
                       help="model name (default: the server's only model)")
    score.add_argument("--dataset", default="random",
                       help="samples to score: a .npz/.npy path, or "
                            "'random' with --input-shape")
    score.add_argument("--input-shape", "--input_shape", dest="input_shape",
                       type=_parse_input_shape, default=None,
                       metavar="C,H,W",
                       help="per-sample shape for --dataset random")
    score.add_argument("--num_samples", type=int, default=64,
                       help="samples to generate (random) or cap the "
                            "dataset at")
    score.add_argument("--chunk", type=int, default=8,
                       help="samples per request; keep at or below the "
                            "server's batch-class budget")
    score.add_argument("--tenant", default="bulk",
                       help="tenant id the scoring traffic runs under")
    score.add_argument("--max_chunk_retries", type=int, default=12,
                       help="backoff retries per chunk before giving up")
    score.add_argument("--timeout_s", type=float, default=60.0,
                       help="HTTP timeout per chunk")
    score.add_argument("--output", default=None,
                       help="write logits + argmax classes to this .npz "
                            "(default: print a class histogram)")
    score.add_argument("--seed", type=int, default=0)
    score.set_defaults(handler=_command_score)

    deploy = subparsers.add_parser(
        "deploy", help="hot-load a new bundle version into a running "
                       "serve/pool process (canary rollout on pools)")
    _add_admin_flags(deploy)
    deploy.add_argument("--bundle", required=True,
                        help="deployment bundle .npz readable by the serving "
                             "host (the path is shipped, not the bytes)")
    deploy.add_argument("--version", type=int, default=None,
                        help="explicit version number (default: next free)")
    deploy.add_argument("--canary", type=float, default=0.25,
                        help="fraction of the model's traffic mirrored "
                             "through the candidate while the gate judges it "
                             "(pool mode; 0 disables canary traffic)")
    deploy.add_argument("--min_samples", type=int, default=20,
                        help="clean output comparisons required before "
                             "auto-promote")
    deploy.add_argument("--max_parity_violations", type=int, default=0,
                        help="output mismatches tolerated before "
                             "auto-rollback (PECAN-D is bitwise deterministic"
                             " — keep 0)")
    deploy.add_argument("--max_latency_ratio", type=float, default=None,
                        help="rollback when canary p95 exceeds this multiple "
                             "of active p95 (<=0 disables; default 3.0)")
    deploy.add_argument("--no_auto", action="store_true",
                        help="report the gate's verdict but leave "
                             "promote/rollback to the operator")
    deploy.set_defaults(handler=_command_deploy)

    promote = subparsers.add_parser(
        "promote", help="activate a deployed version on a running serve/pool")
    _add_admin_flags(promote)
    promote.add_argument("--version", type=int, default=None,
                         help="version to activate (default: the in-flight "
                              "rollout's candidate, else the newest)")
    promote.set_defaults(handler=_command_promote)

    rollback = subparsers.add_parser(
        "rollback", help="abort an in-flight canary or restore the "
                         "previously active version")
    _add_admin_flags(rollback)
    rollback.set_defaults(handler=_command_rollback)

    scale = subparsers.add_parser(
        "scale", help="pin a running pool's worker target (or broadcast to "
                      "every member of a federation front)")
    scale.add_argument("--url", default="http://127.0.0.1:8080",
                       help="base URL of the running pool/front process")
    scale.add_argument("--timeout_s", type=float, default=30.0,
                       help="admin request timeout")
    scale.add_argument("--workers", type=int, required=True,
                       help="worker target (clamped into the autoscale "
                            "envelope; 0 needs --scale_to_zero on the pool)")
    scale.add_argument("--reason", default="operator",
                       help="reason recorded in the autoscale event log")
    scale.set_defaults(handler=_command_scale)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(list(argv) if argv is not None else None)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
