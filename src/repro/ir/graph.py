"""Typed DAG intermediate representation for inference programs.

A deployed PECAN model is a *graph* of tensor-producing operations, not a
layer list: residual additions (`ResNet`), channel concatenations (option-A
shortcuts) and branch merges all join two or more values.  This module defines
the small IR that every inference front end of the repository shares:

* :class:`Node` — one operation: an op name, the ids of its input nodes,
  JSON-serializable ``attrs`` and named ``arrays`` (weights, BN statistics,
  constants).
* :class:`Graph` — a list of nodes with a designated ``output_id``; exactly
  one node carries the ``"input"`` op and stands for the per-sample input
  placeholder.  :meth:`Graph.topological_schedule` produces the execution
  order (and is the DAG validity check).

Graphs serialize into a deployment bundle manifest via
:meth:`Graph.to_manifest` / :meth:`Graph.from_manifest`; the legacy linear
programs of format-v2 bundles lift into equivalent chain graphs with
:func:`lift_linear_program`.

This module imports only NumPy so the serving stack can load and execute
graphs without touching the training substrate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Sequence, Tuple

import numpy as np


class GraphError(ValueError):
    """An inference graph is structurally invalid (cycle, dangling edge, ...)."""


@dataclass
class Node:
    """One operation of an inference graph.

    ``inputs`` lists the ids of the nodes producing this node's operands, in
    positional order.  ``attrs`` must stay JSON-serializable (they travel in
    the bundle manifest); tensors ride in ``arrays`` instead.
    """

    id: int
    op: str
    inputs: List[int] = field(default_factory=list)
    attrs: Dict[str, object] = field(default_factory=dict)
    arrays: Dict[str, np.ndarray] = field(default_factory=dict)

    def copy(self) -> "Node":
        """Shallow copy: fresh attr/array dicts, shared array payloads."""
        return Node(self.id, self.op, list(self.inputs), dict(self.attrs),
                    dict(self.arrays))

    @property
    def label(self) -> str:
        """Human-readable op label (``pecan:<layer>`` for PECAN steps)."""
        if self.op == "pecan":
            return f"pecan:{self.attrs.get('layer')}"
        return self.op


@dataclass
class Graph:
    """A DAG of :class:`Node` objects describing one inference program."""

    nodes: List[Node]
    output_id: int

    # ------------------------------------------------------------------ #
    # Structure
    # ------------------------------------------------------------------ #
    def node_map(self) -> Dict[int, Node]:
        return {node.id: node for node in self.nodes}

    @property
    def input_id(self) -> int:
        for node in self.nodes:
            if node.op == "input":
                return node.id
        raise GraphError("graph has no 'input' node")

    def consumers(self) -> Dict[int, List[int]]:
        """Map node id -> ids of the nodes consuming its value."""
        table: Dict[int, List[int]] = {node.id: [] for node in self.nodes}
        for node in self.nodes:
            for parent in node.inputs:
                table.setdefault(parent, []).append(node.id)
        return table

    def validate(self) -> None:
        """Raise :class:`GraphError` on structural problems."""
        ids = [node.id for node in self.nodes]
        if len(set(ids)) != len(ids):
            raise GraphError("graph has duplicate node ids")
        known = set(ids)
        if self.output_id not in known:
            raise GraphError(f"output node {self.output_id} does not exist")
        input_nodes = [node.id for node in self.nodes if node.op == "input"]
        if len(input_nodes) != 1:
            raise GraphError(f"graph must have exactly one input node, "
                             f"found {len(input_nodes)}")
        for node in self.nodes:
            for parent in node.inputs:
                if parent not in known:
                    raise GraphError(f"node {node.id} ({node.op!r}) references "
                                     f"missing node {parent}")
        self.topological_schedule()       # raises on cycles

    def topological_schedule(self) -> List[Node]:
        """Kahn topological order (stable w.r.t. declaration order).

        Raises :class:`GraphError` when the graph contains a cycle.
        """
        by_id = self.node_map()
        indegree = {node.id: len(node.inputs) for node in self.nodes}
        dependents = self.consumers()
        ready = [node.id for node in self.nodes if indegree[node.id] == 0]
        schedule: List[Node] = []
        while ready:
            current = ready.pop(0)
            schedule.append(by_id[current])
            for child in dependents.get(current, []):
                indegree[child] -= 1
                if indegree[child] == 0:
                    ready.append(child)
        if len(schedule) != len(self.nodes):
            stuck = sorted(nid for nid, deg in indegree.items() if deg > 0)
            raise GraphError(f"graph contains a cycle through nodes {stuck}")
        return schedule

    def pruned(self) -> "Graph":
        """Drop every node unreachable from ``output_id`` (dead-node elimination).

        The input node is always kept so the pruned graph stays executable.
        """
        by_id = self.node_map()
        live = set()
        stack = [self.output_id]
        while stack:
            current = stack.pop()
            if current in live:
                continue
            live.add(current)
            stack.extend(by_id[current].inputs)
        try:
            live.add(self.input_id)
        except GraphError:
            pass
        return Graph(nodes=[node for node in self.nodes if node.id in live],
                     output_id=self.output_id)

    def pecan_layers(self) -> List[str]:
        """Names of the PECAN layers referenced by the graph, in node order."""
        return [str(node.attrs["layer"]) for node in self.nodes
                if node.op == "pecan"]

    def op_names(self) -> List[str]:
        """Ops in schedule order (excluding the input placeholder)."""
        return [node.op for node in self.topological_schedule()
                if node.op != "input"]

    # ------------------------------------------------------------------ #
    # Serialization (bundle manifest + array side-table)
    # ------------------------------------------------------------------ #
    def to_manifest(self) -> Tuple[List[Dict[str, object]],
                                   Dict[str, np.ndarray]]:
        """``(entries, arrays)`` where entries are JSON-ready node dicts.

        Array keys take the form ``"<node_id>/<name>"``; the caller prefixes
        them into its own namespace (``__graph__/...`` in deployment bundles).
        """
        entries: List[Dict[str, object]] = []
        arrays: Dict[str, np.ndarray] = {}
        for node in self.nodes:
            entries.append({
                "id": node.id,
                "op": node.op,
                "inputs": list(node.inputs),
                "attrs": dict(node.attrs),
                "array_keys": sorted(node.arrays),
            })
            for key, array in node.arrays.items():
                arrays[f"{node.id}/{key}"] = array
        return entries, arrays

    @classmethod
    def from_manifest(cls, entries: Sequence[Dict[str, object]],
                      output_id: int,
                      array_lookup: Callable[[int, str], np.ndarray]) -> "Graph":
        """Rebuild a graph from manifest entries and an array resolver."""
        nodes: List[Node] = []
        for index, entry in enumerate(entries):
            if not isinstance(entry, dict) or "op" not in entry or "id" not in entry:
                raise GraphError(f"graph entry {index} is missing 'id'/'op'")
            node_id = int(entry["id"])
            arrays = {key: array_lookup(node_id, key)
                      for key in entry.get("array_keys", [])}
            nodes.append(Node(id=node_id, op=str(entry["op"]),
                              inputs=[int(i) for i in entry.get("inputs", [])],
                              attrs=dict(entry.get("attrs", {})),
                              arrays=arrays))
        graph = cls(nodes=nodes, output_id=int(output_id))
        graph.validate()
        return graph


# --------------------------------------------------------------------------- #
# Index (getitem) encoding — attrs must stay JSON-serializable
# --------------------------------------------------------------------------- #
def encode_index(index) -> List[Dict[str, object]]:
    """Encode a ``__getitem__`` index into JSON-able form.

    Supports what traced inference programs use: integers, slices, ``None``
    (new axis), ``Ellipsis`` and tuples thereof.  Anything else (boolean or
    array indices) raises ``TypeError``.
    """
    items = index if isinstance(index, tuple) else (index,)
    encoded: List[Dict[str, object]] = []
    for item in items:
        if isinstance(item, (int, np.integer)):
            encoded.append({"kind": "int", "value": int(item)})
        elif isinstance(item, slice):
            encoded.append({"kind": "slice",
                            "start": None if item.start is None else int(item.start),
                            "stop": None if item.stop is None else int(item.stop),
                            "step": None if item.step is None else int(item.step)})
        elif item is None:
            encoded.append({"kind": "newaxis"})
        elif item is Ellipsis:
            encoded.append({"kind": "ellipsis"})
        else:
            raise TypeError(f"unsupported index component {item!r} "
                            f"(supported: int, slice, None, Ellipsis)")
    return encoded


def decode_index(encoded: Sequence[Dict[str, object]]):
    """Inverse of :func:`encode_index`."""
    items = []
    for entry in encoded:
        kind = entry.get("kind")
        if kind == "int":
            items.append(int(entry["value"]))
        elif kind == "slice":
            items.append(slice(entry.get("start"), entry.get("stop"),
                               entry.get("step")))
        elif kind == "newaxis":
            items.append(None)
        elif kind == "ellipsis":
            items.append(Ellipsis)
        else:
            raise GraphError(f"unknown index component kind {kind!r}")
    return tuple(items)


# --------------------------------------------------------------------------- #
# Lifting legacy (format v2) linear programs
# --------------------------------------------------------------------------- #
def lift_linear_program(program: Iterable[Dict[str, object]]) -> Graph:
    """Lift a format-v2 linear inference program into a chain graph.

    Each legacy step dict (``{"op": ..., <scalar attrs>, "arrays": {...}}``)
    becomes one node whose single input is the previous step; the first step
    consumes the input placeholder.  The resulting graph executes identically
    to the old sequential replay.
    """
    nodes: List[Node] = [Node(id=0, op="input")]
    previous = 0
    for index, step in enumerate(program):
        if "op" not in step:
            raise GraphError(f"linear program step {index} is missing its 'op' key")
        attrs = {key: value for key, value in step.items()
                 if key not in ("op", "arrays", "array_keys")}
        node = Node(id=index + 1, op=str(step["op"]), inputs=[previous],
                    attrs=attrs, arrays=dict(step.get("arrays", {})))
        nodes.append(node)
        previous = node.id
    graph = Graph(nodes=nodes, output_id=previous)
    graph.validate()
    return graph
