"""Optimization passes over inference graphs.

Each pass takes (and returns) a :class:`~repro.ir.graph.Graph` plus the LUT
dictionary of the bundle being compiled, never mutating its inputs: nodes are
shallow-copied and modified arrays/LUTs are rebuilt, so the unoptimized graph
stays available for parity verification.

Available passes (see :data:`DEFAULT_PASSES` for the pipeline order):

``fold_batchnorm`` (**approximate**)
    Folds a ``batchnorm`` node into its single producing ``conv``/``linear``
    (weights and bias rescaled, Section 4.2 of the paper) or ``pecan`` node
    (the LUT columns and bias are rescaled — for PECAN-D this removes the
    per-position BN multiplications entirely, restoring the multiplier-free
    property).  The algebra is exact, but float rounding reassociates, so
    outputs match the unfused graph to ``atol``-level rather than bitwise.

``fuse_relu`` (**exact**)
    Merges a ``relu`` into its single producer (``conv``/``linear``/
    ``batchnorm``/``pecan``/``add``) as a ``fused_relu`` attribute; the kernel
    applies the identical ``np.maximum`` afterwards, so outputs are bitwise
    unchanged.

``eliminate_identities`` (**exact**)
    Rewires consumers of ``identity`` nodes to the identity's input.

``eliminate_dead_nodes`` (**exact**)
    Drops nodes unreachable from the output (:meth:`Graph.pruned`).

:func:`optimize_graph` chains the passes and reports which ones changed the
graph and whether every applied pass was exact — callers use that to pick the
right parity tolerance (bitwise vs ``allclose``).
"""

from __future__ import annotations

from dataclasses import replace as dataclass_replace
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.cam.layer_lut import LayerLUT
from repro.ir.graph import Graph

LutDict = Dict[str, LayerLUT]

#: Pipeline order; BN folding runs first so the freed ReLUs/identities are
#: cleaned up by the later passes.
DEFAULT_PASSES = ("fold_batchnorm", "fuse_relu", "eliminate_identities",
                  "eliminate_dead_nodes")

#: Passes whose output is bitwise-identical to their input graph.
EXACT_PASSES = frozenset({"fuse_relu", "eliminate_identities",
                          "eliminate_dead_nodes"})

#: Node ops a trailing ReLU may fuse into.
_RELU_FUSABLE = frozenset({"conv", "linear", "batchnorm", "pecan", "add"})


def _copy_graph(graph: Graph) -> Graph:
    return Graph(nodes=[node.copy() for node in graph.nodes],
                 output_id=graph.output_id)


def _single_consumer(graph: Graph) -> Dict[int, Optional[int]]:
    """Map node id -> its sole consumer's id (``None`` when 0 or >1)."""
    table = graph.consumers()
    return {nid: (users[0] if len(users) == 1 else None)
            for nid, users in table.items()}


# --------------------------------------------------------------------------- #
# Passes
# --------------------------------------------------------------------------- #
def fold_batchnorm(graph: Graph, luts: LutDict) -> Tuple[Graph, LutDict, bool]:
    """Fold eval-mode batch-norm into the preceding conv/linear/pecan node."""
    graph = _copy_graph(graph)
    luts = dict(luts)
    by_id = graph.node_map()
    changed = False
    for bn in list(graph.nodes):
        if bn.op != "batchnorm" or bn.attrs.get("fused_relu"):
            continue
        producer = by_id[bn.inputs[0]]
        if producer.op not in ("conv", "linear", "pecan"):
            continue
        if producer.attrs.get("fused_relu"):
            continue                 # an activation sits between the two
        consumers = graph.consumers()
        if consumers.get(producer.id, []) != [bn.id]:
            continue                 # producer feeds something else too
        mean = np.asarray(bn.arrays["mean"], dtype=np.float64)
        var = np.asarray(bn.arrays["var"], dtype=np.float64)
        gamma = np.asarray(bn.arrays["gamma"], dtype=np.float64)
        beta = np.asarray(bn.arrays["beta"], dtype=np.float64)
        scale = gamma / np.sqrt(var + float(bn.attrs["eps"]))
        shift = beta - mean * scale

        if producer.op == "pecan":
            layer = str(producer.attrs["layer"])
            lut = luts[layer]
            if scale.shape != (lut.out_channels,):
                continue             # BN features do not line up with cout
            bias = lut.bias if lut.bias is not None else np.zeros(lut.out_channels)
            luts[layer] = dataclass_replace(
                lut,
                table=lut.table * scale[None, :, None],
                bias=bias * scale + shift,
                group_permutation=(None if lut.group_permutation is None
                                   else lut.group_permutation.copy()),
            )
        else:
            weight = np.asarray(producer.arrays["weight"], dtype=np.float64)
            if scale.shape != (weight.shape[0],):
                continue
            bias = producer.arrays.get("bias")
            bias = (np.zeros(weight.shape[0]) if bias is None
                    else np.asarray(bias, dtype=np.float64))
            broadcast = (-1,) + (1,) * (weight.ndim - 1)
            producer.arrays = dict(producer.arrays,
                                   weight=weight * scale.reshape(broadcast),
                                   bias=bias * scale + shift)

        # Splice the BN node out: its consumers read the producer directly.
        for node in graph.nodes:
            node.inputs = [producer.id if parent == bn.id else parent
                           for parent in node.inputs]
        if graph.output_id == bn.id:
            graph.output_id = producer.id
        graph.nodes.remove(bn)
        by_id = graph.node_map()
        changed = True
    return graph, luts, changed


def fuse_relu(graph: Graph, luts: LutDict) -> Tuple[Graph, LutDict, bool]:
    """Absorb ``relu`` nodes into their single producer as ``fused_relu``."""
    graph = _copy_graph(graph)
    by_id = graph.node_map()
    changed = False
    for node in list(graph.nodes):
        if node.op != "relu":
            continue
        producer = by_id[node.inputs[0]]
        if producer.op not in _RELU_FUSABLE or producer.attrs.get("fused_relu"):
            continue
        if graph.consumers().get(producer.id, []) != [node.id]:
            continue
        producer.attrs = dict(producer.attrs, fused_relu=True)
        for other in graph.nodes:
            other.inputs = [producer.id if parent == node.id else parent
                            for parent in other.inputs]
        if graph.output_id == node.id:
            graph.output_id = producer.id
        graph.nodes.remove(node)
        by_id = graph.node_map()
        changed = True
    return graph, luts, changed


def eliminate_identities(graph: Graph, luts: LutDict) -> Tuple[Graph, LutDict, bool]:
    """Rewire consumers of ``identity`` nodes straight to their inputs."""
    graph = _copy_graph(graph)
    changed = False
    for node in list(graph.nodes):
        if node.op != "identity" or node.attrs.get("fused_relu"):
            continue
        source = node.inputs[0]
        for other in graph.nodes:
            other.inputs = [source if parent == node.id else parent
                            for parent in other.inputs]
        if graph.output_id == node.id:
            graph.output_id = source
        graph.nodes.remove(node)
        changed = True
    return graph, luts, changed


def eliminate_dead_nodes(graph: Graph, luts: LutDict) -> Tuple[Graph, LutDict, bool]:
    """Drop nodes unreachable from the output."""
    pruned = graph.pruned()
    return pruned, luts, len(pruned.nodes) != len(graph.nodes)


_PASSES = {
    "fold_batchnorm": fold_batchnorm,
    "fuse_relu": fuse_relu,
    "eliminate_identities": eliminate_identities,
    "eliminate_dead_nodes": eliminate_dead_nodes,
}


def available_passes() -> List[str]:
    return sorted(_PASSES)


def optimize_graph(graph: Graph, luts: LutDict,
                   passes: Iterable[str] = DEFAULT_PASSES
                   ) -> Tuple[Graph, LutDict, Dict[str, object]]:
    """Run ``passes`` in order; returns ``(graph, luts, info)``.

    ``info["applied"]`` lists the passes that changed the graph and
    ``info["exact"]`` is ``True`` when every applied pass preserves bitwise
    output equality (callers then verify with ``array_equal`` instead of
    ``allclose``).
    """
    applied: List[str] = []
    for name in passes:
        try:
            pass_fn = _PASSES[name]
        except KeyError:
            raise ValueError(f"unknown graph pass {name!r}; available: "
                             f"{available_passes()}") from None
        graph, luts, changed = pass_fn(graph, luts)
        if changed:
            applied.append(name)
    graph.validate()
    info = {"applied": applied,
            "exact": all(name in EXACT_PASSES for name in applied)}
    return graph, luts, info
