"""Graph execution: replay an inference :class:`~repro.ir.graph.Graph`.

:class:`GraphExecutor` is the single forward-pass implementation shared by
the model-backed :class:`~repro.cam.inference.CAMInferenceEngine` and the
bundle-backed :class:`~repro.serve.engine.BundleEngine`: both construct a
graph (by tracing a live model, or by deserializing a bundle) plus one
:class:`~repro.cam.runtime.LUTLayerRuntime` per PECAN layer, and delegate
``predict`` to :meth:`GraphExecutor.run`.

The executor precompiles the topological schedule once, then evaluates nodes
in order, keeping each intermediate value alive only until its last consumer
has run (simple liveness analysis), so peak activation memory tracks the
graph's width rather than its depth.

Imports stay deployment-lean: only NumPy, the graph IR and the op registry —
no autograd, no model zoo.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.ir.graph import Graph, GraphError, Node
from repro.ir.ops import OpSpec, get_op


class GraphExecutor:
    """Execute an inference graph over NumPy batches.

    Parameters
    ----------
    graph:
        The program to run.  Validated (and scheduled) at construction.
    runtimes:
        ``layer name -> LUTLayerRuntime`` for every ``pecan`` node of the
        graph.  Missing runtimes are reported here rather than mid-batch.
    """

    def __init__(self, graph: Graph, runtimes: Optional[Dict[str, object]] = None):
        graph.validate()
        self.graph = graph
        self.runtimes: Dict[str, object] = dict(runtimes or {})
        self._schedule: List[Node] = graph.topological_schedule()
        self._specs: Dict[int, OpSpec] = {node.id: get_op(node.op)
                                          for node in self._schedule}
        missing = [name for name in graph.pecan_layers() if name not in self.runtimes]
        if missing:
            raise GraphError(f"graph references PECAN layers with no runtime: "
                             f"{sorted(set(missing))}")
        # Liveness: index of the last schedule step consuming each node, so
        # intermediates are released as soon as no later step needs them.
        self._last_use: Dict[int, int] = {}
        for position, node in enumerate(self._schedule):
            for parent in node.inputs:
                self._last_use[parent] = position
        self._last_use[graph.output_id] = len(self._schedule)

    # ------------------------------------------------------------------ #
    def run(self, inputs: np.ndarray) -> np.ndarray:
        """Evaluate the graph for a batch, returning the output node's value."""
        env: Dict[int, np.ndarray] = {self.graph.input_id: inputs}
        for position, node in enumerate(self._schedule):
            if node.op == "input":
                continue
            try:
                operands = [env[parent] for parent in node.inputs]
            except KeyError as exc:  # pragma: no cover - validate() prevents this
                raise GraphError(f"node {node.id} ({node.op!r}) consumed "
                                 f"value {exc} before it was produced") from exc
            env[node.id] = self._specs[node.id].kernel(operands, node, self)
            for parent in node.inputs:
                if self._last_use.get(parent, -1) <= position and parent in env:
                    del env[parent]
        return env[self.graph.output_id]

    __call__ = run

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def step_labels(self) -> List[str]:
        """Schedule as human-readable op labels (input placeholder omitted)."""
        return [node.label for node in self._schedule if node.op != "input"]

    def multiplier_ops(self) -> List[str]:
        """Labels of scheduled ops whose lowerings perform multiplications."""
        return [node.label for node in self._schedule
                if not self._specs[node.id].multiplier_free]
