"""Tape-based DAG tracing of a model's inference program.

Replaces the old linear recorder of ``repro.io.deployment``: instead of
demanding that a model be a flat sequence of leaf modules, the tracer records
a :class:`~repro.ir.graph.Graph` by combining two tapes:

* **leaf modules** (PECAN layers, ``Conv2d``/``Linear``, batch-norm,
  activations, pooling, ``Flatten``/``Dropout``/``Identity``) emit one graph
  node per call, with their parameters captured into the node's arrays;
* **inline tensor math** between leaves — residual additions, channel
  concatenations, strided slicing, fresh constant tensors — is captured by
  lightweight trace hooks inside :mod:`repro.autograd.tensor` and
  :func:`repro.autograd.functional.concatenate`, so architectures like
  ``repro.models.resnet`` (``out + shortcut(x)``) and ``repro.models.convmixer``
  (``spatial(x) + x``) trace exactly.

A tensor that appears as an operand without a recorded producer is either a
genuine constant (created inside ``forward``, e.g. the zero padding of an
option-A shortcut — embedded as a ``constant`` node) or the output of an
operation the tracer has no hook for.  The two are distinguished via the
``from_op`` creation hook: op-produced-but-unrecorded values are collected as
failures, and :func:`trace_graph` raises a single :class:`GraphTraceError`
naming *every* offending module together with the supported op list, instead
of dying on the first leaf.

Tracing runs one zero batch of shape ``(1, *input_shape)`` through the model
in eval mode under ``no_grad``; traced constants therefore carry a batch axis
of 1 and broadcast at serve time (see :func:`repro.ir.ops.concat`).

This module imports the training stack (autograd, nn, pecan layers) and must
stay off the serving import path — the serving side only ever consumes the
resulting :class:`Graph`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.ir.graph import Graph, Node, encode_index
from repro.ir.ops import supported_ops


class GraphTraceError(ValueError):
    """A model's forward pass cannot be recorded as an inference graph."""


#: Module types the tracer records as single leaf nodes (everything else is
#: traced *through*, decomposing into inline tensor ops).
def _leaf_describers():
    from repro.nn.layers import (AvgPool2d, BatchNorm2d, Conv2d, Dropout, Flatten,
                                 GELU, GlobalAvgPool2d, Identity, Linear, MaxPool2d,
                                 ReLU)

    def conv(name, module):
        arrays = {"weight": np.asarray(module.weight.data, dtype=np.float64)}
        if module.bias is not None:
            arrays["bias"] = np.asarray(module.bias.data, dtype=np.float64)
        return "conv", {"stride": module.stride, "padding": module.padding}, arrays

    def linear(name, module):
        arrays = {"weight": np.asarray(module.weight.data, dtype=np.float64)}
        if module.bias is not None:
            arrays["bias"] = np.asarray(module.bias.data, dtype=np.float64)
        return "linear", {}, arrays

    def batchnorm(name, module):    # covers the BatchNorm1d subclass too
        arrays = {"mean": np.asarray(module.running_mean, dtype=np.float64),
                  "var": np.asarray(module.running_var, dtype=np.float64),
                  "gamma": np.asarray(module.weight.data, dtype=np.float64),
                  "beta": np.asarray(module.bias.data, dtype=np.float64)}
        return "batchnorm", {"eps": module.eps}, arrays

    return [
        (Conv2d, conv),
        (Linear, linear),
        (BatchNorm2d, batchnorm),
        (ReLU, lambda name, m: ("relu", {}, {})),
        (GELU, lambda name, m: ("gelu", {}, {})),
        (MaxPool2d, lambda name, m: ("maxpool", {"kernel_size": m.kernel_size,
                                                 "stride": m.stride}, {})),
        (AvgPool2d, lambda name, m: ("avgpool", {"kernel_size": m.kernel_size,
                                                 "stride": m.stride}, {})),
        (GlobalAvgPool2d, lambda name, m: ("global_avgpool", {}, {})),
        (Flatten, lambda name, m: ("flatten", {}, {})),
        (Dropout, lambda name, m: ("identity", {}, {})),
        (Identity, lambda name, m: ("identity", {}, {})),
    ]


def supported_leaf_modules() -> List[str]:
    """Names of the module types recorded as single graph nodes."""
    return sorted({cls.__name__ for cls, _ in _leaf_describers()}
                  | {"PECANConv2d", "PECANLinear"})


class GraphTracer:
    """Records the graph while a wrapped forward pass executes."""

    #: Inline tensor ops the autograd hooks report.
    TENSOR_OPS = ("add", "sub", "mul", "div", "neg", "getitem", "concat")

    def __init__(self):
        self.nodes: List[Node] = []
        self._values: Dict[int, int] = {}       # id(Tensor) -> node id
        self._keepalive: List[object] = []      # pins tensor identity
        self._created: Dict[int, str] = {}      # id(Tensor) -> producing module
        self._suppress = 0
        self._module_stack: List[str] = ["<model>"]
        self.failures: List[Tuple[str, str]] = []

    # ------------------------------------------------------------------ #
    # Bookkeeping
    # ------------------------------------------------------------------ #
    def _fail(self, module_name: str, reason: str) -> None:
        entry = (module_name, reason)
        if entry not in self.failures:
            self.failures.append(entry)

    def _new_node(self, op: str, inputs: List[int],
                  attrs: Optional[dict] = None,
                  arrays: Optional[dict] = None) -> int:
        node = Node(id=len(self.nodes), op=op, inputs=inputs,
                    attrs=attrs or {}, arrays=arrays or {})
        self.nodes.append(node)
        return node.id

    def _register(self, tensor, node_id: int) -> None:
        self._values[id(tensor)] = node_id
        self._keepalive.append(tensor)

    def _lookup(self, tensor) -> Optional[int]:
        """Node id producing ``tensor``; embeds true constants on the fly."""
        node_id = self._values.get(id(tensor))
        if node_id is not None:
            return node_id
        origin = self._created.get(id(tensor))
        if origin is not None:
            self._fail(origin, "produces a value through a tensor operation "
                               "the tracer has no hook for")
            return None
        node_id = self._new_node("constant", [],
                                 arrays={"value": np.array(tensor.data, copy=True)})
        self._register(tensor, node_id)
        return node_id

    # ------------------------------------------------------------------ #
    # Hooks (installed into repro.autograd.tensor during tracing)
    # ------------------------------------------------------------------ #
    def created(self, tensor) -> None:
        """``Tensor.from_op`` hook: remember which module made each value."""
        if self._suppress:
            return
        self._created[id(tensor)] = self._module_stack[-1]
        self._keepalive.append(tensor)

    def tensor_op(self, op: str, operands: Sequence, out, attrs: dict) -> None:
        """Inline-op hook (add/sub/mul/div/neg/getitem/concat)."""
        if self._suppress:
            return
        attrs = dict(attrs)
        if op == "getitem":
            try:
                attrs["index"] = encode_index(attrs.pop("index"))
            except TypeError as exc:
                self._fail(self._module_stack[-1], f"slices with {exc}")
                return
        input_ids = [self._lookup(operand) for operand in operands]
        if any(node_id is None for node_id in input_ids):
            return                      # failure already recorded; poison out
        self._register(out, self._new_node(op, input_ids, attrs))

    # ------------------------------------------------------------------ #
    # Module wrapping
    # ------------------------------------------------------------------ #
    def leaf_recorder(self, name: str, module, describe, original):
        def wrapped(x):
            if self._suppress:
                return original(x)
            input_id = self._lookup(x)
            self._suppress += 1
            try:
                out = original(x)
            finally:
                self._suppress -= 1
            if input_id is not None:
                op, attrs, arrays = describe(name, module)
                self._register(out, self._new_node(op, [input_id], attrs, arrays))
            self.created(out)           # poison downstream if input was unknown
            return out
        return wrapped

    def scope_recorder(self, name: str, original):
        def wrapped(*args, **kwargs):
            self._module_stack.append(name)
            try:
                return original(*args, **kwargs)
            finally:
                self._module_stack.pop()
        return wrapped


def trace_graph(model, input_shape: Sequence[int]) -> Graph:
    """Record the inference graph of ``model`` for per-sample ``input_shape``.

    Pushes one zero batch of shape ``(1, *input_shape)`` through the model in
    eval mode, recording leaf-module calls and inline tensor ops.  Raises
    :class:`GraphTraceError` listing every module whose behaviour the tracer
    cannot express, together with the supported leaf-module and op lists.
    """
    import importlib

    # repro.autograd re-exports a *function* named ``tensor`` that shadows the
    # submodule attribute, so the module object must come from importlib.
    tensor_mod = importlib.import_module("repro.autograd.tensor")
    Tensor, no_grad = tensor_mod.Tensor, tensor_mod.no_grad
    from repro.pecan.layers import PECANConv2d, PECANLinear

    describers = _leaf_describers()

    def describe_pecan(name, module):
        return "pecan", {"layer": name}, {}

    def find_describer(module):
        if isinstance(module, (PECANConv2d, PECANLinear)):
            return describe_pecan
        for cls, describe in describers:
            if isinstance(module, cls):
                return describe
        return None

    tracer = GraphTracer()
    input_shape = tuple(int(s) for s in input_shape)

    # PECAN layers are trace leaves even though they own child modules (their
    # codebook); nothing nested inside one is wrapped.
    pecan_names = [name for name, module in model.named_modules()
                   if isinstance(module, (PECANConv2d, PECANLinear))]
    wrapped: List[Tuple[object, object]] = []
    seen_modules = set()
    for name, module in model.named_modules():
        if not name or any(name.startswith(p + ".") for p in pecan_names):
            continue
        if id(module) in seen_modules:   # shared instances wrap exactly once
            continue
        seen_modules.add(id(module))
        describe = find_describer(module)
        original = module.forward
        if describe is not None:
            module.forward = tracer.leaf_recorder(name, module, describe, original)
        else:
            # Containers and unknown modules are traced *through*; the scope
            # wrapper attributes inline ops (and failures) to them by name.
            module.forward = tracer.scope_recorder(name, original)
        wrapped.append((module, original))

    was_training = model.training
    model.eval()
    previous_hook = tensor_mod.get_trace_hook()
    tensor_mod.set_trace_hook(tracer)
    try:
        probe = Tensor(np.zeros((1, *input_shape), dtype=np.float64))
        input_id = tracer._new_node("input", [])
        tracer._register(probe, input_id)
        with no_grad():
            out = model(probe)
    finally:
        tensor_mod.set_trace_hook(previous_hook)
        for module, original in wrapped:
            module.forward = original
        model.train(was_training)

    output_id = tracer._values.get(id(out))
    if output_id is None:
        origin = tracer._created.get(id(out), "<model>")
        tracer._fail(origin, "produces the model output through a tensor "
                             "operation the tracer has no hook for")
    if tracer.failures:
        details = "; ".join(f"{name}: {reason}" for name, reason in tracer.failures)
        raise GraphTraceError(
            f"cannot record an inference graph for this model — offending "
            f"module(s): {details}. Supported leaf modules: "
            f"{', '.join(supported_leaf_modules())}; supported inline tensor "
            f"ops: {', '.join(GraphTracer.TENSOR_OPS)}; other registered "
            f"graph ops: {', '.join(supported_ops())}.")

    graph = Graph(nodes=tracer.nodes, output_id=output_id).pruned()
    graph.validate()
    return graph
