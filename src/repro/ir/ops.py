"""The unified op registry: one lowering per inference-graph op.

Every forward implementation of the deployment stack lives here, exactly
once.  The numeric lowerings mirror :mod:`repro.autograd.functional` — same
im2col + einsum convolution, same reduction order, same constants — so a
graph replay is element-wise identical to running the source model (bitwise
on the PECAN-D lookup path), without importing autograd.

Two layers of API:

* plain NumPy functions (:func:`conv2d`, :func:`linear`, :func:`relu`, ...) —
  the lowerings themselves, importable directly (``repro.serve.ops``
  re-exports them for backwards compatibility);
* the registry — :func:`register_op` binds each graph op name to an
  :class:`OpSpec` whose kernel executes one :class:`~repro.ir.graph.Node`
  given its input arrays and an execution context (the
  :class:`~repro.ir.executor.GraphExecutor`, which owns the PECAN layer
  runtimes).

The ``multiplier_free`` flag on each spec records whether the lowering
performs multiplications — :meth:`BundleEngine.is_multiplier_free` derives
the program-level property from it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.ir.graph import Node, decode_index
from repro.perf.im2col import conv_output_size, im2col


# --------------------------------------------------------------------------- #
# Pure-NumPy lowerings (mirror repro.autograd.functional exactly)
# --------------------------------------------------------------------------- #
def conv2d(x: np.ndarray, weight: np.ndarray, bias: Optional[np.ndarray],
           stride: int = 1, padding: int = 0) -> np.ndarray:
    """2-D convolution via im2col lowering; mirrors ``functional.conv2d``."""
    n, cin, h, w = x.shape
    cout, cin_w, k, _ = weight.shape
    if cin != cin_w:
        raise ValueError(f"channel mismatch: input has {cin}, weight expects {cin_w}")
    hout = conv_output_size(h, k, stride, padding)
    wout = conv_output_size(w, k, stride, padding)
    cols = im2col(x, k, stride, padding)                 # (N, Cin*k*k, L)
    w_mat = weight.reshape(cout, -1)                     # (Cout, Cin*k*k)
    out = np.einsum("of,nfl->nol", w_mat, cols).reshape(n, cout, hout, wout)
    if bias is not None:
        out = out + bias.reshape(1, cout, 1, 1)
    return out


def linear(x: np.ndarray, weight: np.ndarray, bias: Optional[np.ndarray]) -> np.ndarray:
    """``x @ weight.T + bias`` with ``weight`` of shape ``(out, in)``."""
    out = np.matmul(x, weight.T)
    if bias is not None:
        out = out + bias
    return out


def relu(x: np.ndarray) -> np.ndarray:
    return np.maximum(x, 0.0)


def gelu(x: np.ndarray) -> np.ndarray:
    """Gaussian error linear unit (tanh approximation, same constants)."""
    inner = (x + x * x * x * 0.044715) * 0.7978845608028654
    return x * (np.tanh(inner) + 1.0) * 0.5


def _pool_windows(x: np.ndarray, kernel_size: int, stride: int) -> np.ndarray:
    n, c, h, w = x.shape
    k = kernel_size
    hout = (h - k) // stride + 1
    wout = (w - k) // stride + 1
    sn, sc, sh, sw = x.strides
    return np.lib.stride_tricks.as_strided(
        x,
        shape=(n, c, hout, wout, k, k),
        strides=(sn, sc, sh * stride, sw * stride, sh, sw),
        writeable=False,
    )


def max_pool2d(x: np.ndarray, kernel_size: int, stride: Optional[int] = None) -> np.ndarray:
    stride = stride if stride is not None else kernel_size
    windows = _pool_windows(x, kernel_size, stride)
    k = kernel_size
    flat = windows.reshape(*windows.shape[:4], k * k)
    arg = flat.argmax(axis=-1)
    return np.take_along_axis(flat, arg[..., None], axis=-1)[..., 0]


def avg_pool2d(x: np.ndarray, kernel_size: int, stride: Optional[int] = None) -> np.ndarray:
    stride = stride if stride is not None else kernel_size
    return _pool_windows(x, kernel_size, stride).mean(axis=(-1, -2))


def global_avg_pool2d(x: np.ndarray) -> np.ndarray:
    return x.mean(axis=(2, 3))


def flatten(x: np.ndarray) -> np.ndarray:
    return x.reshape(x.shape[0], -1)


def batch_norm(x: np.ndarray, mean: np.ndarray, var: np.ndarray,
               gamma: np.ndarray, beta: np.ndarray, eps: float) -> np.ndarray:
    """Eval-mode batch normalization; mirrors ``functional.batch_norm``."""
    if x.ndim == 4:
        shape = (1, -1, 1, 1)
    elif x.ndim == 2:
        shape = (1, -1)
    else:
        raise ValueError(f"batch_norm expects 2-D or 4-D input, got {x.ndim}-D")
    normalized = (x - mean.reshape(shape)) / np.sqrt(var.reshape(shape) + eps)
    return normalized * gamma.reshape(shape) + beta.reshape(shape)


def concat(arrays: Sequence[np.ndarray], axis: int = 0) -> np.ndarray:
    """Concatenation with traced-constant batch broadcasting.

    Inference graphs are traced with a single-sample batch, so embedded
    constants carry a leading batch axis of 1; when a larger batch flows
    through a non-batch-axis concatenation the constants broadcast along the
    batch axis first (the values are identical to re-creating the constant at
    the live batch size, which is what the source model does).
    """
    arrays = [np.asarray(a) for a in arrays]
    ndim = arrays[0].ndim
    if axis % ndim != 0:
        batch = max(a.shape[0] for a in arrays)
        if batch > 1:
            arrays = [np.broadcast_to(a, (batch,) + a.shape[1:])
                      if a.shape[0] == 1 else a for a in arrays]
    return np.concatenate(arrays, axis=axis)


# --------------------------------------------------------------------------- #
# Registry
# --------------------------------------------------------------------------- #
#: Kernel signature: ``kernel(inputs, node, ctx) -> np.ndarray`` where ``ctx``
#: exposes ``ctx.runtimes`` (PECAN layer name -> LUTLayerRuntime).
Kernel = Callable[[Sequence[np.ndarray], Node, object], np.ndarray]


@dataclass(frozen=True)
class OpSpec:
    """One registered graph op: its kernel and static properties."""

    name: str
    kernel: Kernel
    #: The lowering performs no multiplications (PECAN-D accounting).
    multiplier_free: bool = False
    #: Output equals input shape element-for-element (safe for ReLU fusion).
    elementwise: bool = False


_REGISTRY: Dict[str, OpSpec] = {}


def register_op(name: str, multiplier_free: bool = False,
                elementwise: bool = False) -> Callable[[Kernel], Kernel]:
    """Decorator binding a kernel to a graph op name (one lowering per op)."""

    def decorate(kernel: Kernel) -> Kernel:
        if name in _REGISTRY:
            raise ValueError(f"op {name!r} is already registered")
        _REGISTRY[name] = OpSpec(name=name, kernel=kernel,
                                 multiplier_free=multiplier_free,
                                 elementwise=elementwise)
        return kernel

    return decorate


def get_op(name: str) -> OpSpec:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(f"unknown graph op {name!r} (bundle written by a newer "
                       f"exporter?); registered ops: {supported_ops()}") from None


def has_op(name: str) -> bool:
    return name in _REGISTRY


def supported_ops() -> List[str]:
    """All registered op names, sorted (error messages, tracing diagnostics)."""
    return sorted(_REGISTRY)


def _maybe_relu(out: np.ndarray, node: Node) -> np.ndarray:
    """Apply a fused trailing ReLU when the fusion pass marked this node."""
    if node.attrs.get("fused_relu"):
        return np.maximum(out, 0.0)
    return out


# --------------------------------------------------------------------------- #
# Registered lowerings
# --------------------------------------------------------------------------- #
@register_op("input", multiplier_free=True)
def _input_kernel(inputs, node, ctx):      # pragma: no cover - executor seeds it
    raise RuntimeError("the input placeholder is bound by the executor")


@register_op("constant", multiplier_free=True)
def _constant_kernel(inputs, node, ctx):
    return node.arrays["value"]


@register_op("pecan", multiplier_free=True)   # mode-dependent part is accounted
def _pecan_kernel(inputs, node, ctx):         # via the bundle's LUT modes
    runtime = ctx.runtimes[node.attrs["layer"]]
    return _maybe_relu(runtime(inputs[0]), node)


@register_op("conv")
def _conv_kernel(inputs, node, ctx):
    out = conv2d(inputs[0], node.arrays["weight"], node.arrays.get("bias"),
                 stride=int(node.attrs.get("stride", 1)),
                 padding=int(node.attrs.get("padding", 0)))
    return _maybe_relu(out, node)


@register_op("linear")
def _linear_kernel(inputs, node, ctx):
    out = linear(inputs[0], node.arrays["weight"], node.arrays.get("bias"))
    return _maybe_relu(out, node)


@register_op("batchnorm", elementwise=True)
def _batchnorm_kernel(inputs, node, ctx):
    out = batch_norm(inputs[0], node.arrays["mean"], node.arrays["var"],
                     node.arrays["gamma"], node.arrays["beta"],
                     eps=float(node.attrs["eps"]))
    return _maybe_relu(out, node)


@register_op("relu", multiplier_free=True, elementwise=True)
def _relu_kernel(inputs, node, ctx):
    return relu(inputs[0])


@register_op("gelu", elementwise=True)
def _gelu_kernel(inputs, node, ctx):
    return gelu(inputs[0])


@register_op("maxpool", multiplier_free=True)
def _maxpool_kernel(inputs, node, ctx):
    return max_pool2d(inputs[0], int(node.attrs["kernel_size"]),
                      int(node.attrs["stride"]))


@register_op("avgpool")
def _avgpool_kernel(inputs, node, ctx):
    return avg_pool2d(inputs[0], int(node.attrs["kernel_size"]),
                      int(node.attrs["stride"]))


@register_op("global_avgpool")
def _global_avgpool_kernel(inputs, node, ctx):
    return global_avg_pool2d(inputs[0])


@register_op("flatten", multiplier_free=True)
def _flatten_kernel(inputs, node, ctx):
    return flatten(inputs[0])


@register_op("identity", multiplier_free=True, elementwise=True)
def _identity_kernel(inputs, node, ctx):
    return inputs[0]


@register_op("add", multiplier_free=True, elementwise=True)
def _add_kernel(inputs, node, ctx):
    return _maybe_relu(inputs[0] + inputs[1], node)


@register_op("sub", multiplier_free=True, elementwise=True)
def _sub_kernel(inputs, node, ctx):
    return inputs[0] - inputs[1]


@register_op("mul", elementwise=True)
def _mul_kernel(inputs, node, ctx):
    return inputs[0] * inputs[1]


@register_op("div", elementwise=True)
def _div_kernel(inputs, node, ctx):
    return inputs[0] / inputs[1]


@register_op("neg", multiplier_free=True, elementwise=True)
def _neg_kernel(inputs, node, ctx):
    return -inputs[0]


@register_op("getitem", multiplier_free=True)
def _getitem_kernel(inputs, node, ctx):
    return inputs[0][decode_index(node.attrs["index"])]


@register_op("concat", multiplier_free=True)
def _concat_kernel(inputs, node, ctx):
    return concat(inputs, axis=int(node.attrs.get("axis", 0)))
