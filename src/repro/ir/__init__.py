"""``repro.ir`` — the graph intermediate representation for inference programs.

Every forward-pass front end of this repository (the model-backed
:class:`~repro.cam.inference.CAMInferenceEngine`, the bundle-backed
:class:`~repro.serve.engine.BundleEngine`) compiles to the same small typed
DAG and executes through the same registry of op lowerings:

* :mod:`repro.ir.graph` — :class:`Node` / :class:`Graph`, topological
  scheduling, manifest (de)serialization, v2 linear-program lifting;
* :mod:`repro.ir.ops` — the unified op registry: exactly one NumPy lowering
  per op (conv, linear, batch-norm, activations, pooling, joins);
* :mod:`repro.ir.executor` — :class:`GraphExecutor`, schedule + liveness;
* :mod:`repro.ir.passes` — optimization passes (BN folding, ReLU fusion,
  dead-node elimination) with exact/approximate labelling;
* :mod:`repro.ir.trace` — tape-based DAG tracing of live models (imports the
  training stack; the only submodule that does).

Re-exports resolve lazily (PEP 562) so deployment-side imports
(``graph``/``ops``/``executor``/``passes``) never pull in autograd.
"""

import importlib

#: Lazily resolved re-exports: attribute name -> providing submodule.
_EXPORTS = {
    "Graph": "repro.ir.graph",
    "GraphError": "repro.ir.graph",
    "Node": "repro.ir.graph",
    "lift_linear_program": "repro.ir.graph",
    "encode_index": "repro.ir.graph",
    "decode_index": "repro.ir.graph",
    "OpSpec": "repro.ir.ops",
    "register_op": "repro.ir.ops",
    "get_op": "repro.ir.ops",
    "supported_ops": "repro.ir.ops",
    "GraphExecutor": "repro.ir.executor",
    "optimize_graph": "repro.ir.passes",
    "available_passes": "repro.ir.passes",
    "DEFAULT_PASSES": "repro.ir.passes",
    "trace_graph": "repro.ir.trace",
    "GraphTraceError": "repro.ir.trace",
    "supported_leaf_modules": "repro.ir.trace",
}

__all__ = list(_EXPORTS)


def __getattr__(name):
    try:
        module_name = _EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    value = getattr(importlib.import_module(module_name), name)
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))
