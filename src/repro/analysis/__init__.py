"""Analysis utilities: prototype usage (Fig. 6), visualization (Fig. 5),
sign-gradient curves (Fig. 3) and ablation sweeps (Fig. 4, Table 6)."""

from repro.analysis.prototype_usage import (
    PrototypeUsageReport,
    collect_prototype_usage,
    usage_matrix,
    prunable_fraction,
)
from repro.analysis.visualization import (
    FeatureVisualization,
    visualize_layer_quantization,
    ascii_heatmap,
)
from repro.analysis.sign_gradient import sign_gradient_curves, SignGradientCurve
from repro.analysis.ablation import prototype_dimension_sweep, DimensionSweepResult

__all__ = [
    "PrototypeUsageReport",
    "collect_prototype_usage",
    "usage_matrix",
    "prunable_fraction",
    "FeatureVisualization",
    "visualize_layer_quantization",
    "ascii_heatmap",
    "sign_gradient_curves",
    "SignGradientCurve",
    "prototype_dimension_sweep",
    "DimensionSweepResult",
]
