"""Feature / codebook visualization (Fig. 5 of the paper).

Fig. 5 shows, for each convolution layer of VGG-Small, three matrices: the
im2col-flattened input features, their PECAN-D reconstruction (every column
replaced by its closest prototype) and the codebook itself.  Since this
environment has no plotting backend, the visualization is returned as raw
arrays plus an ASCII heat-map renderer so examples and benches can still
display the qualitative result (quantized features preserving the feature
patterns).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.autograd.tensor import Tensor, no_grad
from repro.nn.module import Module
from repro.pecan.convert import pecan_layers
from repro.pecan.layers import PECANConv2d


@dataclass
class FeatureVisualization:
    """The three matrices of one Fig. 5 panel (for one layer, one channel group)."""

    layer_name: str
    features: np.ndarray          # (d, HoutWout) flattened input subvectors
    quantized: np.ndarray         # (d, HoutWout) prototype reconstruction
    codebook: np.ndarray          # (d, p) prototypes of the visualized group

    @property
    def reconstruction_error(self) -> float:
        """Mean absolute reconstruction error of the quantized features."""
        return float(np.abs(self.features - self.quantized).mean())

    @property
    def feature_scale(self) -> float:
        """Mean absolute magnitude of the original features (for relative error)."""
        return float(np.abs(self.features).mean())

    @property
    def relative_error(self) -> float:
        scale = self.feature_scale
        return self.reconstruction_error / scale if scale > 0 else 0.0


def visualize_layer_quantization(model: Module, inputs: np.ndarray, group: int = 0,
                                 max_layers: Optional[int] = None,
                                 max_positions: int = 256) -> List[FeatureVisualization]:
    """Produce the Fig. 5 matrices for every PECAN convolution layer of ``model``.

    ``inputs`` is a small batch of images; the first sample drives the
    visualization.  ``group`` selects which codebook group (the paper plots
    the first channel, i.e. group 0).
    """
    conv_layers = [(name, layer) for name, layer in pecan_layers(model)
                   if isinstance(layer, PECANConv2d)]
    if max_layers is not None:
        conv_layers = conv_layers[:max_layers]

    captured: Dict[str, FeatureVisualization] = {}
    originals = {}

    def wrap(name: str, layer: PECANConv2d):
        original = layer.forward

        def traced(x, _layer=layer, _name=name, _original=original):
            cols = _layer.unfold_input(x)
            grouped = _layer.group_columns(cols)
            assignment = _layer.codebook.assign(grouped, _layer.config,
                                                sharpness=_layer.sharpness)
            quantized = _layer.codebook.reconstruct(assignment)
            g = min(group, _layer.num_groups - 1)
            captured[_name] = FeatureVisualization(
                layer_name=_name,
                features=np.asarray(grouped.data[0, g, :, :max_positions]).copy(),
                quantized=np.asarray(quantized.data[0, g, :, :max_positions]).copy(),
                codebook=np.asarray(_layer.codebook.prototypes.data[g]).copy(),
            )
            return _original(x)

        return original, traced

    for name, layer in conv_layers:
        original, traced = wrap(name, layer)
        originals[name] = (layer, original)
        layer.forward = traced

    was_training = model.training
    model.eval()
    try:
        with no_grad():
            model(Tensor(np.asarray(inputs)[:1]))
    finally:
        model.train(was_training)
        for name, (layer, original) in originals.items():
            layer.forward = original

    return [captured[name] for name, _ in conv_layers if name in captured]


def ascii_heatmap(matrix: np.ndarray, width: int = 64, height: int = 12,
                  charset: str = " .:-=+*#%@") -> str:
    """Render a matrix as an ASCII heat map (rows × columns downsampled).

    Used by the example scripts to show the Fig. 5 panels in a terminal.
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.size == 0:
        return ""
    rows = min(height, matrix.shape[0])
    cols = min(width, matrix.shape[1])
    row_idx = np.linspace(0, matrix.shape[0] - 1, rows).astype(int)
    col_idx = np.linspace(0, matrix.shape[1] - 1, cols).astype(int)
    sampled = matrix[np.ix_(row_idx, col_idx)]
    lo, hi = sampled.min(), sampled.max()
    span = hi - lo if hi > lo else 1.0
    normalized = (sampled - lo) / span
    levels = (normalized * (len(charset) - 1)).round().astype(int)
    return "\n".join("".join(charset[v] for v in row) for row in levels)
