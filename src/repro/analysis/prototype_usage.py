"""Prototype call-frequency analysis (Section 5 / Fig. 6).

The paper observes that after training PECAN-D, only a fraction of the
prototypes of each codebook are ever selected at inference time (26 of 64 in
the second convolution of ResNet-20), so the unused prototypes and their
lookup-table entries can be pruned without any accuracy change.  This module
collects those usage statistics by running the CAM inference engine over a
dataset and exposes the matrix plotted in Fig. 6 plus aggregate pruning
numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.cam.inference import CAMInferenceEngine
from repro.nn.module import Module


@dataclass
class LayerUsage:
    """Usage histogram of one PECAN layer."""

    name: str
    counts: np.ndarray          # (D, p) selection counts

    @property
    def num_groups(self) -> int:
        return self.counts.shape[0]

    @property
    def num_prototypes(self) -> int:
        return self.counts.shape[1]

    @property
    def used(self) -> int:
        return int((self.counts > 0).sum())

    @property
    def total(self) -> int:
        return int(self.counts.size)

    @property
    def dead(self) -> int:
        return self.total - self.used

    def used_in_group(self, group: int = 0) -> int:
        """Number of live prototypes in one group (the Fig. 6 per-layer count)."""
        return int((self.counts[group] > 0).sum())


@dataclass
class PrototypeUsageReport:
    """Usage statistics for every PECAN layer of a model."""

    layers: List[LayerUsage] = field(default_factory=list)

    def layer(self, name: str) -> LayerUsage:
        for layer in self.layers:
            if layer.name == name:
                return layer
        raise KeyError(f"no usage record for layer {name!r}")

    @property
    def total_prototypes(self) -> int:
        return sum(layer.total for layer in self.layers)

    @property
    def dead_prototypes(self) -> int:
        return sum(layer.dead for layer in self.layers)

    def prunable_fraction(self) -> float:
        """Fraction of (group, prototype) slots never used — prunable for free."""
        total = self.total_prototypes
        return self.dead_prototypes / total if total else 0.0


def collect_prototype_usage(model: Module, inputs: np.ndarray,
                            batch_size: int = 64) -> PrototypeUsageReport:
    """Run CAM inference over ``inputs`` and collect per-layer usage histograms."""
    engine = CAMInferenceEngine(model)
    inputs = np.asarray(inputs)
    for start in range(0, inputs.shape[0], batch_size):
        engine.predict(inputs[start:start + batch_size])
    usage = engine.prototype_usage()
    return PrototypeUsageReport(layers=[LayerUsage(name=name, counts=counts)
                                        for name, counts in usage.items()])


def usage_matrix(report: PrototypeUsageReport, group: int = 0,
                 layer_names: Optional[Sequence[str]] = None) -> np.ndarray:
    """The Fig. 6 matrix: rows = layers, columns = prototype indices.

    Each entry is the call count of that prototype in the chosen codebook
    group; zero entries correspond to the white (prunable) cells of Fig. 6.
    Layers with fewer prototypes than the widest layer are zero-padded.
    """
    layers = report.layers if layer_names is None else [report.layer(n) for n in layer_names]
    if not layers:
        return np.zeros((0, 0), dtype=np.int64)
    width = max(layer.num_prototypes for layer in layers)
    matrix = np.zeros((len(layers), width), dtype=np.int64)
    for row, layer in enumerate(layers):
        counts = layer.counts[min(group, layer.num_groups - 1)]
        matrix[row, :counts.shape[0]] = counts
    return matrix


def prunable_fraction(model: Module, inputs: np.ndarray) -> float:
    """Convenience wrapper: fraction of prototypes never used on ``inputs``."""
    return collect_prototype_usage(model, inputs).prunable_fraction()
