"""Ablation sweeps: the prototype-dimension study of Fig. 4.

The paper varies the subvector dimension of ResNet-20 on CIFAR-10 between
``k``, ``k²`` (the default) and ``cin`` for both PECAN variants and observes
that PECAN-A is robust to the choice while PECAN-D degrades as the dimension
grows (coarser quantization).  :func:`prototype_dimension_sweep` reruns that
sweep at a configurable scale using the experiment runner.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import ExperimentResult, run_experiment
from repro.models.registry import MODEL_REGISTRY
from repro.pecan.config import PECANMode
from repro.pecan.convert import convert_to_pecan


@dataclass
class DimensionSweepPoint:
    """One (mode, dimension) accuracy measurement of the Fig. 4 bar chart."""

    mode: str                   # "angle" or "distance"
    dimension_label: str        # "k", "k2" or "cin"
    subvector_dim_example: int  # the concrete d used for the first conv layer
    accuracy: float
    additions: int
    multiplications: int


@dataclass
class DimensionSweepResult:
    """All measurements of one prototype-dimension sweep."""

    points: List[DimensionSweepPoint] = field(default_factory=list)

    def accuracy(self, mode: str, dimension_label: str) -> float:
        for point in self.points:
            if point.mode == mode and point.dimension_label == dimension_label:
                return point.accuracy
        raise KeyError(f"no sweep point for mode={mode}, dimension={dimension_label}")

    def accuracies_by_mode(self, mode: str) -> Dict[str, float]:
        return {p.dimension_label: p.accuracy for p in self.points if p.mode == mode}


def _dimension_for_label(label: str, kernel_size: int, in_channels: int) -> int:
    if label == "k":
        return kernel_size
    if label == "k2":
        return kernel_size * kernel_size
    if label == "cin":
        return in_channels
    raise ValueError(f"unknown dimension label {label!r} (use 'k', 'k2' or 'cin')")


def prototype_dimension_sweep(base_config: ExperimentConfig,
                              dimension_labels: Sequence[str] = ("k", "k2", "cin"),
                              modes: Sequence[str] = ("angle", "distance"),
                              num_prototypes: Optional[Dict[str, int]] = None,
                              verbose: bool = False) -> DimensionSweepResult:
    """Run the Fig. 4 sweep: accuracy vs subvector dimension for both modes.

    ``base_config.arch`` must name a *baseline* architecture (no ``_pecan``
    suffix); each sweep point converts it with a uniform per-layer config whose
    subvector dimension follows the label (``d = k``, ``k²`` or ``cin`` —
    resolved per layer relative to its kernel size / input channels).
    """
    if base_config.arch.endswith(("_pecan_a", "_pecan_d")):
        raise ValueError("prototype_dimension_sweep expects a baseline architecture name")
    num_prototypes = num_prototypes or {"angle": 8, "distance": 64}
    result = DimensionSweepResult()

    for mode in modes:
        mode_enum = PECANMode.parse(mode)
        for label in dimension_labels:
            config = replace(base_config, model_kwargs=dict(base_config.model_kwargs))
            config.model_kwargs["pecan_override"] = {
                "mode": mode_enum.value,
                "dimension_label": label,
                "num_prototypes": num_prototypes[mode_enum.value],
            }
            point_result = _run_sweep_point(config, verbose=verbose)
            kernel_size = 3
            in_channels = point_result.extra.get("first_conv_in_channels", 3)
            result.points.append(DimensionSweepPoint(
                mode=mode_enum.value,
                dimension_label=label,
                subvector_dim_example=_dimension_for_label(label, kernel_size, int(in_channels)),
                accuracy=point_result.accuracy,
                additions=point_result.additions,
                multiplications=point_result.multiplications,
            ))
    return result


def _run_sweep_point(config: ExperimentConfig, verbose: bool = False) -> ExperimentResult:
    """Run one sweep point by converting the baseline with a per-label config."""
    override = config.model_kwargs.pop("pecan_override")
    mode = PECANMode.parse(override["mode"])
    label = override["dimension_label"]
    p = override["num_prototypes"]

    def provider(index, module):
        from repro.nn.layers import Linear
        from repro.models.pq_settings import adapt_subvector_dim
        from repro.pecan.config import PQLayerConfig

        if isinstance(module, Linear):
            d = adapt_subvector_dim(16, module.in_features)
        else:
            desired = _dimension_for_label(label, module.kernel_size, module.in_channels)
            d = adapt_subvector_dim(desired, module.in_channels * module.kernel_size ** 2)
        temperature = 1.0 if mode is PECANMode.ANGLE else 0.5
        return PQLayerConfig(num_prototypes=p, subvector_dim=d, mode=mode,
                             temperature=temperature)

    # Run the standard experiment on the baseline arch, then hand-convert.
    # To reuse the runner end to end we register a transient converted builder.
    base_builder = MODEL_REGISTRY[config.arch]
    transient_name = f"{config.arch}__sweep"

    def converted_builder(**kwargs):
        import inspect

        signature = inspect.signature(base_builder)
        accepted = {k: v for k, v in kwargs.items() if k in signature.parameters}
        base = base_builder(**accepted)
        return convert_to_pecan(base, provider, rng=np.random.default_rng(config.seed))

    MODEL_REGISTRY[transient_name] = converted_builder
    try:
        result = run_experiment(config.with_arch(transient_name), verbose=verbose)
    finally:
        MODEL_REGISTRY.pop(transient_name, None)

    first_conv = next((m for m in result.model.modules()
                       if hasattr(m, "in_channels") and hasattr(m, "kernel_size")), None)
    if first_conv is not None:
        result.extra["first_conv_in_channels"] = first_conv.in_channels
    return result
