"""Sign-gradient approximation curves (Eq. 6 / Fig. 3 of the paper).

Fig. 3 plots ``tanh(a·x)`` with ``a = exp(4·e/E)`` for several values of the
training progress ratio ``e/E``: early in training the surrogate gradient is
smooth, late in training it approaches the sign function.  This module
generates those curves as arrays so the corresponding bench can regenerate the
figure's data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.pecan.similarity import sign_gradient_scale, sign_surrogate


@dataclass
class SignGradientCurve:
    """One curve of Fig. 3: the surrogate ``tanh(a·x)`` at a given ``e/E``."""

    progress: float             # e / E
    sharpness: float            # a = exp(4 e / E)
    x: np.ndarray
    y: np.ndarray

    @property
    def max_deviation_from_sign(self) -> float:
        """Maximum |tanh(a·x) − sgn(x)| over the sampled domain (excluding 0)."""
        sign = np.sign(self.x)
        mask = self.x != 0
        return float(np.abs(self.y[mask] - sign[mask]).max())


def sign_gradient_curves(progress_ratios: Sequence[float] = (0.03, 0.2, 0.4, 0.6, 0.8, 1.0),
                         x_range: float = 3.0, num_points: int = 601) -> List[SignGradientCurve]:
    """Generate the Fig. 3 family of curves.

    Parameters
    ----------
    progress_ratios:
        Values of ``e/E`` to plot (the paper shows a handful spanning 0 → 1).
    x_range / num_points:
        Sampling of the horizontal axis ``x ∈ [−x_range, x_range]``.
    """
    x = np.linspace(-x_range, x_range, num_points)
    curves = []
    for ratio in progress_ratios:
        sharpness = sign_gradient_scale(int(round(ratio * 1000)), 1000)
        curves.append(SignGradientCurve(progress=float(ratio), sharpness=sharpness,
                                        x=x, y=sign_surrogate(x, sharpness)))
    return curves
