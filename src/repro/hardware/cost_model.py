"""Latency and power cost model (Section 4.3 / Table 5 of the paper).

The paper grounds its hardware argument in the Intel VIA Nano 2000 CPU used by
the AdderNet paper: a floating-point multiplication takes 4 cycles and an
addition 2 cycles, while the energy of a 32-bit multiplier is 4× that of an
adder.  Given a model's addition/multiplication counts this module computes

* latency in cycles  — ``4·#Mul + 2·#Add``,
* energy in adder-equivalent units — ``4·#Mul + 1·#Add``,
* normalized power — energy divided by the smallest entry of a comparison set
  (the paper normalizes against PECAN-D, whose value is 1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping

from repro.hardware.opcount import OpCount, format_count


@dataclass(frozen=True)
class HardwareCostModel:
    """Per-operation latency (cycles) and energy (adder = 1) constants."""

    multiply_cycles: int = 4
    add_cycles: int = 2
    multiply_energy: float = 4.0
    add_energy: float = 1.0
    name: str = "generic"

    def latency_cycles(self, ops: OpCount) -> int:
        """Total latency in cycles for the given operation counts."""
        return self.multiply_cycles * ops.multiplications + self.add_cycles * ops.additions

    def energy_units(self, ops: OpCount) -> float:
        """Total energy in adder-equivalent units."""
        return self.multiply_energy * ops.multiplications + self.add_energy * ops.additions


#: The Intel VIA Nano 2000 constants quoted by the paper (Section 4.3).
VIA_NANO = HardwareCostModel(multiply_cycles=4, add_cycles=2,
                             multiply_energy=4.0, add_energy=1.0, name="via_nano_2000")


def latency_cycles(ops: OpCount, model: HardwareCostModel = VIA_NANO) -> int:
    """Latency in cycles under ``model`` (default: VIA Nano constants)."""
    return model.latency_cycles(ops)


def energy_units(ops: OpCount, model: HardwareCostModel = VIA_NANO) -> float:
    """Energy in adder-equivalent units under ``model``."""
    return model.energy_units(ops)


def normalized_power(entries: Mapping[str, OpCount],
                     model: HardwareCostModel = VIA_NANO,
                     reference: str = "") -> Dict[str, float]:
    """Normalized power column of Table 5.

    Each method's energy is divided by the reference method's energy; by
    default the reference is the entry with the lowest energy (PECAN-D in the
    paper's table, whose normalized power is exactly 1).
    """
    energies = {name: model.energy_units(ops) for name, ops in entries.items()}
    if reference:
        base = energies[reference]
    else:
        base = min(energies.values())
    if base <= 0:
        raise ValueError("reference energy must be positive")
    return {name: energy / base for name, energy in energies.items()}


def comparison_table(entries: Mapping[str, OpCount],
                     accuracies: Mapping[str, float] = None,
                     model: HardwareCostModel = VIA_NANO,
                     reference: str = "") -> List[Dict[str, object]]:
    """Build Table 5-style rows: method, #Mul, #Add, accuracy, power, latency.

    Returns a list of dictionaries (one per method, in input order) with both
    raw numbers and paper-style formatted strings.
    """
    accuracies = accuracies or {}
    power = normalized_power(entries, model=model, reference=reference)
    rows: List[Dict[str, object]] = []
    for name, ops in entries.items():
        cycles = model.latency_cycles(ops)
        rows.append({
            "method": name,
            "multiplications": ops.multiplications,
            "additions": ops.additions,
            "mul_str": format_count(ops.multiplications),
            "add_str": format_count(ops.additions),
            "accuracy": accuracies.get(name),
            "normalized_power": round(power[name], 2),
            "latency_cycles": cycles,
            "latency_str": format_count(cycles),
        })
    return rows
