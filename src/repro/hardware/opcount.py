"""Analytic inference operation counts (Table 1 of the paper).

Closed-form addition / multiplication counts for the baseline CNN layers, the
two PECAN variants and the AdderNet comparator, plus a model-level counter
that walks a network, captures every compute layer's input/output geometry via
a shape-tracing forward pass, and applies the formulas.

The Table 1 formulas (per layer, per input image):

=================  ==========================================  =======================
method             additions                                   multiplications
=================  ==========================================  =======================
baseline CONV      ``cin·Hout·Wout·k²·cout``                    same as additions
baseline FC        ``cin·cout``                                 same as additions
PECAN-A CONV       ``p·D·Hout·Wout·(d + cout)``                 same as additions
PECAN-A FC         ``p·D·(d + cout)``                           same as additions
PECAN-D CONV       ``D·Hout·Wout·(2·p·d + cout)``               0
PECAN-D FC         ``D·(2·p·d + cout)``                         0
AdderNet CONV      ``2·cin·Hout·Wout·k²·cout``                  0
=================  ==========================================  =======================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.autograd.tensor import Tensor, no_grad
from repro.nn.layers import Conv2d, Linear
from repro.nn.module import Module
from repro.pecan.config import PECANMode
from repro.pecan.layers import PECANConv2d, PECANLinear


@dataclass(frozen=True)
class OpCount:
    """Addition / multiplication counts (per inference of one input image)."""

    additions: int
    multiplications: int

    def __add__(self, other: "OpCount") -> "OpCount":
        return OpCount(self.additions + other.additions,
                       self.multiplications + other.multiplications)

    def scaled(self, factor: float) -> "OpCount":
        return OpCount(int(round(self.additions * factor)),
                       int(round(self.multiplications * factor)))

    @property
    def total(self) -> int:
        return self.additions + self.multiplications

    def human(self) -> str:
        """Format counts the way the paper's tables do (K / M / G suffixes)."""
        return f"#Add {format_count(self.additions)}, #Mul {format_count(self.multiplications)}"


def format_count(value: float, unit: Optional[str] = None) -> str:
    """Human-readable operation count (``2.00M``, ``0.61G``, ``248.10K``).

    ``unit`` forces a specific suffix (``"K"``, ``"M"`` or ``"G"``) — the
    paper's tables pick the unit per model family (VGG rows in G, ResNet rows
    in M), so the benches pass it explicitly to match the published strings.
    """
    scales = {"K": 1e3, "M": 1e6, "G": 1e9}
    if unit is not None:
        return f"{value / scales[unit.upper()]:.2f}{unit.upper()}"
    if value >= 1e9:
        return f"{value / 1e9:.2f}G"
    if value >= 1e6:
        return f"{value / 1e6:.2f}M"
    if value >= 1e3:
        return f"{value / 1e3:.2f}K"
    return f"{value:.0f}"


ZERO_OPS = OpCount(0, 0)


# --------------------------------------------------------------------------- #
# Closed-form per-layer counts
# --------------------------------------------------------------------------- #
def conv_baseline_ops(cin: int, cout: int, kernel_size: int, hout: int, wout: int) -> OpCount:
    """Baseline im2col convolution: ``cin·Hout·Wout·k²·cout`` MACs."""
    macs = cin * hout * wout * kernel_size * kernel_size * cout
    return OpCount(additions=macs, multiplications=macs)


def fc_baseline_ops(in_features: int, out_features: int) -> OpCount:
    """Baseline fully-connected layer: ``cin·cout`` MACs."""
    macs = in_features * out_features
    return OpCount(additions=macs, multiplications=macs)


def pecan_conv_ops(mode: PECANMode, p: int, num_groups: int, subvector_dim: int,
                   cout: int, hout: int, wout: int) -> OpCount:
    """PECAN convolution ops per Table 1 (both variants)."""
    mode = PECANMode.parse(mode)
    positions = hout * wout
    if mode is PECANMode.ANGLE:
        count = p * num_groups * positions * (subvector_dim + cout)
        return OpCount(additions=count, multiplications=count)
    additions = num_groups * positions * (2 * p * subvector_dim + cout)
    return OpCount(additions=additions, multiplications=0)


def pecan_fc_ops(mode: PECANMode, p: int, num_groups: int, subvector_dim: int,
                 out_features: int) -> OpCount:
    """PECAN fully-connected ops per Table 1 (an FC layer is a 1×1 CONV)."""
    return pecan_conv_ops(mode, p, num_groups, subvector_dim, out_features, 1, 1)


def addernet_conv_ops(cin: int, cout: int, kernel_size: int, hout: int, wout: int) -> OpCount:
    """AdderNet convolution: the l1 template matching costs two additions per MAC."""
    macs = cin * hout * wout * kernel_size * kernel_size * cout
    return OpCount(additions=2 * macs, multiplications=0)


def addernet_fc_ops(in_features: int, out_features: int) -> OpCount:
    """AdderNet fully-connected layer (l1 matching)."""
    macs = in_features * out_features
    return OpCount(additions=2 * macs, multiplications=0)


def max_prototypes_for_reduction(cout: int, subvector_dim: int, lam: float = 0.5) -> int:
    """Largest ``p`` keeping PECAN-A cheaper than the baseline (Section 3.3).

    The paper's constraint is ``p ≤ min(λ·cout, (1−λ)·d)`` for some
    ``λ ∈ (0, 1)``.
    """
    if not 0.0 < lam < 1.0:
        raise ValueError("lam must lie strictly between 0 and 1")
    return int(min(lam * cout, (1.0 - lam) * subvector_dim))


# --------------------------------------------------------------------------- #
# Model-level counting
# --------------------------------------------------------------------------- #
@dataclass
class LayerOpRecord:
    """One compute layer's geometry and analytic op count."""

    name: str
    kind: str                  # "conv", "fc", "pecan_conv", "pecan_fc"
    ops: OpCount
    output_hw: Tuple[int, int]
    detail: Dict[str, int] = field(default_factory=dict)


@dataclass
class ModelOpReport:
    """Per-layer and aggregate op counts for one model / input geometry."""

    model_name: str
    records: List[LayerOpRecord] = field(default_factory=list)

    @property
    def total(self) -> OpCount:
        total = ZERO_OPS
        for record in self.records:
            total = total + record.ops
        return total

    @property
    def additions(self) -> int:
        return self.total.additions

    @property
    def multiplications(self) -> int:
        return self.total.multiplications

    def as_rows(self) -> List[Tuple[str, str, str, str]]:
        """Rows ``(layer, kind, #Add, #Mul)`` formatted like the paper's tables."""
        return [(r.name, r.kind, format_count(r.ops.additions), format_count(r.ops.multiplications))
                for r in self.records]


def count_layer_ops(module: Module, hout: int, wout: int) -> Optional[LayerOpRecord]:
    """Analytic op count for one layer given its output spatial size."""
    if isinstance(module, PECANConv2d):
        p, d_groups, dim = module.pq_shape()
        ops = pecan_conv_ops(module.config.mode, p, d_groups, dim,
                             module.out_channels, hout, wout)
        return LayerOpRecord("", "pecan_conv", ops, (hout, wout),
                             {"p": p, "D": d_groups, "d": dim, "cout": module.out_channels})
    if isinstance(module, PECANLinear):
        p, d_groups, dim = module.pq_shape()
        ops = pecan_fc_ops(module.config.mode, p, d_groups, dim, module.out_features)
        return LayerOpRecord("", "pecan_fc", ops, (1, 1),
                             {"p": p, "D": d_groups, "d": dim, "cout": module.out_features})
    if isinstance(module, Conv2d):
        ops = conv_baseline_ops(module.in_channels, module.out_channels,
                                module.kernel_size, hout, wout)
        return LayerOpRecord("", "conv", ops, (hout, wout),
                             {"cin": module.in_channels, "cout": module.out_channels,
                              "k": module.kernel_size})
    if isinstance(module, Linear):
        ops = fc_baseline_ops(module.in_features, module.out_features)
        return LayerOpRecord("", "fc", ops, (1, 1),
                             {"cin": module.in_features, "cout": module.out_features})
    return None


def count_model_ops(model: Module, input_shape: Tuple[int, int, int],
                    model_name: str = "", addernet: bool = False) -> ModelOpReport:
    """Trace a forward pass to capture layer geometries and apply Table 1 formulas.

    Parameters
    ----------
    model:
        Any mixture of conventional and PECAN layers.
    input_shape:
        ``(C, H, W)`` of a single input image.
    addernet:
        Count conventional Conv2d/Linear layers with the AdderNet formulas
        instead of the baseline MAC formulas (used for Table 5).
    """
    report = ModelOpReport(model_name=model_name or type(model).__name__)
    compute_layers = [(name, module) for name, module in model.named_modules()
                      if isinstance(module, (Conv2d, Linear, PECANConv2d, PECANLinear))]
    captured: Dict[int, Tuple[int, int]] = {}
    originals = {}

    def wrap(module: Module):
        original = module.forward

        def traced(x, _module=module, _original=original):
            out = _original(x)
            if out.ndim == 4:
                captured[id(_module)] = (out.shape[2], out.shape[3])
            else:
                captured[id(_module)] = (1, 1)
            return out

        return original, traced

    for _, module in compute_layers:
        original, traced = wrap(module)
        originals[id(module)] = original
        module.forward = traced

    was_training = model.training
    model.eval()
    try:
        with no_grad():
            model(Tensor(np.zeros((1,) + tuple(input_shape))))
    finally:
        model.train(was_training)
        for _, module in compute_layers:
            module.forward = originals[id(module)]

    for name, module in compute_layers:
        hout, wout = captured.get(id(module), (1, 1))
        record = count_layer_ops(module, hout, wout)
        if record is None:
            continue
        record.name = name
        if addernet and record.kind == "conv":
            record.ops = addernet_conv_ops(module.in_channels, module.out_channels,
                                           module.kernel_size, hout, wout)
            record.kind = "adder_conv"
        elif addernet and record.kind == "fc":
            record.ops = addernet_fc_ops(module.in_features, module.out_features)
            record.kind = "adder_fc"
        report.records.append(record)
    return report
