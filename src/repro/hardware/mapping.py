"""Mapping PECAN layers onto a fixed-size CAM macro array.

The paper targets platforms "with built-in CAM support" — FPGAs or RRAM
crossbars organised as fixed-geometry CAM macros (a macro stores at most
``rows`` prototypes of at most ``width`` elements).  A deployment question the
paper leaves implicit is how many macros a given PECAN model occupies and how
well it utilizes them; this module answers it:

* each codebook group of each layer is tiled onto one or more macros
  (prototype count over ``rows``, subvector dimension over ``width``),
* the mapper reports per-layer and total macro counts, utilization and the
  number of macro activations per inference (each input subvector activates
  every macro tile of its group once).

The model is deliberately simple (no routing or banking conflicts) but gives
the first-order numbers an architect needs to size a PECAN accelerator.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.cam.lut import LayerLUT, build_model_luts
from repro.nn.module import Module


@dataclass(frozen=True)
class CAMMacroSpec:
    """Geometry of one CAM macro: ``rows`` stored words of ``width`` elements."""

    rows: int = 64
    width: int = 16

    def __post_init__(self):
        if self.rows <= 0 or self.width <= 0:
            raise ValueError("CAM macro rows and width must be positive")

    @property
    def cells(self) -> int:
        return self.rows * self.width


@dataclass
class LayerMapping:
    """How one PECAN layer maps onto the macro array."""

    name: str
    num_groups: int
    prototypes_per_group: int
    subvector_dim: int
    row_tiles: int              # macros needed along the prototype axis (per group)
    column_tiles: int           # macros needed along the dimension axis (per group)
    positions_per_image: int    # HoutWout (1 for FC layers)

    @property
    def macros_per_group(self) -> int:
        return self.row_tiles * self.column_tiles

    @property
    def total_macros(self) -> int:
        return self.num_groups * self.macros_per_group

    def utilization(self, spec: CAMMacroSpec) -> float:
        """Fraction of allocated CAM cells actually holding prototype data."""
        used = self.num_groups * self.prototypes_per_group * self.subvector_dim
        allocated = self.total_macros * spec.cells
        return used / allocated if allocated else 0.0

    def activations_per_image(self) -> int:
        """Macro search activations needed for one input image."""
        return self.positions_per_image * self.total_macros


@dataclass
class ModelMapping:
    """Aggregate mapping report for a whole model."""

    spec: CAMMacroSpec
    layers: List[LayerMapping] = field(default_factory=list)

    @property
    def total_macros(self) -> int:
        return sum(layer.total_macros for layer in self.layers)

    def utilization(self) -> float:
        used = sum(layer.num_groups * layer.prototypes_per_group * layer.subvector_dim
                   for layer in self.layers)
        allocated = self.total_macros * self.spec.cells
        return used / allocated if allocated else 0.0

    def activations_per_image(self) -> int:
        return sum(layer.activations_per_image() for layer in self.layers)

    def layer(self, name: str) -> LayerMapping:
        for layer in self.layers:
            if layer.name == name:
                return layer
        raise KeyError(f"no mapping for layer {name!r}")


def map_layer(lut: LayerLUT, spec: CAMMacroSpec, positions_per_image: int = 1) -> LayerMapping:
    """Tile one layer's codebooks onto macros of the given geometry."""
    row_tiles = math.ceil(lut.num_prototypes / spec.rows)
    column_tiles = math.ceil(lut.subvector_dim / spec.width)
    return LayerMapping(
        name=lut.name,
        num_groups=lut.num_groups,
        prototypes_per_group=lut.num_prototypes,
        subvector_dim=lut.subvector_dim,
        row_tiles=row_tiles,
        column_tiles=column_tiles,
        positions_per_image=positions_per_image,
    )


def map_model(model: Module, input_shape: Tuple[int, int, int],
              spec: CAMMacroSpec = CAMMacroSpec()) -> ModelMapping:
    """Map every PECAN layer of ``model`` onto ``spec``-sized CAM macros.

    ``input_shape`` is ``(C, H, W)`` of one input image and is used to derive
    each convolution layer's number of output positions (the per-image search
    count); FC layers contribute a single position.
    """
    from repro.hardware.opcount import count_model_ops

    luts = build_model_luts(model)
    report = count_model_ops(model, input_shape)
    positions: Dict[str, int] = {}
    for record in report.records:
        hout, wout = record.output_hw
        positions[record.name] = hout * wout

    mapping = ModelMapping(spec=spec)
    for name, lut in luts.items():
        mapping.layers.append(map_layer(lut, spec, positions_per_image=positions.get(name, 1)))
    return mapping
