"""Hardware cost models: analytic op counts (Table 1) and power/latency (Table 5)."""

from repro.hardware.opcount import (
    OpCount,
    conv_baseline_ops,
    fc_baseline_ops,
    pecan_conv_ops,
    pecan_fc_ops,
    addernet_conv_ops,
    addernet_fc_ops,
    max_prototypes_for_reduction,
    count_layer_ops,
    count_model_ops,
    ModelOpReport,
)
from repro.hardware.cost_model import (
    HardwareCostModel,
    VIA_NANO,
    latency_cycles,
    energy_units,
    normalized_power,
    comparison_table,
)
from repro.hardware.mapping import CAMMacroSpec, LayerMapping, ModelMapping, map_layer, map_model

__all__ = [
    "OpCount",
    "conv_baseline_ops",
    "fc_baseline_ops",
    "pecan_conv_ops",
    "pecan_fc_ops",
    "addernet_conv_ops",
    "addernet_fc_ops",
    "max_prototypes_for_reduction",
    "count_layer_ops",
    "count_model_ops",
    "ModelOpReport",
    "HardwareCostModel",
    "VIA_NANO",
    "latency_cycles",
    "energy_units",
    "normalized_power",
    "comparison_table",
    "CAMMacroSpec",
    "LayerMapping",
    "ModelMapping",
    "map_layer",
    "map_model",
]
