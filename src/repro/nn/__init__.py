"""A minimal neural-network module system layered on :mod:`repro.autograd`.

The layout mirrors ``torch.nn`` so the model definitions in
:mod:`repro.models` read like the paper's original PyTorch code.
"""

from repro.nn.module import Module, Parameter, ModuleList
from repro.nn.sequential import Sequential
from repro.nn.layers import (
    Conv2d,
    Linear,
    BatchNorm2d,
    BatchNorm1d,
    ReLU,
    GELU,
    MaxPool2d,
    AvgPool2d,
    GlobalAvgPool2d,
    Flatten,
    Dropout,
    Identity,
)
from repro.nn.losses import CrossEntropyLoss, MSELoss
from repro.nn import init

__all__ = [
    "Module",
    "Parameter",
    "ModuleList",
    "Sequential",
    "Conv2d",
    "Linear",
    "BatchNorm2d",
    "BatchNorm1d",
    "ReLU",
    "GELU",
    "MaxPool2d",
    "AvgPool2d",
    "GlobalAvgPool2d",
    "Flatten",
    "Dropout",
    "Identity",
    "CrossEntropyLoss",
    "MSELoss",
    "init",
]
