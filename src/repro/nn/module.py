"""Base classes for trainable modules: :class:`Parameter`, :class:`Module`.

A :class:`Module` tracks its :class:`Parameter` leaves and child modules so
optimizers can discover every trainable tensor via :meth:`Module.parameters`
and experiments can snapshot / restore weights via ``state_dict`` /
``load_state_dict``.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.autograd.tensor import Tensor


class Parameter(Tensor):
    """A tensor registered as a trainable leaf of a module."""

    def __init__(self, data, requires_grad: bool = True, name: str = ""):
        super().__init__(np.asarray(data, dtype=np.float64), requires_grad=requires_grad, name=name)


class Module:
    """Base class for all layers and models.

    Subclasses implement :meth:`forward`; calling the module invokes it.
    Attribute assignment automatically registers parameters, buffers are
    registered explicitly via :meth:`register_buffer`.
    """

    def __init__(self):
        self._parameters: "OrderedDict[str, Parameter]" = OrderedDict()
        self._modules: "OrderedDict[str, Module]" = OrderedDict()
        self._buffers: "OrderedDict[str, np.ndarray]" = OrderedDict()
        self.training = True

    # ------------------------------------------------------------------ #
    # Registration machinery
    # ------------------------------------------------------------------ #
    def __setattr__(self, name, value):
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", OrderedDict())[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", OrderedDict())[name] = value
        object.__setattr__(self, name, value)

    def register_buffer(self, name: str, value: np.ndarray) -> None:
        """Register a non-trainable persistent array (e.g. BN running stats)."""
        self._buffers[name] = value
        object.__setattr__(self, name, value)

    def add_module(self, name: str, module: "Module") -> None:
        self._modules[name] = module
        object.__setattr__(self, name, module)

    # ------------------------------------------------------------------ #
    # Traversal
    # ------------------------------------------------------------------ #
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield (prefix + name, param)
        for mod_name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{mod_name}.")

    def parameters(self) -> List[Parameter]:
        return [p for _, p in self.named_parameters()]

    def named_modules(self, prefix: str = "") -> Iterator[Tuple[str, "Module"]]:
        yield prefix.rstrip("."), self
        for name, module in self._modules.items():
            yield from module.named_modules(prefix=f"{prefix}{name}.")

    def modules(self) -> Iterator["Module"]:
        for _, module in self.named_modules():
            yield module

    def children(self) -> Iterator["Module"]:
        return iter(self._modules.values())

    def named_buffers(self, prefix: str = "") -> Iterator[Tuple[str, np.ndarray]]:
        for name, buf in self._buffers.items():
            yield (prefix + name, buf)
        for mod_name, module in self._modules.items():
            yield from module.named_buffers(prefix=f"{prefix}{mod_name}.")

    # ------------------------------------------------------------------ #
    # Train / eval and gradient helpers
    # ------------------------------------------------------------------ #
    def train(self, mode: bool = True) -> "Module":
        self.training = mode
        for module in self._modules.values():
            module.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.grad = None

    def freeze(self) -> "Module":
        """Disable gradients for every parameter of this module (recursively)."""
        for param in self.parameters():
            param.requires_grad = False
        return self

    def unfreeze(self) -> "Module":
        """Re-enable gradients for every parameter of this module."""
        for param in self.parameters():
            param.requires_grad = True
        return self

    def num_parameters(self, trainable_only: bool = False) -> int:
        """Total number of scalar parameters."""
        return sum(p.size for p in self.parameters() if not trainable_only or p.requires_grad)

    # ------------------------------------------------------------------ #
    # State (de)serialization
    # ------------------------------------------------------------------ #
    def state_dict(self) -> Dict[str, np.ndarray]:
        state: Dict[str, np.ndarray] = {}
        for name, param in self.named_parameters():
            state[name] = param.data.copy()
        for name, buf in self.named_buffers():
            state["buffer:" + name] = np.array(buf, copy=True)
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray], strict: bool = True) -> None:
        params = dict(self.named_parameters())
        buffers = dict(self.named_buffers())
        for key, value in state.items():
            if key.startswith("buffer:"):
                name = key[len("buffer:"):]
                if name in buffers:
                    if buffers[name].shape != np.shape(value):
                        raise ValueError(f"buffer {name!r} shape mismatch: "
                                         f"{buffers[name].shape} vs {np.shape(value)}")
                    buffers[name][...] = value
                elif strict:
                    raise KeyError(f"unknown buffer {name!r}")
            elif key in params:
                if params[key].data.shape != np.shape(value):
                    raise ValueError(f"parameter {key!r} shape mismatch: "
                                     f"{params[key].data.shape} vs {np.shape(value)}")
                params[key].data = np.array(value, copy=True)
            elif strict:
                raise KeyError(f"unknown parameter {key!r}")
        if strict:
            missing = set(params) - {k for k in state if not k.startswith("buffer:")}
            if missing:
                raise KeyError(f"missing parameters in state dict: {sorted(missing)}")

    # ------------------------------------------------------------------ #
    # Forward plumbing
    # ------------------------------------------------------------------ #
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def extra_repr(self) -> str:
        return ""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        lines = [f"{type(self).__name__}({self.extra_repr()}"]
        for name, module in self._modules.items():
            child = repr(module).replace("\n", "\n  ")
            lines.append(f"  ({name}): {child}")
        lines.append(")")
        return "\n".join(lines) if len(lines) > 2 else lines[0] + ")"


class ModuleList(Module):
    """A list of sub-modules registered in order (mirrors ``nn.ModuleList``)."""

    def __init__(self, modules: Optional[List[Module]] = None):
        super().__init__()
        self._items: List[Module] = []
        for module in modules or []:
            self.append(module)

    def append(self, module: Module) -> "ModuleList":
        self.add_module(str(len(self._items)), module)
        self._items.append(module)
        return self

    def __iter__(self) -> Iterator[Module]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __getitem__(self, index: int) -> Module:
        return self._items[index]

    def forward(self, *args, **kwargs):  # pragma: no cover - container only
        raise RuntimeError("ModuleList is a container and cannot be called")
