"""Sequential container."""

from __future__ import annotations

from typing import Iterator

from repro.autograd.tensor import Tensor
from repro.nn.module import Module


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *modules: Module):
        super().__init__()
        self._layers = []
        for index, module in enumerate(modules):
            self.add_module(str(index), module)
            self._layers.append(module)

    def append(self, module: Module) -> "Sequential":
        self.add_module(str(len(self._layers)), module)
        self._layers.append(module)
        return self

    def __iter__(self) -> Iterator[Module]:
        return iter(self._layers)

    def __len__(self) -> int:
        return len(self._layers)

    def __getitem__(self, index: int) -> Module:
        return self._layers[index]

    def forward(self, x: Tensor) -> Tensor:
        for layer in self._layers:
            x = layer(x)
        return x
