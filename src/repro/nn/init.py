"""Weight initialization schemes (Kaiming / Xavier / uniform / constant).

All initializers mutate the parameter's ``data`` in place and accept an
optional ``rng`` so experiments can be made fully deterministic.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.autograd.tensor import Tensor


def _fan_in_out(shape: Tuple[int, ...]) -> Tuple[int, int]:
    """Compute fan-in / fan-out for dense (out, in) or conv (out, in, k, k) shapes."""
    if len(shape) == 2:
        fan_out, fan_in = shape
    elif len(shape) == 4:
        receptive = shape[2] * shape[3]
        fan_in = shape[1] * receptive
        fan_out = shape[0] * receptive
    elif len(shape) == 1:
        fan_in = fan_out = shape[0]
    else:
        fan_in = fan_out = int(np.prod(shape[1:])) if len(shape) > 1 else shape[0]
    return fan_in, fan_out


def kaiming_normal_(tensor: Tensor, rng: Optional[np.random.Generator] = None,
                    nonlinearity: str = "relu") -> Tensor:
    """He-normal initialization (``std = gain / sqrt(fan_in)``)."""
    gen = rng if rng is not None else np.random.default_rng()
    fan_in, _ = _fan_in_out(tensor.shape)
    gain = np.sqrt(2.0) if nonlinearity == "relu" else 1.0
    std = gain / np.sqrt(max(fan_in, 1))
    tensor.data = gen.standard_normal(tensor.shape) * std
    return tensor


def kaiming_uniform_(tensor: Tensor, rng: Optional[np.random.Generator] = None,
                     nonlinearity: str = "relu") -> Tensor:
    """He-uniform initialization."""
    gen = rng if rng is not None else np.random.default_rng()
    fan_in, _ = _fan_in_out(tensor.shape)
    gain = np.sqrt(2.0) if nonlinearity == "relu" else 1.0
    bound = gain * np.sqrt(3.0 / max(fan_in, 1))
    tensor.data = gen.uniform(-bound, bound, size=tensor.shape)
    return tensor


def xavier_normal_(tensor: Tensor, rng: Optional[np.random.Generator] = None) -> Tensor:
    """Glorot-normal initialization."""
    gen = rng if rng is not None else np.random.default_rng()
    fan_in, fan_out = _fan_in_out(tensor.shape)
    std = np.sqrt(2.0 / max(fan_in + fan_out, 1))
    tensor.data = gen.standard_normal(tensor.shape) * std
    return tensor


def xavier_uniform_(tensor: Tensor, rng: Optional[np.random.Generator] = None) -> Tensor:
    """Glorot-uniform initialization."""
    gen = rng if rng is not None else np.random.default_rng()
    fan_in, fan_out = _fan_in_out(tensor.shape)
    bound = np.sqrt(6.0 / max(fan_in + fan_out, 1))
    tensor.data = gen.uniform(-bound, bound, size=tensor.shape)
    return tensor


def uniform_(tensor: Tensor, low: float = 0.0, high: float = 1.0,
             rng: Optional[np.random.Generator] = None) -> Tensor:
    """Uniform initialization in ``[low, high)``."""
    gen = rng if rng is not None else np.random.default_rng()
    tensor.data = gen.uniform(low, high, size=tensor.shape)
    return tensor


def normal_(tensor: Tensor, mean: float = 0.0, std: float = 1.0,
            rng: Optional[np.random.Generator] = None) -> Tensor:
    """Gaussian initialization."""
    gen = rng if rng is not None else np.random.default_rng()
    tensor.data = gen.normal(mean, std, size=tensor.shape)
    return tensor


def constant_(tensor: Tensor, value: float) -> Tensor:
    """Fill with a constant value."""
    tensor.data = np.full(tensor.shape, float(value))
    return tensor


def zeros_(tensor: Tensor) -> Tensor:
    """Fill with zeros."""
    return constant_(tensor, 0.0)


def ones_(tensor: Tensor) -> Tensor:
    """Fill with ones."""
    return constant_(tensor, 1.0)
