"""Loss modules wrapping the functional implementations."""

from __future__ import annotations

import numpy as np

from repro.autograd import functional as F
from repro.autograd.tensor import Tensor
from repro.nn.module import Module


class CrossEntropyLoss(Module):
    """Mean cross-entropy over a batch of logits and integer class labels."""

    def __init__(self, label_smoothing: float = 0.0):
        super().__init__()
        self.label_smoothing = label_smoothing

    def forward(self, logits: Tensor, targets: np.ndarray) -> Tensor:
        return F.cross_entropy(logits, targets, label_smoothing=self.label_smoothing)


class MSELoss(Module):
    """Mean squared error between two tensors."""

    def forward(self, prediction: Tensor, target: Tensor) -> Tensor:
        return F.mse_loss(prediction, target)
