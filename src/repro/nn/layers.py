"""Standard neural-network layers used by the baseline models.

These are the conventional counterparts that PECAN replaces: ``Conv2d`` and
``Linear`` perform the classical multiply-accumulate filtering which the
PECAN layers in :mod:`repro.pecan` substitute with prototype matching and
table lookup.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.autograd import functional as F
from repro.autograd.tensor import Tensor
from repro.nn import init
from repro.nn.module import Module, Parameter


class Conv2d(Module):
    """2-D convolution layer (square kernels only, as in the paper's models)."""

    def __init__(self, in_channels: int, out_channels: int, kernel_size: int,
                 stride: int = 1, padding: int = 0, bias: bool = True,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self.weight = Parameter(np.empty((out_channels, in_channels, kernel_size, kernel_size)))
        init.kaiming_normal_(self.weight, rng=rng)
        if bias:
            self.bias: Optional[Parameter] = Parameter(np.zeros(out_channels))
        else:
            self.bias = None

    def forward(self, x: Tensor) -> Tensor:
        return F.conv2d(x, self.weight, self.bias, stride=self.stride, padding=self.padding)

    def output_spatial(self, h: int, w: int):
        """Spatial size of the output feature map for an ``h×w`` input."""
        from repro.autograd.im2col import conv_output_size
        return (conv_output_size(h, self.kernel_size, self.stride, self.padding),
                conv_output_size(w, self.kernel_size, self.stride, self.padding))

    def extra_repr(self) -> str:
        return (f"{self.in_channels}, {self.out_channels}, kernel_size={self.kernel_size}, "
                f"stride={self.stride}, padding={self.padding}")


class Linear(Module):
    """Fully connected layer ``y = x Wᵀ + b``."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(np.empty((out_features, in_features)))
        init.kaiming_uniform_(self.weight, rng=rng)
        if bias:
            self.bias: Optional[Parameter] = Parameter(np.zeros(out_features))
        else:
            self.bias = None

    def forward(self, x: Tensor) -> Tensor:
        return F.linear(x, self.weight, self.bias)

    def extra_repr(self) -> str:
        return f"{self.in_features}, {self.out_features}"


class BatchNorm2d(Module):
    """Batch normalization over channel dimension of ``(N, C, H, W)`` tensors.

    The paper folds batch normalization into the convolution at inference time
    (Section 4.2), which :func:`repro.pecan.convert.fold_batchnorm` implements.
    """

    def __init__(self, num_features: int, eps: float = 1e-5, momentum: float = 0.1):
        super().__init__()
        self.num_features = num_features
        self.eps = eps
        self.momentum = momentum
        self.weight = Parameter(np.ones(num_features))
        self.bias = Parameter(np.zeros(num_features))
        self.register_buffer("running_mean", np.zeros(num_features))
        self.register_buffer("running_var", np.ones(num_features))

    def forward(self, x: Tensor) -> Tensor:
        return F.batch_norm(x, self.weight, self.bias, self.running_mean, self.running_var,
                            training=self.training, momentum=self.momentum, eps=self.eps)

    def extra_repr(self) -> str:
        return f"{self.num_features}, eps={self.eps}, momentum={self.momentum}"


class BatchNorm1d(BatchNorm2d):
    """Batch normalization for ``(N, C)`` feature tensors."""


class ReLU(Module):
    """Rectified linear activation."""

    def forward(self, x: Tensor) -> Tensor:
        return F.relu(x)


class GELU(Module):
    """Gaussian error linear unit (used by the ConvMixer variant)."""

    def forward(self, x: Tensor) -> Tensor:
        return F.gelu(x)


class MaxPool2d(Module):
    """Max pooling with a square window."""

    def __init__(self, kernel_size: int, stride: Optional[int] = None):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride if stride is not None else kernel_size

    def forward(self, x: Tensor) -> Tensor:
        return F.max_pool2d(x, self.kernel_size, self.stride)

    def extra_repr(self) -> str:
        return f"kernel_size={self.kernel_size}, stride={self.stride}"


class AvgPool2d(Module):
    """Average pooling with a square window."""

    def __init__(self, kernel_size: int, stride: Optional[int] = None):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride if stride is not None else kernel_size

    def forward(self, x: Tensor) -> Tensor:
        return F.avg_pool2d(x, self.kernel_size, self.stride)


class GlobalAvgPool2d(Module):
    """Global average pooling: ``(N, C, H, W) -> (N, C)``."""

    def forward(self, x: Tensor) -> Tensor:
        return F.global_avg_pool2d(x)


class Flatten(Module):
    """Flatten every dimension after the batch dimension."""

    def forward(self, x: Tensor) -> Tensor:
        return x.reshape(x.shape[0], -1)


class Dropout(Module):
    """Inverted dropout; identity in eval mode."""

    def __init__(self, p: float = 0.5, rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.p = p
        self._rng = rng if rng is not None else np.random.default_rng()

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.p, training=self.training, rng=self._rng)

    def extra_repr(self) -> str:
        return f"p={self.p}"


class Identity(Module):
    """Pass-through module (useful for optional blocks such as shortcuts)."""

    def forward(self, x: Tensor) -> Tensor:
        return x
