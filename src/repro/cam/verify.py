"""Operation tracing: counting adds/multiplies and proving multiplier-freeness.

The central hardware claim of PECAN-D is that inference uses **zero
multiplications** (Section 3.2 / Table 1).  The counters here are attached to
the CAM inference engine so every arithmetic operation executed on the
Algorithm-1 path is tallied per layer, and :func:`assert_multiplier_free`
turns the claim into an executable check.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.cam.counters import (  # noqa: F401  (re-exported API)
    LayerOpCount,
    MultiplierUsageError,
    OpCounter,
)
from repro.nn.layers import BatchNorm2d, Conv2d, Linear
from repro.nn.module import Module
from repro.pecan.layers import PECANConv2d, PECANLinear


def unconverted_compute_layers(model: Module) -> List[str]:
    """Names of Conv2d / Linear layers that were *not* converted to PECAN.

    A PECAN-D model is only fully multiplier-free if every filtering layer has
    been converted; this helper lists the stragglers (the paper's ConvMixer
    variant deliberately leaves the first conv and last FC unconverted).
    """
    remaining = []
    for name, module in model.named_modules():
        if isinstance(module, (PECANConv2d, PECANLinear)):
            continue
        if isinstance(module, (Conv2d, Linear)):
            remaining.append(name)
    return remaining


def batchnorm_layers(model: Module) -> List[str]:
    """Names of BatchNorm layers (require folding before multiplier-free deployment)."""
    return [name for name, module in model.named_modules() if isinstance(module, BatchNorm2d)]


def trace_inference_ops(model: Module, inputs: np.ndarray,
                        per_sample: bool = True) -> OpCounter:
    """Run LUT inference on ``inputs`` and return the executed operation counts.

    Convenience wrapper around :class:`repro.cam.inference.CAMInferenceEngine`;
    counts are normalized per input sample when ``per_sample`` is True so they
    are directly comparable with the paper's Table 1 / Table A2 numbers.
    """
    from repro.cam.inference import CAMInferenceEngine

    engine = CAMInferenceEngine(model)
    engine.predict(inputs)
    counter = engine.op_counter
    if per_sample and inputs.shape[0] > 1:
        scale = inputs.shape[0]
        for layer in counter.layers.values():
            layer.additions //= scale
            layer.multiplications //= scale
            layer.comparisons //= scale
            layer.lookups //= scale
    return counter


def assert_multiplier_free(model: Module, inputs: np.ndarray, strict: bool = True) -> OpCounter:
    """Verify that LUT inference of ``model`` executes zero multiplications.

    Parameters
    ----------
    strict:
        Also require that no conventional Conv2d/Linear layers remain in the
        model (they would run multiply-accumulate arithmetic outside the CAM
        path).  Batch-norm layers are reported in the error message because
        they must be folded for a truly multiplier-free deployment.

    Raises
    ------
    MultiplierUsageError
        If the traced PECAN path used multiplications, or (in strict mode) the
        model still contains unconverted compute layers.
    """
    counter = trace_inference_ops(model, inputs, per_sample=False)
    problems = []
    if not counter.is_multiplier_free():
        problems.append(f"traced CAM inference executed {counter.multiplications} multiplications")
    if strict:
        leftovers = unconverted_compute_layers(model)
        if leftovers:
            problems.append(f"unconverted multiply-accumulate layers remain: {leftovers}")
        bn = batchnorm_layers(model)
        if bn:
            problems.append(
                "batch-norm layers present (fold them with "
                f"repro.pecan.convert.fold_model_batchnorm before deployment): {bn}")
    if problems:
        raise MultiplierUsageError("; ".join(problems))
    return counter
