"""Autograd-free execution of Algorithm 1 for a single PECAN layer.

:class:`LUTLayerRuntime` is the deployment kernel of the reproduction: given a
:class:`~repro.cam.layer_lut.LayerLUT` (prototypes + precomputed table +
geometry) it runs the CAM search and LUT accumulation on plain NumPy arrays.
It is shared by two front ends:

* :class:`repro.cam.inference.CAMInferenceEngine` — wraps a live training
  model and swaps each PECAN layer's forward for its runtime;
* :class:`repro.serve.engine.BundleEngine` — reconstructs runtimes straight
  from an exported ``.npz`` deployment bundle, with no model, no autograd and
  no training imports.

The runtime owns two interchangeable kernels:

* the **fused** kernel (default) — one broadcasted search over all groups
  plus a single flat-index gather, chunked over the position axis; PECAN-D
  prefers the compiled single-pass kernel of :mod:`repro.perf.ckernels`
  (fused im2col + l1 search + LUT accumulate), falling back to scipy's
  ``cdist`` or a broadcasted l1 pass; PECAN-A runs as batched GEMMs with an
  in-place softmax;
* the **reference** kernel — the original Python loop over the ``D``
  :class:`~repro.cam.cam_array.CAMArray` banks, retained for verification,
  benchmarking and the serving parity auditor.

Both produce identical outputs and statistics (bitwise for the PECAN-D
lookup path).
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.cam.cam_array import CAMArray, CAMEnergyModel, CAMStats
from repro.cam.counters import OpCounter
from repro.cam.layer_lut import LayerLUT
from repro.pecan.config import PECANMode
from repro.perf import ChunkPolicy, Workspace, iter_slices
from repro.perf.ckernels import MAX_PROTOTYPES, get_pecan_d_kernel
from repro.perf.im2col import conv_output_size, im2col

try:                                      # scipy ships with the image but is
    from scipy.spatial.distance import cdist as _cdist   # not a hard dependency
except ImportError:                       # pragma: no cover - env without scipy
    _cdist = None


class LUTLayerRuntime:
    """Executes Algorithm 1 for a single PECAN layer using its LUT."""

    def __init__(self, lut: LayerLUT, counter: OpCounter,
                 energy_model: Optional[CAMEnergyModel] = None,
                 chunk_policy: Optional[ChunkPolicy] = None,
                 workspace: Optional[Workspace] = None,
                 use_fused: bool = True):
        self.lut = lut
        self.counter = counter
        self.chunk_policy = chunk_policy if chunk_policy is not None else ChunkPolicy()
        self.workspace = workspace if workspace is not None else Workspace()
        self.use_fused = use_fused
        self.cam_banks = [CAMArray(lut.prototypes[j], lut.mode, temperature=lut.temperature,
                                   energy_model=energy_model)
                          for j in range(lut.num_groups)]
        # Stacked deployment arrays for the fused kernels.
        self.prototypes = np.ascontiguousarray(lut.prototypes)          # (D, d, p)
        self.table = np.ascontiguousarray(lut.table)                    # (D, cout, p)
        # (D·p, cout) view: row j·p + m is the LUT column of prototype m of
        # group j, so winners translate to rows with one flat-index gather.
        self.table_flat = np.ascontiguousarray(
            self.table.transpose(0, 2, 1).reshape(-1, lut.out_channels))
        # (D, p, d): prototype-major rows for cdist / batched GEMM queries.
        self._protos_rows = np.ascontiguousarray(self.prototypes.transpose(0, 2, 1))
        # (cout, D·p): contracts weighted sum and group summation in one GEMM.
        self._table_2d = np.ascontiguousarray(
            self.table.transpose(1, 0, 2).reshape(lut.out_channels, -1))
        self._group_offsets = (np.arange(lut.num_groups, dtype=np.int64)
                               * lut.num_prototypes)[None, :, None]     # (1, D, 1)
        self._ckernel = (get_pecan_d_kernel()
                         if lut.mode is PECANMode.DISTANCE else None)
        self._row_offset_cache: Dict[tuple, np.ndarray] = {}

    @property
    def kernel_name(self) -> str:
        """Which implementation the fused path will use for this layer."""
        if not self.use_fused:
            return "reference"
        if self.lut.mode is PECANMode.DISTANCE:
            if self._ckernel_eligible:
                return "ckernel"
            return "cdist" if _cdist is not None else "numpy"
        return "blas"

    @property
    def _ckernel_eligible(self) -> bool:
        return (self.use_fused and self._ckernel is not None
                and self.lut.num_prototypes <= MAX_PROTOTYPES)

    # ------------------------------------------------------------------ #
    def _count(self, num_positions: int) -> None:
        """Charge the Table-1 operation counts for ``num_positions`` subvectors."""
        ops = self.counter.layer(self.lut.name, self.lut.kind)
        d_groups = self.lut.num_groups
        p = self.lut.num_prototypes
        d = self.lut.subvector_dim
        cout = self.lut.out_channels
        if self.lut.mode is PECANMode.DISTANCE:
            ops.additions += num_positions * d_groups * (2 * p * d + cout)
            ops.comparisons += num_positions * d_groups * p
            ops.lookups += num_positions * d_groups * cout
        else:
            ops.additions += num_positions * d_groups * p * (d + cout)
            ops.multiplications += num_positions * d_groups * p * (d + cout)
            ops.lookups += num_positions * d_groups * p * cout
        if self.lut.bias is not None:
            ops.additions += num_positions * cout

    # ------------------------------------------------------------------ #
    def _grouped_columns(self, cols: np.ndarray) -> np.ndarray:
        """``(N, total, L) -> (N, D, d, L)`` applying the stored permutation.

        ``group_permutation`` is ``None`` for the channel layout (identity
        permutation), in which case this is a pure reshape view — no copy.
        """
        n, _, length = cols.shape
        if self.lut.group_permutation is not None:
            cols = cols[:, self.lut.group_permutation, :]
        return cols.reshape(n, self.lut.num_groups, self.lut.subvector_dim, length)

    def _record_search_stats(self, num_queries: int, usage_counts: np.ndarray) -> None:
        """Mirror the per-bank accounting of the reference loop."""
        for j, bank in enumerate(self.cam_banks):
            bank.record_search_batch(num_queries, usage_counts[j])

    def _usage_from_winners(self, winners: np.ndarray) -> np.ndarray:
        """``(N, D, L)`` winner indices → ``(D, p)`` usage histogram."""
        d_groups, p = self.lut.num_groups, self.lut.num_prototypes
        flat = (winners + self._group_offsets).reshape(-1)
        counts = np.bincount(flat, minlength=d_groups * p)
        return counts.reshape(d_groups, p)

    # ------------------------------------------------------------------ #
    # Fused kernels (all groups in one pass, chunked over positions)
    # ------------------------------------------------------------------ #
    def _distance_winners(self, grouped: np.ndarray) -> np.ndarray:
        """Fused l1 search: grouped ``(N, D, d, L)`` → winners ``(N, D, L)``.

        Uses scipy's C ``cdist`` when available (bitwise-identical to the
        broadcast), otherwise a broadcasted pass chunked so the
        ``(N, D, p, d, L_chunk)`` transient respects the chunk policy.
        """
        n, d_groups, dim, length = grouped.shape
        p = self.lut.num_prototypes
        itemsize = np.dtype(np.float64).itemsize
        winners = np.empty((n, d_groups, length), dtype=np.int64)
        if _cdist is not None:
            # Chunk over positions: the (N·Lc, p) cdist result and the
            # (N, Lc, d) query copy are the transients to bound.
            chunk = self.chunk_policy.columns_per_chunk(
                n * max(p, dim) * itemsize, length)
            qbuf = self.workspace.request(f"{self.lut.name}/cdist_q",
                                          (n, chunk, dim))
            for sl in iter_slices(length, chunk):
                width = sl.stop - sl.start
                queries = qbuf[:, :width]
                for j in range(d_groups):
                    np.copyto(queries, grouped[:, j, :, sl].transpose(0, 2, 1))
                    dist = _cdist(queries.reshape(n * width, dim),
                                  self._protos_rows[j], "cityblock")
                    winners[:, j, sl] = dist.argmin(axis=1).reshape(n, width)
            return winners
        per_column = n * d_groups * dim * p * itemsize
        chunk = self.chunk_policy.columns_per_chunk(per_column, length)
        protos = self.prototypes[None, :, :, :, None]                   # (1, D, d, p, 1)
        for sl in iter_slices(length, chunk):
            diff = np.abs(grouped[:, :, :, None, sl] - protos)          # (N, D, d, p, Lc)
            winners[:, :, sl] = diff.sum(axis=2).argmin(axis=2)
        return winners

    def _row_offsets(self, hp: int, wp: int) -> np.ndarray:
        """Per-sample element offset of every grouped im2col row at position (0, 0).

        Row ``r`` of the *grouped* matrix maps (through the stored group
        permutation, when present) to im2col row ``c·k² + ki·k + kj``, which
        lives at offset ``c·Hp·Wp + ki·Wp + kj`` inside one padded sample.
        The table folds the unfold and the permutation into the compiled
        kernel's reads, so the fast path never materializes columns at all.
        """
        key = (hp, wp)
        cached = self._row_offset_cache.get(key)
        if cached is None:
            k = max(1, self.lut.kernel_size)
            k2 = k * k
            total = self.lut.num_groups * self.lut.subvector_dim
            rows = (self.lut.group_permutation if self.lut.group_permutation is not None
                    else np.arange(total, dtype=np.int64))
            chan, pos = np.divmod(rows, k2)
            ki, kj = np.divmod(pos, k)
            cached = np.ascontiguousarray((chan * hp * wp + ki * wp + kj),
                                          dtype=np.int64)
            self._row_offset_cache[key] = cached
        return cached

    def _run_ckernel(self, xp: np.ndarray, wp: int, stride: int,
                     hout: int, wout: int) -> np.ndarray:
        """Single-pass compiled unfold+search+accumulate → ``(N, cout, Hout·Wout)``."""
        n = xp.shape[0]
        length = hout * wout
        d_groups = self.lut.num_groups
        cout = self.lut.out_channels
        out_pm = self.workspace.request(f"{self.lut.name}/ck_out",
                                        (n * length, cout))
        winners = self.workspace.request(f"{self.lut.name}/ck_winners",
                                         (n * length, d_groups), dtype=np.int64)
        self._ckernel(xp, self._row_offsets(xp.shape[-2] if xp.ndim == 4 else 1, wp),
                      self.prototypes, self.table_flat, out_pm, winners,
                      wp, stride, hout, wout)
        usage = np.bincount(
            (winners + self._group_offsets[0].T).reshape(-1),
            minlength=d_groups * self.lut.num_prototypes,
        ).reshape(d_groups, self.lut.num_prototypes)
        self._record_search_stats(n * length, usage)
        # .copy() (not ascontiguousarray): out_pm is a reused workspace
        # buffer, so the returned layer output must never alias it.
        out = out_pm.reshape(n, length, cout).transpose(0, 2, 1).copy() # (N, cout, L)
        if self.lut.bias is not None:
            out += self.lut.bias.reshape(1, cout, 1)
        return out

    def _run_groups_fused(self, grouped: np.ndarray) -> np.ndarray:
        """Search + lookup for grouped columns ``(N, D, d, L)`` → ``(N, cout, L)``."""
        n, d_groups, dim, length = grouped.shape
        p = self.lut.num_prototypes
        cout = self.lut.out_channels
        itemsize = np.dtype(np.float64).itemsize

        if self.lut.mode is PECANMode.DISTANCE:
            winners = self._distance_winners(grouped)
            # One flat-index gather + sum over the group axis, chunked so
            # the (N, D, Lc, cout) gather respects the memory budget.
            out = np.empty((n, cout, length))
            per_column = n * d_groups * cout * itemsize
            chunk = self.chunk_policy.columns_per_chunk(per_column, length)
            flat = winners + self._group_offsets                        # (N, D, L)
            for sl in iter_slices(length, chunk):
                gathered = self.table_flat.take(flat[:, :, sl], axis=0)
                out[:, :, sl] = gathered.sum(axis=1).transpose(0, 2, 1)
            self._record_search_stats(n * length, self._usage_from_winners(winners))
        else:
            # PECAN-A: one batched GEMM for all group scores, an in-place
            # softmax on a reused cache-sized buffer, then a single
            # (cout, D·p) × (D·p, L) GEMM contracting the weighted sum and
            # the group summation at once.
            queries = self.workspace.request(f"{self.lut.name}/angle_q",
                                             (d_groups, dim, n * length))
            np.copyto(queries.reshape(d_groups, dim, n, length),
                      grouped.transpose(1, 2, 0, 3))
            winners = np.empty((d_groups, n * length), dtype=np.int64)
            out_pm = self.workspace.request(f"{self.lut.name}/angle_out",
                                            (cout, n * length))
            chunk = self.chunk_policy.columns_per_chunk(d_groups * p * itemsize,
                                                        n * length)
            sbuf = self.workspace.request(f"{self.lut.name}/angle_scores",
                                          (d_groups, p, chunk))
            for sl in iter_slices(n * length, chunk):
                weights = sbuf[:, :, :sl.stop - sl.start]               # (D, p, Lc)
                np.matmul(self._protos_rows, queries[:, :, sl], out=weights)
                weights /= self.lut.temperature
                weights -= weights.max(axis=1, keepdims=True)
                np.exp(weights, out=weights)
                weights /= weights.sum(axis=1, keepdims=True)
                winners[:, sl] = weights.argmax(axis=1)
                np.matmul(self._table_2d, weights.reshape(d_groups * p, -1),
                          out=out_pm[:, sl])
            usage = np.bincount(
                (winners + self._group_offsets[0]).reshape(-1),
                minlength=d_groups * p).reshape(d_groups, p)
            self._record_search_stats(n * length, usage)
            # .copy() (not ascontiguousarray): out_pm is a reused workspace
            # buffer, so the returned layer output must never alias it.
            out = out_pm.reshape(cout, n, length).transpose(1, 0, 2).copy()  # (N, cout, L)

        if self.lut.bias is not None:
            out += self.lut.bias.reshape(1, cout, 1)
        return out

    # ------------------------------------------------------------------ #
    # Reference kernel (per-group Python loop over the CAM banks)
    # ------------------------------------------------------------------ #
    def _run_groups_reference(self, grouped: np.ndarray) -> np.ndarray:
        """Original per-group loop — the verification reference for the fused path."""
        n, d_groups, _, length = grouped.shape
        cout = self.lut.out_channels
        out = np.zeros((n, cout, length))
        for j in range(d_groups):
            bank = self.cam_banks[j]
            queries = grouped[:, j].transpose(1, 0, 2).reshape(self.lut.subvector_dim,
                                                               n * length)
            if self.lut.mode is PECANMode.DISTANCE:
                winners = bank.match(queries)                       # (N*L,)
                contribution = self.lut.table[j][:, winners]        # (cout, N*L)
            else:
                weights = bank.soft_match(queries)                  # (p, N*L)
                contribution = self.lut.table[j] @ weights          # (cout, N*L)
            out += contribution.reshape(cout, n, length).transpose(1, 0, 2)
        if self.lut.bias is not None:
            out += self.lut.bias.reshape(1, cout, 1)
        return out

    def _run_groups(self, grouped: np.ndarray) -> np.ndarray:
        if self.use_fused:
            return self._run_groups_fused(grouped)
        return self._run_groups_reference(grouped)

    # ------------------------------------------------------------------ #
    def conv_forward(self, data: np.ndarray) -> np.ndarray:
        """``(N, Cin, H, W)`` input → ``(N, cout, Hout, Wout)`` layer output."""
        data = np.asarray(data)
        n, cin, h, w = data.shape
        hout = conv_output_size(h, self.lut.kernel_size, self.lut.stride, self.lut.padding)
        wout = conv_output_size(w, self.lut.kernel_size, self.lut.stride, self.lut.padding)
        k = self.lut.kernel_size
        pad = self.lut.padding
        if self._ckernel_eligible:
            if pad:
                xp = np.pad(data, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
                xp = np.ascontiguousarray(xp, dtype=np.float64)
            else:
                xp = np.ascontiguousarray(data, dtype=np.float64)
            out = self._run_ckernel(xp, w + 2 * pad, self.lut.stride, hout, wout)
        else:
            cols_buf = self.workspace.request(f"{self.lut.name}/im2col",
                                              (n, cin * k * k, hout * wout),
                                              dtype=data.dtype)
            cols = im2col(data, k, self.lut.stride, self.lut.padding, out=cols_buf)
            grouped = self._grouped_columns(cols)
            out = self._run_groups(grouped)
        self._count(n * hout * wout)
        return out.reshape(n, self.lut.out_channels, hout, wout)

    def fc_forward(self, data: np.ndarray) -> np.ndarray:
        """``(N, features)`` input → ``(N, out_features)`` layer output."""
        data = np.asarray(data)
        n = data.shape[0]
        if self._ckernel_eligible:
            flat = np.ascontiguousarray(data.reshape(n, -1), dtype=np.float64)
            out = self._run_ckernel(flat, 1, 1, 1, 1)
        else:
            grouped = data.reshape(n, self.lut.num_groups, self.lut.subvector_dim, 1)
            out = self._run_groups(grouped)
        self._count(n)
        return out.reshape(n, self.lut.out_channels)

    def __call__(self, data: np.ndarray) -> np.ndarray:
        if self.lut.kind == "conv":
            return self.conv_forward(data)
        return self.fc_forward(data)

    # ------------------------------------------------------------------ #
    @property
    def cam_stats(self) -> CAMStats:
        total = CAMStats()
        for bank in self.cam_banks:
            total = total.merge(bank.stats)
        return total

    @property
    def usage_counts(self) -> np.ndarray:
        return np.stack([bank.usage for bank in self.cam_banks])
