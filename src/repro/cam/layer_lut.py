"""The :class:`LayerLUT` deployment artifact (data only, no training imports).

A trained PECAN layer stores two things in memory at deployment time
(Section 3 of the paper):

* the ``D·p`` prototypes used to quantize incoming subvectors, and
* the precomputed products between the grouped weights and every prototype —
  ``Y^(j) = W₁^(j) C₁^(j) ∈ R^{cout×p}`` for each group ``j``.

:class:`LayerLUT` bundles both together with the metadata the inference engine
needs (kernel geometry, group permutation, similarity mode).  This module
deliberately imports nothing from the training stack — only NumPy and the
PECAN mode enum — so the serving path (:mod:`repro.serve`) can load exported
bundles without pulling in autograd; the *construction* of LUTs from live
layers lives in :mod:`repro.cam.lut`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.pecan.config import PECANMode, is_identity_permutation


@dataclass
class LayerLUT:
    """Deployment artifact of one PECAN layer.

    Attributes
    ----------
    name:
        Qualified module name inside the parent model.
    kind:
        ``"conv"`` or ``"fc"``.
    mode:
        Similarity mode (angle → weighted sum of LUT columns, distance → a
        single LUT column per group).
    prototypes:
        ``(D, d, p)`` array searched by the CAM.
    table:
        ``(D, cout, p)`` precomputed weight-prototype products.
    bias:
        Optional ``(cout,)`` bias added after the group summation.
    """

    name: str
    kind: str
    mode: PECANMode
    prototypes: np.ndarray
    table: np.ndarray
    bias: Optional[np.ndarray]
    temperature: float
    kernel_size: int = 1
    stride: int = 1
    padding: int = 0
    in_channels: int = 0
    out_channels: int = 0
    group_permutation: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        # An identity permutation is a no-op; normalizing it to None lets the
        # inference engine group columns with a pure reshape view instead of a
        # fancy-index copy.
        if self.group_permutation is not None and is_identity_permutation(
                self.group_permutation):
            self.group_permutation = None

    @property
    def num_groups(self) -> int:
        return self.prototypes.shape[0]

    @property
    def subvector_dim(self) -> int:
        return self.prototypes.shape[1]

    @property
    def num_prototypes(self) -> int:
        return self.prototypes.shape[2]

    def memory_footprint(self, bytes_per_value: int = 4) -> Dict[str, int]:
        """Storage cost split into prototype memory and LUT memory (Section 3)."""
        prototype_values = int(np.prod(self.prototypes.shape))
        table_values = int(np.prod(self.table.shape))
        return {
            "prototype_values": prototype_values,
            "table_values": table_values,
            "prototype_bytes": prototype_values * bytes_per_value,
            "table_bytes": table_values * bytes_per_value,
            "total_bytes": (prototype_values + table_values) * bytes_per_value,
        }

    def prune_dead_prototypes(self, usage_counts: np.ndarray) -> "PrunedLayerLUT":
        """Drop prototypes with zero usage (Section 5 / Fig. 6 discussion).

        Returns a :class:`PrunedLayerLUT` carrying per-group index maps so the
        pruned table can still be addressed by new (compacted) indices.
        """
        if usage_counts.shape != (self.num_groups, self.num_prototypes):
            raise ValueError("usage_counts must have shape (D, p)")
        keep_masks = usage_counts > 0
        kept_prototypes: List[np.ndarray] = []
        kept_tables: List[np.ndarray] = []
        index_maps: List[np.ndarray] = []
        for j in range(self.num_groups):
            keep = np.where(keep_masks[j])[0]
            if keep.size == 0:
                # Never prune a whole group empty: keep the most-used prototype.
                keep = np.array([int(usage_counts[j].argmax())])
            kept_prototypes.append(self.prototypes[j][:, keep])
            kept_tables.append(self.table[j][:, keep])
            index_maps.append(keep)
        return PrunedLayerLUT(base=self, prototypes=kept_prototypes, tables=kept_tables,
                              kept_indices=index_maps)


@dataclass
class PrunedLayerLUT:
    """A :class:`LayerLUT` after dead-prototype pruning (ragged per group)."""

    base: LayerLUT
    prototypes: List[np.ndarray]
    tables: List[np.ndarray]
    kept_indices: List[np.ndarray]

    @property
    def prototypes_kept(self) -> int:
        return int(sum(p.shape[1] for p in self.prototypes))

    @property
    def prototypes_total(self) -> int:
        return self.base.num_groups * self.base.num_prototypes

    def memory_saving_fraction(self) -> float:
        """Fraction of prototype + LUT storage removed by pruning."""
        return 1.0 - self.prototypes_kept / max(self.prototypes_total, 1)


def total_memory_footprint(luts: Dict[str, LayerLUT], bytes_per_value: int = 4) -> Dict[str, int]:
    """Aggregate memory footprint of a model's LUTs (prototypes + tables)."""
    totals = {"prototype_values": 0, "table_values": 0, "prototype_bytes": 0,
              "table_bytes": 0, "total_bytes": 0}
    for lut in luts.values():
        footprint = lut.memory_footprint(bytes_per_value)
        for key in totals:
            totals[key] += footprint[key]
    return totals
