"""Behavioural model of a content-addressable memory (CAM) macro.

The paper targets platforms with built-in CAM support (FPGAs, RRAM crossbars)
where the prototype search is a single associative-memory operation: the query
subvector is broadcast on the search lines, every stored prototype evaluates
its match line in parallel, and the best match (smallest l1 distance for
PECAN-D, largest dot product for PECAN-A) wins.

This module does not model device physics; it is a *behavioural* simulator
that (1) reproduces the functional result of the search and (2) accounts for
the quantities a hardware designer would track — number of searches, match-line
evaluations, per-cell comparison operations and an energy estimate derived
from per-operation constants.  The defaults for the energy constants follow
the paper's Intel VIA Nano accounting convention (an absolute-difference cell
costs one addition, a multiply-accumulate cell costs one multiplication plus
one addition, and multiplication is 4× the energy of addition).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.pecan.config import PECANMode


@dataclass
class CAMEnergyModel:
    """Per-operation energy constants (arbitrary units, addition = 1)."""

    add_energy: float = 1.0
    multiply_energy: float = 4.0
    compare_energy: float = 0.25     # match-line comparison / winner-take-all per candidate
    lookup_energy: float = 0.5       # one table-entry read

    def search_energy(self, mode: PECANMode, num_prototypes: int, dim: int) -> float:
        """Energy of matching one subvector against a codebook of ``p`` prototypes."""
        if mode is PECANMode.DISTANCE:
            # |x - c| per cell (one subtraction) plus the row sum (d-1 additions),
            # then a winner-take-all comparison across the p match lines.
            per_line = dim * self.add_energy + (dim - 1) * self.add_energy
            return num_prototypes * per_line + num_prototypes * self.compare_energy
        # Angle mode: a multiply-accumulate per cell plus the softmax normalization
        # (approximated as one multiply + one add per prototype).
        per_line = dim * (self.multiply_energy + self.add_energy)
        softmax_cost = num_prototypes * (self.multiply_energy + self.add_energy)
        return num_prototypes * per_line + softmax_cost

    def lookup_accumulate_energy(self, mode: PECANMode, num_prototypes: int,
                                 out_features: int) -> float:
        """Energy of producing one output group contribution from the LUT."""
        if mode is PECANMode.DISTANCE:
            return out_features * (self.lookup_energy + self.add_energy)
        return out_features * num_prototypes * (self.lookup_energy + self.multiply_energy
                                                + self.add_energy)


@dataclass
class CAMStats:
    """Counters accumulated by a :class:`CAMArray` across queries."""

    searches: int = 0
    matchline_evaluations: int = 0
    cell_operations: int = 0
    energy: float = 0.0

    def merge(self, other: "CAMStats") -> "CAMStats":
        return CAMStats(
            searches=self.searches + other.searches,
            matchline_evaluations=self.matchline_evaluations + other.matchline_evaluations,
            cell_operations=self.cell_operations + other.cell_operations,
            energy=self.energy + other.energy,
        )


class CAMArray:
    """One CAM bank storing the ``p`` prototypes of a single PQ group.

    ``query`` performs the associative search for a batch of subvectors and
    returns either hard indices (distance mode) or soft attention weights
    (angle mode), updating the usage and energy statistics.
    """

    def __init__(self, prototypes: np.ndarray, mode: PECANMode,
                 temperature: float = 1.0,
                 energy_model: Optional[CAMEnergyModel] = None):
        if prototypes.ndim != 2:
            raise ValueError("prototypes must be a (d, p) array for a single group")
        self.prototypes = np.asarray(prototypes, dtype=np.float64)
        self.mode = PECANMode.parse(mode)
        self.temperature = float(temperature)
        self.energy_model = energy_model if energy_model is not None else CAMEnergyModel()
        self.stats = CAMStats()
        self.usage = np.zeros(self.num_prototypes, dtype=np.int64)

    @property
    def subvector_dim(self) -> int:
        return self.prototypes.shape[0]

    @property
    def num_prototypes(self) -> int:
        return self.prototypes.shape[1]

    def _account(self, num_queries: int) -> None:
        p, d = self.num_prototypes, self.subvector_dim
        self.stats.searches += num_queries
        self.stats.matchline_evaluations += num_queries * p
        self.stats.cell_operations += num_queries * p * d
        self.stats.energy += num_queries * self.energy_model.search_energy(self.mode, p, d)

    def record_search_batch(self, num_queries: int,
                            usage_counts: Optional[np.ndarray] = None) -> None:
        """Account searches executed on this bank's behalf by the fused engine.

        The vectorized inference path evaluates all groups in one broadcasted
        pass instead of querying each :class:`CAMArray` individually; it calls
        this afterwards so the per-bank statistics (searches, match-line
        evaluations, energy, usage histogram) stay identical to the per-group
        reference path.
        """
        self._account(int(num_queries))
        if usage_counts is not None:
            self.usage += np.asarray(usage_counts, dtype=self.usage.dtype)

    def match(self, queries: np.ndarray) -> np.ndarray:
        """Hard winner-take-all match: ``(d, L)`` queries → ``(L,)`` indices."""
        if queries.shape[0] != self.subvector_dim:
            raise ValueError(f"query dimension {queries.shape[0]} does not match "
                             f"prototype dimension {self.subvector_dim}")
        num_queries = queries.shape[1]
        self._account(num_queries)
        if self.mode is PECANMode.DISTANCE:
            distances = np.abs(queries[:, None, :] - self.prototypes[:, :, None]).sum(axis=0)
            winners = distances.argmin(axis=0)
        else:
            scores = self.prototypes.T @ queries
            winners = scores.argmax(axis=0)
        # bincount is a single C pass over the winners — much faster than the
        # np.add.at scatter for large batches, with bitwise-identical counts.
        self.usage += np.bincount(winners, minlength=self.num_prototypes)
        return winners

    def soft_match(self, queries: np.ndarray) -> np.ndarray:
        """Soft attention weights: ``(d, L)`` queries → ``(p, L)`` weights."""
        if self.mode is not PECANMode.ANGLE:
            raise ValueError("soft_match is only defined for angle-mode CAM banks")
        num_queries = queries.shape[1]
        self._account(num_queries)
        scores = (self.prototypes.T @ queries) / self.temperature
        scores -= scores.max(axis=0, keepdims=True)
        weights = np.exp(scores)
        weights /= weights.sum(axis=0, keepdims=True)
        self.usage += np.bincount(weights.argmax(axis=0),
                                  minlength=self.num_prototypes)
        return weights

    def reset_stats(self) -> None:
        self.stats = CAMStats()
        self.usage[:] = 0
