"""Lookup-only inference engine (Algorithm 1 of the paper).

:class:`CAMInferenceEngine` executes a trained PECAN model the way the
deployed hardware would:

* every PECAN layer is replaced by (1) a CAM prototype search over its
  codebooks and (2) a read-and-accumulate over the precomputed lookup table
  ``Y^(j) = W₁^(j) C^(j)``;
* every other module (ReLU, pooling, batch-norm, residual additions) runs its
  normal forward pass;
* an :class:`~repro.cam.verify.OpCounter` tallies the arithmetic performed on
  the PECAN path so the multiplier-free property of PECAN-D can be verified
  dynamically.

For PECAN-D the per-position work is ``2·p·d`` additions for the search plus
``cout`` additions for accumulating the ``D`` looked-up columns; for PECAN-A
it is ``p·d`` multiply-adds for the scores plus ``p·cout`` multiply-adds for
the weighted sum — exactly the Table 1 complexity model.

Execution strategy
------------------
The engine is a thin executor over the graph IR of :mod:`repro.ir`: the
model's forward pass is traced once per input shape into a
:class:`~repro.ir.graph.Graph` (tape-based, so residual additions and channel
concatenations of e.g. ``repro.models.resnet`` record exactly) and replayed
by a :class:`~repro.ir.executor.GraphExecutor` whose ``pecan`` nodes dispatch
into :class:`repro.cam.runtime.LUTLayerRuntime` — the same autograd-free
kernels the bundle-backed serving engine of :mod:`repro.serve` runs.  Inside
each runtime the layer's codebooks are stacked into one ``(D, d, p)`` array
and its lookup table into one ``(D, cout, p)`` array, PECAN-D prefers the
compiled single-pass kernel of :mod:`repro.perf.ckernels` with
``cdist``/NumPy fallbacks, PECAN-A runs as batched GEMMs, and the ``L``
position axis is streamed through a :class:`~repro.perf.ChunkPolicy` so peak
memory stays bounded; ``predict`` can additionally stream the batch axis.
The original per-group loop is kept as
:meth:`~repro.cam.runtime.LUTLayerRuntime._run_groups_reference` and every
fast path is verified element-wise against it in the test suite.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.cam.cam_array import CAMEnergyModel, CAMStats
from repro.cam.counters import OpCounter
from repro.cam.lut import LayerLUT, build_layer_lut
from repro.cam.runtime import LUTLayerRuntime
from repro.ir.executor import GraphExecutor
from repro.nn.module import Module
from repro.pecan.convert import pecan_layers
from repro.perf import ChunkPolicy, Workspace, iter_slices

#: Backwards-compatible alias: the runtime used to be a private class here.
_LUTLayerRuntime = LUTLayerRuntime


class CAMInferenceEngine:
    """Run a PECAN model in deployment (lookup-only) mode.

    Parameters
    ----------
    model:
        A model containing PECAN layers (any mixture with conventional layers
        is allowed; only the PECAN layers are routed through the CAM path).
    energy_model:
        Optional per-operation energy constants for the CAM banks.
    chunk_policy:
        Memory budget for the fused kernels' broadcasted transients; the
        position axis of every layer is streamed in chunks that respect it.
        Defaults to :data:`repro.perf.chunking.DEFAULT_MAX_BYTES`.
    use_fused:
        Select the vectorized fast path (default) or the per-group reference
        loop.  Both produce identical outputs and statistics.
    """

    def __init__(self, model: Module, energy_model: Optional[CAMEnergyModel] = None,
                 chunk_policy: Optional[ChunkPolicy] = None, use_fused: bool = True):
        self.model = model
        self.op_counter = OpCounter()
        self.chunk_policy = chunk_policy if chunk_policy is not None else ChunkPolicy()
        self.workspace = Workspace()
        self.runtimes: Dict[str, LUTLayerRuntime] = {}
        self._layers: Dict[str, Module] = {}
        for name, layer in pecan_layers(model):
            lut = build_layer_lut(layer, name=name)
            self._layers[name] = layer
            self.runtimes[name] = LUTLayerRuntime(lut, self.op_counter,
                                                  energy_model=energy_model,
                                                  chunk_policy=self.chunk_policy,
                                                  workspace=self.workspace,
                                                  use_fused=use_fused)
        #: One compiled executor per per-sample input shape (traced lazily).
        self._executors: Dict[Tuple[int, ...], GraphExecutor] = {}

    @property
    def use_fused(self) -> bool:
        return all(runtime.use_fused for runtime in self.runtimes.values())

    @use_fused.setter
    def use_fused(self, value: bool) -> None:
        for runtime in self.runtimes.values():
            runtime.use_fused = bool(value)

    def executor_for(self, input_shape: Tuple[int, ...]) -> GraphExecutor:
        """Compiled graph executor for one per-sample input shape.

        The model is traced on first use (eval mode, training flag restored)
        and the executor cached; subsequent predicts replay the graph without
        touching the model at all.
        """
        input_shape = tuple(int(s) for s in input_shape)
        executor = self._executors.get(input_shape)
        if executor is None:
            from repro.ir.trace import trace_graph
            graph = trace_graph(self.model, input_shape)
            executor = GraphExecutor(graph, self.runtimes)
            self._executors[input_shape] = executor
        return executor

    def _forward_batch(self, inputs: np.ndarray) -> np.ndarray:
        return self.executor_for(inputs.shape[1:]).run(inputs)

    def predict_via_module(self, inputs: np.ndarray) -> np.ndarray:
        """Algorithm 1 through the model's *own* forward pass.

        Temporarily swaps every PECAN layer's forward for its LUT runtime and
        runs the live model in eval mode — no graph tracing involved.  This
        is the trace-independent oracle: export verification compares the
        traced-graph replay against it, so a mis-trace (e.g. a module whose
        forward smuggles input-dependent math past the trace hooks) shows up
        as a divergence instead of being replayed identically on both sides.
        """
        from repro.autograd.tensor import Tensor, no_grad

        inputs = np.asarray(inputs)
        originals = {name: self._layers[name].forward for name in self.runtimes}

        def lut_forward(runtime):
            return lambda x: Tensor(runtime(np.asarray(x.data)))

        was_training = self.model.training
        self.model.eval()
        try:
            for name, runtime in self.runtimes.items():
                self._layers[name].forward = lut_forward(runtime)
            with no_grad():
                return self.model(Tensor(inputs)).data
        finally:
            for name, original in originals.items():
                self._layers[name].forward = original
            self.model.train(was_training)

    def predict(self, inputs: np.ndarray, batch_chunk: Optional[int] = None) -> np.ndarray:
        """Logits for a batch of inputs, computed via Algorithm 1.

        Parameters
        ----------
        inputs:
            Array whose leading axis is the batch.
        batch_chunk:
            When given, the batch is streamed through the model in slices of
            at most this many samples and the logits are concatenated.  In
            eval mode every sample is independent, so the result matches the
            unchunked pass (bitwise on the PECAN-D lookup path; up to BLAS
            round-off for PECAN-A) while peak activation memory scales with
            the chunk instead of the full batch.
        """
        inputs = np.asarray(inputs)
        n = inputs.shape[0]
        if batch_chunk is None or batch_chunk >= n:
            return self._forward_batch(inputs)
        parts = [self._forward_batch(inputs[sl]) for sl in iter_slices(n, batch_chunk)]
        return np.concatenate(parts, axis=0)

    def predict_classes(self, inputs: np.ndarray,
                        batch_chunk: Optional[int] = None) -> np.ndarray:
        """Predicted class indices."""
        return self.predict(inputs, batch_chunk=batch_chunk).argmax(axis=1)

    def accuracy(self, inputs: np.ndarray, labels: np.ndarray,
                 batch_chunk: Optional[int] = None) -> float:
        """Top-1 accuracy of LUT inference on a labelled batch."""
        predicted = self.predict_classes(inputs, batch_chunk=batch_chunk)
        return float((predicted == np.asarray(labels)).mean())

    # ------------------------------------------------------------------ #
    # Aggregated statistics
    # ------------------------------------------------------------------ #
    def reset_counters(self) -> None:
        self.op_counter = OpCounter()
        for runtime in self.runtimes.values():
            runtime.counter = self.op_counter
            for bank in runtime.cam_banks:
                bank.reset_stats()

    def cam_stats(self) -> CAMStats:
        """Total CAM activity (searches, match-line evaluations, energy)."""
        total = CAMStats()
        for runtime in self.runtimes.values():
            total = total.merge(runtime.cam_stats)
        return total

    def prototype_usage(self) -> Dict[str, np.ndarray]:
        """Per-layer ``(D, p)`` usage histograms accumulated so far (Fig. 6)."""
        return {name: runtime.usage_counts for name, runtime in self.runtimes.items()}

    def lookup_tables(self) -> Dict[str, LayerLUT]:
        return {name: runtime.lut for name, runtime in self.runtimes.items()}


def lut_inference(model: Module, inputs: np.ndarray,
                  batch_chunk: Optional[int] = None) -> np.ndarray:
    """One-shot convenience wrapper: build an engine and return the logits."""
    return CAMInferenceEngine(model).predict(inputs, batch_chunk=batch_chunk)
