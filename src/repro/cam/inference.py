"""Lookup-only inference engine (Algorithm 1 of the paper).

:class:`CAMInferenceEngine` executes a trained PECAN model the way the
deployed hardware would:

* every PECAN layer is replaced by (1) a CAM prototype search over its
  codebooks and (2) a read-and-accumulate over the precomputed lookup table
  ``Y^(j) = W₁^(j) C^(j)``;
* every other module (ReLU, pooling, batch-norm, residual additions) runs its
  normal forward pass;
* an :class:`~repro.cam.verify.OpCounter` tallies the arithmetic performed on
  the PECAN path so the multiplier-free property of PECAN-D can be verified
  dynamically.

For PECAN-D the per-position work is ``2·p·d`` additions for the search plus
``cout`` additions for accumulating the ``D`` looked-up columns; for PECAN-A
it is ``p·d`` multiply-adds for the scores plus ``p·cout`` multiply-adds for
the weighted sum — exactly the Table 1 complexity model.

Execution strategy
------------------
The per-layer kernels live in :class:`repro.cam.runtime.LUTLayerRuntime`
(autograd-free, shared with the bundle-backed serving engine of
:mod:`repro.serve`): the layer's codebooks are stacked into one ``(D, d, p)``
array and its lookup table into one ``(D, cout, p)`` array, PECAN-D prefers
the compiled single-pass kernel of :mod:`repro.perf.ckernels` with
``cdist``/NumPy fallbacks, PECAN-A runs as batched GEMMs, and the ``L``
position axis is streamed through a :class:`~repro.perf.ChunkPolicy` so peak
memory stays bounded; ``predict`` can additionally stream the batch axis.
The original per-group loop is kept as
:meth:`~repro.cam.runtime.LUTLayerRuntime._run_groups_reference` and every
fast path is verified element-wise against it in the test suite.
"""

from __future__ import annotations

import contextlib
from typing import Dict, Optional

import numpy as np

from repro.autograd.tensor import Tensor, no_grad
from repro.cam.cam_array import CAMEnergyModel, CAMStats
from repro.cam.counters import OpCounter
from repro.cam.lut import LayerLUT, build_layer_lut
from repro.cam.runtime import LUTLayerRuntime
from repro.nn.module import Module
from repro.pecan.convert import pecan_layers
from repro.perf import ChunkPolicy, Workspace, iter_slices

#: Backwards-compatible alias: the runtime used to be a private class here.
_LUTLayerRuntime = LUTLayerRuntime


class CAMInferenceEngine:
    """Run a PECAN model in deployment (lookup-only) mode.

    Parameters
    ----------
    model:
        A model containing PECAN layers (any mixture with conventional layers
        is allowed; only the PECAN layers are routed through the CAM path).
    energy_model:
        Optional per-operation energy constants for the CAM banks.
    chunk_policy:
        Memory budget for the fused kernels' broadcasted transients; the
        position axis of every layer is streamed in chunks that respect it.
        Defaults to :data:`repro.perf.chunking.DEFAULT_MAX_BYTES`.
    use_fused:
        Select the vectorized fast path (default) or the per-group reference
        loop.  Both produce identical outputs and statistics.
    """

    def __init__(self, model: Module, energy_model: Optional[CAMEnergyModel] = None,
                 chunk_policy: Optional[ChunkPolicy] = None, use_fused: bool = True):
        self.model = model
        self.op_counter = OpCounter()
        self.chunk_policy = chunk_policy if chunk_policy is not None else ChunkPolicy()
        self.workspace = Workspace()
        self.runtimes: Dict[str, LUTLayerRuntime] = {}
        self._layers: Dict[str, Module] = {}
        for name, layer in pecan_layers(model):
            lut = build_layer_lut(layer, name=name)
            self._layers[name] = layer
            self.runtimes[name] = LUTLayerRuntime(lut, self.op_counter,
                                                  energy_model=energy_model,
                                                  chunk_policy=self.chunk_policy,
                                                  workspace=self.workspace,
                                                  use_fused=use_fused)

    @property
    def use_fused(self) -> bool:
        return all(runtime.use_fused for runtime in self.runtimes.values())

    @use_fused.setter
    def use_fused(self, value: bool) -> None:
        for runtime in self.runtimes.values():
            runtime.use_fused = bool(value)

    @contextlib.contextmanager
    def _lut_mode(self):
        """Temporarily swap every PECAN layer's forward for its LUT runtime."""
        originals = {}

        def lut_forward(runtime):
            return lambda x: Tensor(runtime(np.asarray(x.data)))

        try:
            for name, runtime in self.runtimes.items():
                layer = self._layers[name]
                originals[name] = layer.forward
                layer.forward = lut_forward(runtime)
            yield
        finally:
            for name in self.runtimes:
                self._layers[name].forward = originals[name]

    def _forward_batch(self, inputs: np.ndarray) -> np.ndarray:
        with no_grad(), self._lut_mode():
            return self.model(Tensor(inputs)).data

    def predict(self, inputs: np.ndarray, batch_chunk: Optional[int] = None) -> np.ndarray:
        """Logits for a batch of inputs, computed via Algorithm 1.

        Parameters
        ----------
        inputs:
            Array whose leading axis is the batch.
        batch_chunk:
            When given, the batch is streamed through the model in slices of
            at most this many samples and the logits are concatenated.  In
            eval mode every sample is independent, so the result matches the
            unchunked pass (bitwise on the PECAN-D lookup path; up to BLAS
            round-off for PECAN-A) while peak activation memory scales with
            the chunk instead of the full batch.
        """
        inputs = np.asarray(inputs)
        was_training = self.model.training
        self.model.eval()
        try:
            n = inputs.shape[0]
            if batch_chunk is None or batch_chunk >= n:
                return self._forward_batch(inputs)
            parts = [self._forward_batch(inputs[sl]) for sl in iter_slices(n, batch_chunk)]
            return np.concatenate(parts, axis=0)
        finally:
            self.model.train(was_training)

    def predict_classes(self, inputs: np.ndarray,
                        batch_chunk: Optional[int] = None) -> np.ndarray:
        """Predicted class indices."""
        return self.predict(inputs, batch_chunk=batch_chunk).argmax(axis=1)

    def accuracy(self, inputs: np.ndarray, labels: np.ndarray,
                 batch_chunk: Optional[int] = None) -> float:
        """Top-1 accuracy of LUT inference on a labelled batch."""
        predicted = self.predict_classes(inputs, batch_chunk=batch_chunk)
        return float((predicted == np.asarray(labels)).mean())

    # ------------------------------------------------------------------ #
    # Aggregated statistics
    # ------------------------------------------------------------------ #
    def reset_counters(self) -> None:
        self.op_counter = OpCounter()
        for runtime in self.runtimes.values():
            runtime.counter = self.op_counter
            for bank in runtime.cam_banks:
                bank.reset_stats()

    def cam_stats(self) -> CAMStats:
        """Total CAM activity (searches, match-line evaluations, energy)."""
        total = CAMStats()
        for runtime in self.runtimes.values():
            total = total.merge(runtime.cam_stats)
        return total

    def prototype_usage(self) -> Dict[str, np.ndarray]:
        """Per-layer ``(D, p)`` usage histograms accumulated so far (Fig. 6)."""
        return {name: runtime.usage_counts for name, runtime in self.runtimes.items()}

    def lookup_tables(self) -> Dict[str, LayerLUT]:
        return {name: runtime.lut for name, runtime in self.runtimes.items()}


def lut_inference(model: Module, inputs: np.ndarray,
                  batch_chunk: Optional[int] = None) -> np.ndarray:
    """One-shot convenience wrapper: build an engine and return the logits."""
    return CAMInferenceEngine(model).predict(inputs, batch_chunk=batch_chunk)
