"""Lookup-only inference engine (Algorithm 1 of the paper).

:class:`CAMInferenceEngine` executes a trained PECAN model the way the
deployed hardware would:

* every PECAN layer is replaced by (1) a CAM prototype search over its
  codebooks and (2) a read-and-accumulate over the precomputed lookup table
  ``Y^(j) = W₁^(j) C^(j)``;
* every other module (ReLU, pooling, batch-norm, residual additions) runs its
  normal forward pass;
* an :class:`~repro.cam.verify.OpCounter` tallies the arithmetic performed on
  the PECAN path so the multiplier-free property of PECAN-D can be verified
  dynamically.

For PECAN-D the per-position work is ``2·p·d`` additions for the search plus
``cout`` additions for accumulating the ``D`` looked-up columns; for PECAN-A
it is ``p·d`` multiply-adds for the scores plus ``p·cout`` multiply-adds for
the weighted sum — exactly the Table 1 complexity model.
"""

from __future__ import annotations

import contextlib
from typing import Dict, Optional

import numpy as np

from repro.autograd.im2col import conv_output_size, im2col
from repro.autograd.tensor import Tensor, no_grad
from repro.nn.module import Module
from repro.pecan.config import PECANMode
from repro.pecan.convert import pecan_layers
from repro.pecan.layers import PECANConv2d, PECANLinear
from repro.cam.cam_array import CAMArray, CAMEnergyModel, CAMStats
from repro.cam.lut import LayerLUT, build_layer_lut
from repro.cam.verify import OpCounter


def _softmax(scores: np.ndarray, axis: int) -> np.ndarray:
    shifted = scores - scores.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=axis, keepdims=True)


class _LUTLayerRuntime:
    """Executes Algorithm 1 for a single PECAN layer using its LUT."""

    def __init__(self, layer, lut: LayerLUT, counter: OpCounter,
                 energy_model: Optional[CAMEnergyModel] = None):
        self.layer = layer
        self.lut = lut
        self.counter = counter
        self.cam_banks = [CAMArray(lut.prototypes[j], lut.mode, temperature=lut.temperature,
                                   energy_model=energy_model)
                          for j in range(lut.num_groups)]

    # ------------------------------------------------------------------ #
    def _count(self, num_positions: int) -> None:
        """Charge the Table-1 operation counts for ``num_positions`` subvectors."""
        ops = self.counter.layer(self.lut.name, self.lut.kind)
        d_groups = self.lut.num_groups
        p = self.lut.num_prototypes
        d = self.lut.subvector_dim
        cout = self.lut.out_channels
        if self.lut.mode is PECANMode.DISTANCE:
            ops.additions += num_positions * d_groups * (2 * p * d + cout)
            ops.comparisons += num_positions * d_groups * p
            ops.lookups += num_positions * d_groups * cout
        else:
            ops.additions += num_positions * d_groups * p * (d + cout)
            ops.multiplications += num_positions * d_groups * p * (d + cout)
            ops.lookups += num_positions * d_groups * p * cout
        if self.lut.bias is not None:
            ops.additions += num_positions * cout

    # ------------------------------------------------------------------ #
    def _grouped_columns(self, cols: np.ndarray) -> np.ndarray:
        """``(N, total, L) -> (N, D, d, L)`` applying the stored permutation."""
        n, _, length = cols.shape
        if self.lut.group_permutation is not None:
            cols = cols[:, self.lut.group_permutation, :]
        return cols.reshape(n, self.lut.num_groups, self.lut.subvector_dim, length)

    def _run_groups(self, grouped: np.ndarray) -> np.ndarray:
        """Search + lookup for grouped columns ``(N, D, d, L)`` → ``(N, cout, L)``."""
        n, d_groups, _, length = grouped.shape
        cout = self.lut.out_channels
        out = np.zeros((n, cout, length))
        for j in range(d_groups):
            bank = self.cam_banks[j]
            queries = grouped[:, j].transpose(1, 0, 2).reshape(self.lut.subvector_dim,
                                                               n * length)
            if self.lut.mode is PECANMode.DISTANCE:
                winners = bank.match(queries)                       # (N*L,)
                contribution = self.lut.table[j][:, winners]        # (cout, N*L)
            else:
                weights = bank.soft_match(queries)                  # (p, N*L)
                contribution = self.lut.table[j] @ weights          # (cout, N*L)
            out += contribution.reshape(cout, n, length).transpose(1, 0, 2)
        if self.lut.bias is not None:
            out += self.lut.bias.reshape(1, cout, 1)
        return out

    # ------------------------------------------------------------------ #
    def conv_forward(self, x: Tensor) -> Tensor:
        data = np.asarray(x.data)
        n, _, h, w = data.shape
        hout = conv_output_size(h, self.lut.kernel_size, self.lut.stride, self.lut.padding)
        wout = conv_output_size(w, self.lut.kernel_size, self.lut.stride, self.lut.padding)
        cols = im2col(data, self.lut.kernel_size, self.lut.stride, self.lut.padding)
        grouped = self._grouped_columns(cols)
        out = self._run_groups(grouped)
        self._count(n * hout * wout)
        return Tensor(out.reshape(n, self.lut.out_channels, hout, wout))

    def fc_forward(self, x: Tensor) -> Tensor:
        data = np.asarray(x.data)
        n = data.shape[0]
        grouped = data.reshape(n, self.lut.num_groups, self.lut.subvector_dim, 1)
        out = self._run_groups(grouped)
        self._count(n)
        return Tensor(out.reshape(n, self.lut.out_channels))

    def __call__(self, x: Tensor) -> Tensor:
        if self.lut.kind == "conv":
            return self.conv_forward(x)
        return self.fc_forward(x)

    # ------------------------------------------------------------------ #
    @property
    def cam_stats(self) -> CAMStats:
        total = CAMStats()
        for bank in self.cam_banks:
            total = total.merge(bank.stats)
        return total

    @property
    def usage_counts(self) -> np.ndarray:
        return np.stack([bank.usage for bank in self.cam_banks])


class CAMInferenceEngine:
    """Run a PECAN model in deployment (lookup-only) mode.

    Parameters
    ----------
    model:
        A model containing PECAN layers (any mixture with conventional layers
        is allowed; only the PECAN layers are routed through the CAM path).
    energy_model:
        Optional per-operation energy constants for the CAM banks.
    """

    def __init__(self, model: Module, energy_model: Optional[CAMEnergyModel] = None):
        self.model = model
        self.op_counter = OpCounter()
        self.runtimes: Dict[str, _LUTLayerRuntime] = {}
        for name, layer in pecan_layers(model):
            lut = build_layer_lut(layer, name=name)
            self.runtimes[name] = _LUTLayerRuntime(layer, lut, self.op_counter,
                                                   energy_model=energy_model)

    @contextlib.contextmanager
    def _lut_mode(self):
        """Temporarily swap every PECAN layer's forward for its LUT runtime."""
        originals = {}
        try:
            for name, runtime in self.runtimes.items():
                originals[name] = runtime.layer.forward
                runtime.layer.forward = runtime
            yield
        finally:
            for name, runtime in self.runtimes.items():
                runtime.layer.forward = originals[name]

    def predict(self, inputs: np.ndarray) -> np.ndarray:
        """Logits for a batch of inputs, computed via Algorithm 1."""
        was_training = self.model.training
        self.model.eval()
        try:
            with no_grad(), self._lut_mode():
                outputs = self.model(Tensor(np.asarray(inputs)))
        finally:
            self.model.train(was_training)
        return outputs.data

    def predict_classes(self, inputs: np.ndarray) -> np.ndarray:
        """Predicted class indices."""
        return self.predict(inputs).argmax(axis=1)

    def accuracy(self, inputs: np.ndarray, labels: np.ndarray) -> float:
        """Top-1 accuracy of LUT inference on a labelled batch."""
        return float((self.predict_classes(inputs) == np.asarray(labels)).mean())

    # ------------------------------------------------------------------ #
    # Aggregated statistics
    # ------------------------------------------------------------------ #
    def reset_counters(self) -> None:
        self.op_counter = OpCounter()
        for runtime in self.runtimes.values():
            runtime.counter = self.op_counter
            for bank in runtime.cam_banks:
                bank.reset_stats()

    def cam_stats(self) -> CAMStats:
        """Total CAM activity (searches, match-line evaluations, energy)."""
        total = CAMStats()
        for runtime in self.runtimes.values():
            total = total.merge(runtime.cam_stats)
        return total

    def prototype_usage(self) -> Dict[str, np.ndarray]:
        """Per-layer ``(D, p)`` usage histograms accumulated so far (Fig. 6)."""
        return {name: runtime.usage_counts for name, runtime in self.runtimes.items()}

    def lookup_tables(self) -> Dict[str, LayerLUT]:
        return {name: runtime.lut for name, runtime in self.runtimes.items()}


def lut_inference(model: Module, inputs: np.ndarray) -> np.ndarray:
    """One-shot convenience wrapper: build an engine and return the logits."""
    return CAMInferenceEngine(model).predict(inputs)
