"""Per-layer operation counters for the Algorithm-1 inference path.

The central hardware claim of PECAN-D is that inference uses **zero
multiplications** (Section 3.2 / Table 1).  These dataclasses tally every
arithmetic operation the CAM path executes; they are import-lean (NumPy-free,
training-free) so both the model-based engine (:mod:`repro.cam.inference`) and
the bundle-backed serving engine (:mod:`repro.serve`) can account identically.
The model-level helpers that *interpret* the counts (tracing a model, checking
for unconverted layers) stay in :mod:`repro.cam.verify`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple


@dataclass
class LayerOpCount:
    """Operations executed by one layer during a traced inference pass."""

    name: str
    kind: str
    additions: int = 0
    multiplications: int = 0
    comparisons: int = 0
    lookups: int = 0

    def total(self) -> int:
        return self.additions + self.multiplications + self.comparisons + self.lookups


@dataclass
class OpCounter:
    """Aggregates per-layer operation counts for one traced inference pass."""

    layers: Dict[str, LayerOpCount] = field(default_factory=dict)

    def layer(self, name: str, kind: str) -> LayerOpCount:
        if name not in self.layers:
            self.layers[name] = LayerOpCount(name=name, kind=kind)
        return self.layers[name]

    def _snapshot(self) -> List[LayerOpCount]:
        # list(dict.values()) is atomic under the GIL: metrics readers on
        # other threads must never race a RuntimeError out of an engine
        # worker inserting a new layer entry mid-iteration.
        return list(self.layers.values())

    @property
    def additions(self) -> int:
        return sum(layer.additions for layer in self._snapshot())

    @property
    def multiplications(self) -> int:
        return sum(layer.multiplications for layer in self._snapshot())

    @property
    def comparisons(self) -> int:
        return sum(layer.comparisons for layer in self._snapshot())

    @property
    def lookups(self) -> int:
        return sum(layer.lookups for layer in self._snapshot())

    def is_multiplier_free(self) -> bool:
        return self.multiplications == 0

    def summary(self) -> Dict[str, int]:
        return {
            "additions": self.additions,
            "multiplications": self.multiplications,
            "comparisons": self.comparisons,
            "lookups": self.lookups,
        }

    def per_layer_table(self) -> List[Tuple[str, str, int, int]]:
        """Rows ``(name, kind, additions, multiplications)`` in insertion order."""
        return [(l.name, l.kind, l.additions, l.multiplications) for l in self._snapshot()]


class MultiplierUsageError(AssertionError):
    """Raised when a supposedly multiplier-free inference used multiplications."""
