"""Fixed-point quantization of the deployed CAM contents.

A CAM/LUT accelerator does not store 64-bit floats: prototypes live in the
search array and the precomputed products in a small SRAM, both at a fixed
word width.  This module quantizes a :class:`~repro.cam.lut.LayerLUT` to
symmetric signed integers of configurable bit width (per-group scale for the
prototypes, per-layer scale for the table), provides the dequantized arrays
for accuracy evaluation, and reports the storage saving.

This goes slightly beyond the paper (which reports float operation counts) but
is the natural next step its in-memory-computing pitch implies, and it lets
the benchmarks quantify how tolerant PECAN-D inference is to narrow LUT words
— hard prototype matching only needs the *argmin* to stay correct, so accuracy
degrades much more slowly than for a conventional quantized CNN.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.cam.lut import LayerLUT
from repro.nn.module import Module
from repro.pecan.config import PECANMode


@dataclass
class QuantizedArray:
    """A symmetric fixed-point array: integer values plus a scale factor."""

    values: np.ndarray          # integer codes (stored as int32 for convenience)
    scale: np.ndarray           # per-slice scale(s); dequantized = values * scale
    bits: int

    def dequantize(self) -> np.ndarray:
        return self.values.astype(np.float64) * self.scale

    @property
    def num_values(self) -> int:
        return int(self.values.size)

    def storage_bits(self) -> int:
        """Total payload bits (excluding the negligible scale storage)."""
        return self.num_values * self.bits


def quantize_symmetric(array: np.ndarray, bits: int, axis: Optional[int] = None) -> QuantizedArray:
    """Symmetric linear quantization to ``bits``-bit signed integers.

    ``axis`` selects a per-slice scale (e.g. per codebook group); ``None`` uses
    a single scale for the whole array.
    """
    if bits < 2 or bits > 32:
        raise ValueError("bits must lie in [2, 32]")
    max_code = 2 ** (bits - 1) - 1
    if axis is None:
        peak = np.abs(array).max()
        scale = np.array(peak / max_code if peak > 0 else 1.0)
    else:
        reduce_axes = tuple(i for i in range(array.ndim) if i != axis)
        peak = np.abs(array).max(axis=reduce_axes, keepdims=True)
        scale = np.where(peak > 0, peak / max_code, 1.0)
    codes = np.clip(np.round(array / scale), -max_code - 1, max_code).astype(np.int32)
    return QuantizedArray(values=codes, scale=scale, bits=bits)


@dataclass
class QuantizedLayerLUT:
    """A :class:`LayerLUT` with fixed-point prototypes and table."""

    base: LayerLUT
    prototypes: QuantizedArray
    table: QuantizedArray

    def dequantized_lut(self) -> LayerLUT:
        """A float LayerLUT carrying the quantization error (drop-in usable)."""
        return LayerLUT(
            name=self.base.name, kind=self.base.kind, mode=self.base.mode,
            prototypes=self.prototypes.dequantize(), table=self.table.dequantize(),
            bias=self.base.bias, temperature=self.base.temperature,
            kernel_size=self.base.kernel_size, stride=self.base.stride,
            padding=self.base.padding, in_channels=self.base.in_channels,
            out_channels=self.base.out_channels,
            group_permutation=self.base.group_permutation)

    def prototype_error(self) -> float:
        """Mean absolute quantization error of the prototypes."""
        return float(np.abs(self.prototypes.dequantize() - self.base.prototypes).mean())

    def table_error(self) -> float:
        """Mean absolute quantization error of the lookup table."""
        return float(np.abs(self.table.dequantize() - self.base.table).mean())

    def storage_bits(self) -> int:
        return self.prototypes.storage_bits() + self.table.storage_bits()

    def compression_ratio(self, float_bits: int = 32) -> float:
        """Storage reduction relative to a ``float_bits`` floating-point deployment."""
        float_total = (self.base.prototypes.size + self.base.table.size) * float_bits
        return float_total / max(self.storage_bits(), 1)


def quantize_layer_lut(lut: LayerLUT, prototype_bits: int = 8, table_bits: int = 8
                       ) -> QuantizedLayerLUT:
    """Quantize one layer's CAM contents (per-group prototype scales)."""
    prototypes = quantize_symmetric(lut.prototypes, prototype_bits, axis=0)
    table = quantize_symmetric(lut.table, table_bits, axis=0)
    return QuantizedLayerLUT(base=lut, prototypes=prototypes, table=table)


def quantize_model_luts(model: Module, prototype_bits: int = 8, table_bits: int = 8
                        ) -> Dict[str, QuantizedLayerLUT]:
    """Quantize every PECAN layer of ``model``; keys are qualified layer names."""
    from repro.cam.lut import build_model_luts

    return {name: quantize_layer_lut(lut, prototype_bits, table_bits)
            for name, lut in build_model_luts(model).items()}


def apply_quantized_luts(model: Module, quantized: Dict[str, QuantizedLayerLUT]) -> Module:
    """Return a deep copy of ``model`` whose PECAN layers carry the dequantized values.

    The copy can be fed to :class:`~repro.cam.CAMInferenceEngine` (or evaluated
    directly) to measure the accuracy impact of the chosen word widths.
    """
    import copy

    from repro.pecan.convert import pecan_layers

    model = copy.deepcopy(model)
    layers = dict(pecan_layers(model))
    for name, qlut in quantized.items():
        if name not in layers:
            raise KeyError(f"model has no PECAN layer named {name!r}")
        layer = layers[name]
        layer.codebook.prototypes.data = qlut.prototypes.dequantize()
        # Weights are only used through the LUT at deployment; emulate the
        # quantized table by keeping weights but snapping prototypes, except in
        # distance mode where the table is read directly — there we also check
        # consistency by rebuilding the table from the snapped prototypes.
    return model


def match_agreement(lut: LayerLUT, quantized: QuantizedLayerLUT,
                    queries: np.ndarray) -> float:
    """Fraction of CAM matches unchanged by quantization.

    ``queries`` has shape ``(d, L)`` and is matched against group 0 of both the
    float and the fixed-point prototypes (distance mode).  This is the metric
    that determines PECAN-D's quantization robustness: as long as the winner
    is unchanged, the retrieved LUT column — and hence the layer output — only
    shifts by the table's quantization error.
    """
    if lut.mode is not PECANMode.DISTANCE:
        raise ValueError("match_agreement is defined for distance-mode LUTs")
    float_protos = lut.prototypes[0]
    quant_protos = quantized.prototypes.dequantize()[0]
    float_winners = np.abs(queries[:, None, :] - float_protos[:, :, None]).sum(axis=0).argmin(axis=0)
    quant_winners = np.abs(queries[:, None, :] - quant_protos[:, :, None]).sum(axis=0).argmin(axis=0)
    return float(np.mean(float_winners == quant_winners))
