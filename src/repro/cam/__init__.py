"""CAM / lookup-table inference: the deployment half of PECAN (Algorithm 1).

After training, each PECAN layer's weight-prototype products are precomputed
into a lookup table (``Y^(j) = W₁^(j) C^(j)``) and inference reduces to

1. a similarity search of every input subvector against the ``p`` prototypes
   of its group — the content-addressable-memory operation, and
2. a table lookup (PECAN-D) or a weighted sum of table columns (PECAN-A).

This package provides:

* :mod:`repro.cam.lut` — LUT construction from trained layers,
* :mod:`repro.cam.cam_array` — a behavioural model of the CAM macro
  (match-line evaluations, energy/latency accounting),
* :mod:`repro.cam.inference` — the lookup-only inference engine that swaps the
  training-graph forward of every PECAN layer for Algorithm 1,
* :mod:`repro.cam.verify` — operation tracing that proves PECAN-D inference
  uses zero multiplications and checks LUT inference matches the training
  graph bit-for-bit.
"""

from repro.cam.lut import LayerLUT, build_layer_lut, build_model_luts
from repro.cam.cam_array import CAMArray, CAMStats, CAMEnergyModel
from repro.cam.inference import CAMInferenceEngine, lut_inference
from repro.cam.verify import OpCounter, trace_inference_ops, assert_multiplier_free

__all__ = [
    "LayerLUT",
    "build_layer_lut",
    "build_model_luts",
    "CAMArray",
    "CAMStats",
    "CAMEnergyModel",
    "CAMInferenceEngine",
    "lut_inference",
    "OpCounter",
    "trace_inference_ops",
    "assert_multiplier_free",
]
