"""CAM / lookup-table inference: the deployment half of PECAN (Algorithm 1).

After training, each PECAN layer's weight-prototype products are precomputed
into a lookup table (``Y^(j) = W₁^(j) C^(j)``) and inference reduces to

1. a similarity search of every input subvector against the ``p`` prototypes
   of its group — the content-addressable-memory operation, and
2. a table lookup (PECAN-D) or a weighted sum of table columns (PECAN-A).

This package provides:

* :mod:`repro.cam.layer_lut` — the :class:`LayerLUT` deployment artifact
  (import-lean: no training dependencies),
* :mod:`repro.cam.lut` — LUT construction from trained layers,
* :mod:`repro.cam.cam_array` — a behavioural model of the CAM macro
  (match-line evaluations, energy/latency accounting),
* :mod:`repro.cam.counters` — per-layer operation counters (import-lean),
* :mod:`repro.cam.runtime` — the autograd-free per-layer Algorithm-1 kernels
  shared by the model engine and the serving stack,
* :mod:`repro.cam.inference` — the lookup-only inference engine: a thin
  executor over the :mod:`repro.ir` graph whose PECAN nodes run Algorithm 1,
* :mod:`repro.cam.verify` — operation tracing that proves PECAN-D inference
  uses zero multiplications and checks LUT inference matches the training
  graph bit-for-bit.

Re-exports resolve lazily (PEP 562) so the serving stack can import the lean
modules (``layer_lut``, ``cam_array``, ``counters``, ``runtime``) without
loading autograd.
"""

import importlib

#: Lazily resolved re-exports: attribute name -> providing submodule.
_EXPORTS = {
    "LayerLUT": "repro.cam.layer_lut",
    "PrunedLayerLUT": "repro.cam.layer_lut",
    "total_memory_footprint": "repro.cam.layer_lut",
    "build_layer_lut": "repro.cam.lut",
    "build_model_luts": "repro.cam.lut",
    "CAMArray": "repro.cam.cam_array",
    "CAMStats": "repro.cam.cam_array",
    "CAMEnergyModel": "repro.cam.cam_array",
    "LUTLayerRuntime": "repro.cam.runtime",
    "CAMInferenceEngine": "repro.cam.inference",
    "lut_inference": "repro.cam.inference",
    "LayerOpCount": "repro.cam.counters",
    "OpCounter": "repro.cam.counters",
    "MultiplierUsageError": "repro.cam.counters",
    "trace_inference_ops": "repro.cam.verify",
    "assert_multiplier_free": "repro.cam.verify",
}

__all__ = list(_EXPORTS)


def __getattr__(name):
    try:
        module_name = _EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    value = getattr(importlib.import_module(module_name), name)
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))
