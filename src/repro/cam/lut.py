"""Lookup-table construction (Algorithm 1, lines 1–4).

This module builds :class:`~repro.cam.layer_lut.LayerLUT` deployment artifacts
from *live* trained PECAN layers, so it imports the training stack.  The
``LayerLUT`` dataclass itself (and the pruning helpers) live in
:mod:`repro.cam.layer_lut`, which is import-lean so the serving path can use
exported LUTs without autograd; both names are re-exported here for backwards
compatibility.
"""

from __future__ import annotations

from typing import Dict, Union

from repro.cam.layer_lut import (  # noqa: F401  (re-exported API)
    LayerLUT,
    PrunedLayerLUT,
    total_memory_footprint,
)
from repro.nn.module import Module
from repro.pecan.convert import pecan_layers
from repro.pecan.layers import PECANConv2d, PECANLinear


def build_layer_lut(layer: Union[PECANConv2d, PECANLinear], name: str = "") -> LayerLUT:
    """Build the deployment LUT for one trained PECAN layer."""
    if not isinstance(layer, (PECANConv2d, PECANLinear)):
        raise TypeError(f"expected a PECAN layer, got {type(layer).__name__}")
    table = layer.build_lookup_table()
    bias = layer.bias.data.copy() if layer.bias is not None else None
    if isinstance(layer, PECANConv2d):
        return LayerLUT(
            name=name, kind="conv", mode=layer.config.mode,
            prototypes=layer.codebook.prototypes.data.copy(), table=table, bias=bias,
            temperature=layer.config.temperature, kernel_size=layer.kernel_size,
            stride=layer.stride, padding=layer.padding, in_channels=layer.in_channels,
            out_channels=layer.out_channels,
            group_permutation=None if layer.group_layout == "channel" else layer._perm.copy())
    return LayerLUT(
        name=name, kind="fc", mode=layer.config.mode,
        prototypes=layer.codebook.prototypes.data.copy(), table=table, bias=bias,
        temperature=layer.config.temperature, in_channels=layer.in_features,
        out_channels=layer.out_features)


def build_model_luts(model: Module) -> Dict[str, LayerLUT]:
    """LUTs for every PECAN layer of ``model``, keyed by qualified name."""
    return {name: build_layer_lut(layer, name=name) for name, layer in pecan_layers(model)}
