"""Experiment configuration dataclass and presets.

Every table/figure bench builds its workloads from :class:`ExperimentConfig`.
Two presets are provided:

* :data:`QUICK_DEFAULTS` — reduced width / few epochs / small synthetic
  datasets, sized so the whole benchmark suite runs on a CPU in minutes.  This
  is what the benches use by default.
* :data:`PAPER_DEFAULTS` — paper-scale settings (full width, 150–300 epochs,
  full dataset sizes).  Not run in CI, but available so the same code path can
  reproduce the original scale given enough compute.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional


@dataclass
class ExperimentConfig:
    """A single training/evaluation run.

    Attributes mirror the command-line flags published with the paper
    (Appendix E): dataset, architecture, batch size, epochs, learning rate,
    decay schedule and the query metric (dot vs adder, i.e. PECAN-A vs -D).
    """

    # Workload
    dataset: str = "cifar10"
    arch: str = "resnet20"                 # registry name, may carry _pecan_a/_pecan_d suffix
    num_classes: Optional[int] = None      # derived from the dataset when None

    # Model scale (reproduction knob; 1.0 = paper scale)
    width_multiplier: float = 1.0

    # Data scale (reproduction knob; paper uses the full datasets)
    num_train: int = 512
    num_test: int = 256
    image_size: Optional[int] = None       # dataset default when None

    # Optimization
    batch_size: int = 64
    epochs: int = 150
    learning_rate: float = 0.01
    lr_decay_step: int = 50
    lr_decay_gamma: float = 0.1
    optimizer: str = "adam"
    strategy: str = "co"                   # "co" or "uni"
    grad_clip: Optional[float] = 5.0
    # Pretrain the conventional baseline for this many epochs before converting
    # to PECAN (the paper's MNIST recipe: start uni-optimization from a mature
    # CNN).  0 = build the PECAN model from scratch (co-optimization recipe).
    pretrain_epochs: int = 0

    # PQ specifics
    temperature: Optional[float] = None    # per-mode default when None
    init_codebooks_from_data: bool = True
    prototype_cap: Optional[int] = None    # clamp p for reduced-scale runs (None = paper p)

    # Reproducibility
    seed: int = 0

    # Free-form extras forwarded to the model constructor
    model_kwargs: Dict[str, object] = field(default_factory=dict)

    def dataset_num_classes(self) -> int:
        if self.num_classes is not None:
            return self.num_classes
        return {"mnist": 10, "cifar10": 10, "cifar100": 100, "tiny_imagenet": 200}.get(
            self.dataset.lower().replace("-", "_"), 10)

    def with_arch(self, arch: str) -> "ExperimentConfig":
        """Copy of this config targeting a different architecture string."""
        return replace(self, arch=arch)

    def scaled_for_quick_run(self) -> "ExperimentConfig":
        """Copy of this config shrunk to the quick-run preset scale."""
        return replace(self, **QUICK_DEFAULTS)


#: Reduced-scale settings used by the benchmark suite (CPU minutes, not GPU days).
QUICK_DEFAULTS: Dict[str, object] = {
    "width_multiplier": 0.25,
    "num_train": 192,
    "num_test": 96,
    "batch_size": 32,
    "epochs": 3,
    "learning_rate": 0.01,
    "lr_decay_step": 2,
}

#: Paper-scale settings (Section 4 implementation details).
PAPER_DEFAULTS: Dict[str, object] = {
    "width_multiplier": 1.0,
    "num_train": 50_000,
    "num_test": 10_000,
    "batch_size": 64,
    "epochs": 150,
    "learning_rate": 0.01,
    "lr_decay_step": 50,
}
