"""Experiment runner: dataset + model + trainer + op counting in one call.

:func:`run_experiment` executes one :class:`ExperimentConfig` end to end and
returns an :class:`ExperimentResult` holding the trained model, accuracy,
training history and analytic op counts — everything the table benches need.
:func:`run_comparison` runs a family of architectures (baseline, PECAN-A,
PECAN-D, ...) on the same data and returns results keyed by method name,
mirroring the row structure of the paper's Tables 2–4.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.data import DataLoader, make_dataset
from repro.data.datasets import SyntheticImageClassification
from repro.experiments.config import ExperimentConfig
from repro.hardware.opcount import ModelOpReport, count_model_ops
from repro.models.registry import build_model
from repro.nn.module import Module
from repro.optim import SGD, Adam, StepLR
from repro.pecan.convert import pecan_layers
from repro.pecan.training import (
    PECANTrainer,
    TrainingStrategy,
    initialize_codebooks_from_data,
)


@dataclass
class ExperimentResult:
    """Outcome of one experiment run."""

    config: ExperimentConfig
    model: Module
    accuracy: float
    train_accuracy: float
    history: Dict[str, List[float]]
    op_report: ModelOpReport
    seconds: float
    extra: Dict[str, object] = field(default_factory=dict)

    @property
    def additions(self) -> int:
        return self.op_report.additions

    @property
    def multiplications(self) -> int:
        return self.op_report.multiplications

    def summary(self) -> Dict[str, object]:
        return {
            "arch": self.config.arch,
            "dataset": self.config.dataset,
            "accuracy": round(self.accuracy, 4),
            "additions": self.additions,
            "multiplications": self.multiplications,
            "seconds": round(self.seconds, 2),
        }


def _build_loaders(config: ExperimentConfig
                   ) -> Tuple[DataLoader, DataLoader, SyntheticImageClassification,
                              SyntheticImageClassification]:
    kwargs = {"num_train": config.num_train, "num_test": config.num_test, "seed": config.seed}
    if config.image_size is not None:
        kwargs["image_size"] = config.image_size
    if config.num_classes is not None:
        kwargs["num_classes"] = config.num_classes
    train_set, test_set = make_dataset(config.dataset, **kwargs)
    train_loader = DataLoader(train_set, batch_size=config.batch_size, shuffle=True,
                              seed=config.seed)
    test_loader = DataLoader(test_set, batch_size=config.batch_size, shuffle=False)
    return train_loader, test_loader, train_set, test_set


def _build_optimizer(config: ExperimentConfig, model: Module):
    params = model.parameters()
    if config.optimizer.lower() == "sgd":
        return SGD(params, lr=config.learning_rate, momentum=0.9, weight_decay=1e-4)
    return Adam(params, lr=config.learning_rate)


def run_experiment(config: ExperimentConfig, verbose: bool = False) -> ExperimentResult:
    """Run one configuration end to end (train, evaluate, count ops)."""
    start = time.time()
    rng = np.random.default_rng(config.seed)
    train_loader, test_loader, train_set, _ = _build_loaders(config)

    num_classes = config.dataset_num_classes()
    in_channels, image_size, _ = train_set.image_shape
    build_kwargs = dict(num_classes=num_classes, width_multiplier=config.width_multiplier,
                        rng=rng, prototype_cap=config.prototype_cap,
                        in_channels=in_channels, image_size=image_size,
                        **config.model_kwargs)

    is_pecan_arch = config.arch.lower().endswith(("_pecan_a", "_pecan_d"))
    pretrained_baseline: Optional[Module] = None
    if is_pecan_arch and config.pretrain_epochs > 0:
        # Paper's uni-optimization recipe: train the conventional CNN first,
        # then convert it (copying weights) and learn only the prototypes.
        baseline_arch = config.arch.lower().rsplit("_pecan_", 1)[0]
        pretrained_baseline = build_model(baseline_arch, **build_kwargs)
        pre_optimizer = _build_optimizer(config, pretrained_baseline)
        pre_scheduler = StepLR(pre_optimizer, step_size=config.lr_decay_step,
                               gamma=config.lr_decay_gamma)
        pre_trainer = PECANTrainer(pretrained_baseline, optimizer=pre_optimizer,
                                   scheduler=pre_scheduler, grad_clip=config.grad_clip)
        pre_trainer.fit(train_loader, test_loader, epochs=config.pretrain_epochs,
                        verbose=verbose)

    model = build_model(config.arch, from_baseline=pretrained_baseline, **build_kwargs)

    is_pecan = bool(pecan_layers(model))
    if is_pecan and config.init_codebooks_from_data:
        initialize_codebooks_from_data(model, train_loader, rng=rng)

    optimizer = _build_optimizer(config, model)
    scheduler = StepLR(optimizer, step_size=config.lr_decay_step, gamma=config.lr_decay_gamma)
    # The uni-optimization strategy only makes sense for PECAN models (it freezes
    # everything except prototypes); conventional baselines always co-optimize.
    strategy = TrainingStrategy.parse(config.strategy) if is_pecan \
        else TrainingStrategy.CO_OPTIMIZATION
    trainer = PECANTrainer(model, optimizer=optimizer, scheduler=scheduler,
                           strategy=strategy, grad_clip=config.grad_clip)
    history = trainer.fit(train_loader, test_loader, epochs=config.epochs, verbose=verbose)

    accuracy = history.final_accuracy
    train_accuracy = history.records[-1].train_accuracy if history.records else 0.0
    op_report = count_model_ops(model, train_set.image_shape, model_name=config.arch)

    return ExperimentResult(
        config=config,
        model=model,
        accuracy=accuracy,
        train_accuracy=train_accuracy,
        history=history.as_dict(),
        op_report=op_report,
        seconds=time.time() - start,
    )


def run_comparison(base_config: ExperimentConfig, archs: Iterable[str],
                   verbose: bool = False) -> Dict[str, ExperimentResult]:
    """Run several architectures on the same dataset configuration.

    Returns a mapping ``arch -> result`` preserving the input order, which the
    table benches turn directly into paper-style rows (Baseline / PECAN-A /
    PECAN-D).
    """
    results: Dict[str, ExperimentResult] = {}
    for arch in archs:
        results[arch] = run_experiment(base_config.with_arch(arch), verbose=verbose)
    return results
