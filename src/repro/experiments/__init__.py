"""Experiment harness: configuration, training runner and table formatting."""

from repro.experiments.config import ExperimentConfig, QUICK_DEFAULTS, PAPER_DEFAULTS
from repro.experiments.runner import ExperimentResult, run_experiment, run_comparison
from repro.experiments.tables import format_table, results_to_rows

__all__ = [
    "ExperimentConfig",
    "QUICK_DEFAULTS",
    "PAPER_DEFAULTS",
    "ExperimentResult",
    "run_experiment",
    "run_comparison",
    "format_table",
    "results_to_rows",
]
