"""Formatting helpers turning experiment results into paper-style tables."""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from repro.experiments.runner import ExperimentResult
from repro.hardware.opcount import format_count


def results_to_rows(results: Mapping[str, ExperimentResult],
                    labels: Optional[Mapping[str, str]] = None) -> List[Dict[str, object]]:
    """Convert a comparison run into rows with the paper's column layout.

    Columns: Model (method label), #Add., #Mul., Accuracy (%).
    """
    labels = labels or {}
    rows = []
    for arch, result in results.items():
        rows.append({
            "method": labels.get(arch, arch),
            "additions": result.additions,
            "multiplications": result.multiplications,
            "add_str": format_count(result.additions),
            "mul_str": format_count(result.multiplications),
            "accuracy_percent": round(result.accuracy * 100.0, 2),
        })
    return rows


def format_table(rows: Sequence[Mapping[str, object]], columns: Sequence[str],
                 headers: Optional[Sequence[str]] = None, title: str = "") -> str:
    """Render rows as a plain-text table (the benches print these)."""
    headers = list(headers) if headers is not None else list(columns)
    widths = [len(h) for h in headers]
    text_rows: List[List[str]] = []
    for row in rows:
        cells = ["" if row.get(col) is None else str(row.get(col)) for col in columns]
        text_rows.append(cells)
        widths = [max(w, len(c)) for w, c in zip(widths, cells)]

    def fmt(cells: Iterable[str]) -> str:
        return "  ".join(str(c).ljust(w) for c, w in zip(cells, widths))

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt(headers))
    lines.append(fmt("-" * w for w in widths))
    lines.extend(fmt(cells) for cells in text_rows)
    return "\n".join(lines)
