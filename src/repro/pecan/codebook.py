"""Learnable product-quantization codebooks.

A :class:`Codebook` holds ``D`` codebooks of ``p`` prototypes each, every
prototype being a ``d``-dimensional subvector — the object written ``C^(j)``
in the paper.  It exposes the two assignment schemes (angle / distance), the
reconstruction ``X̃ = C K`` and the usage statistics needed for the Fig. 6
prototype-pruning analysis.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.autograd.tensor import Tensor
from repro.nn.module import Module, Parameter
from repro.pecan.config import PECANMode, PQLayerConfig
from repro.pecan import similarity


class Codebook(Module):
    """``D`` codebooks of ``p`` prototypes of dimension ``d``.

    Parameters
    ----------
    num_groups:
        ``D`` — how many groups the flattened layer input is split into.
    subvector_dim:
        ``d`` — dimension of each subvector / prototype.
    num_prototypes:
        ``p`` — prototypes per codebook.
    init_scale:
        Standard deviation of the Gaussian initialization (overridden if the
        codebook is later re-initialized from data).
    """

    def __init__(self, num_groups: int, subvector_dim: int, num_prototypes: int,
                 init_scale: float = 0.5, rng: Optional[np.random.Generator] = None):
        super().__init__()
        if min(num_groups, subvector_dim, num_prototypes) <= 0:
            raise ValueError("num_groups, subvector_dim and num_prototypes must be positive")
        self.num_groups = num_groups
        self.subvector_dim = subvector_dim
        self.num_prototypes = num_prototypes
        gen = rng if rng is not None else np.random.default_rng()
        self.prototypes = Parameter(
            gen.standard_normal((num_groups, subvector_dim, num_prototypes)) * init_scale)

    # ------------------------------------------------------------------ #
    # Initialization helpers
    # ------------------------------------------------------------------ #
    def initialize_from_data(self, x_grouped: np.ndarray,
                             rng: Optional[np.random.Generator] = None,
                             kmeans_iters: int = 5) -> None:
        """Re-initialize prototypes from real subvectors with a few k-means steps.

        ``x_grouped`` has shape ``(N, D, d, L)`` (the grouped im2col output of a
        representative batch).  Good initialization substantially speeds up
        prototype convergence, mirroring the k-means init of classical PQ
        (Jegou et al., 2011) that the paper builds on.
        """
        gen = rng if rng is not None else np.random.default_rng()
        n, d_groups, dim, length = x_grouped.shape
        if d_groups != self.num_groups or dim != self.subvector_dim:
            raise ValueError("x_grouped shape does not match the codebook configuration")
        samples = x_grouped.transpose(1, 0, 3, 2).reshape(self.num_groups, n * length, dim)
        new_protos = np.empty_like(self.prototypes.data)
        for j in range(self.num_groups):
            group = samples[j]
            count = group.shape[0]
            chosen = gen.choice(count, size=self.num_prototypes, replace=count < self.num_prototypes)
            centers = group[chosen].copy()
            for _ in range(kmeans_iters):
                distances = np.abs(group[:, None, :] - centers[None, :, :]).sum(axis=-1)
                labels = distances.argmin(axis=1)
                for m in range(self.num_prototypes):
                    members = group[labels == m]
                    if members.shape[0] > 0:
                        centers[m] = np.median(members, axis=0)
            new_protos[j] = centers.T
        self.prototypes.data = new_protos

    # ------------------------------------------------------------------ #
    # Assignment / reconstruction
    # ------------------------------------------------------------------ #
    def assign(self, x_grouped: Tensor, config: PQLayerConfig,
               sharpness: Optional[float] = None, hard: bool = True) -> Tensor:
        """Assignment weights ``K`` for grouped inputs ``(N, D, d, L)``.

        Angle mode returns the softmax attention of Eq. (2); distance mode
        returns the straight-through hard assignment of Eq. (3)–(5).
        """
        if config.mode is PECANMode.ANGLE:
            return similarity.angle_assignment(x_grouped, self.prototypes,
                                               temperature=config.temperature)
        return similarity.distance_assignment(x_grouped, self.prototypes,
                                              temperature=config.temperature,
                                              sharpness=sharpness, hard=hard)

    def reconstruct(self, assignment: Tensor) -> Tensor:
        """Quantized features ``X̃ = C K`` of shape ``(N, D, d, L)``."""
        return similarity.reconstruct(self.prototypes, assignment)

    def quantize(self, x_grouped: Tensor, config: PQLayerConfig,
                 sharpness: Optional[float] = None, hard: bool = True) -> Tensor:
        """Assignment followed by reconstruction (the full PQ approximation)."""
        return self.reconstruct(self.assign(x_grouped, config, sharpness=sharpness, hard=hard))

    # ------------------------------------------------------------------ #
    # Hard indices and usage statistics (Section 5 / Fig. 6)
    # ------------------------------------------------------------------ #
    def hard_indices(self, x_grouped: np.ndarray) -> np.ndarray:
        """Winning prototype index per subvector, shape ``(N, D, L)``."""
        indices, _ = similarity.hard_distance_assignment(np.asarray(x_grouped),
                                                         self.prototypes.data)
        return indices

    def usage_counts(self, x_grouped: np.ndarray) -> np.ndarray:
        """Per-group prototype usage histogram, shape ``(D, p)``.

        This is the quantity plotted in Fig. 6: prototypes with a zero count
        can be pruned together with their lookup-table entries without
        affecting accuracy.
        """
        indices = self.hard_indices(x_grouped)
        flat = indices + np.arange(self.num_groups, dtype=np.int64)[None, :, None] * self.num_prototypes
        counts = np.bincount(flat.reshape(-1), minlength=self.num_groups * self.num_prototypes)
        return counts.reshape(self.num_groups, self.num_prototypes).astype(np.int64)

    def dead_prototypes(self, x_grouped: np.ndarray) -> np.ndarray:
        """Boolean mask ``(D, p)`` of prototypes never selected on ``x_grouped``."""
        return self.usage_counts(x_grouped) == 0

    def extra_repr(self) -> str:
        return (f"D={self.num_groups}, d={self.subvector_dim}, p={self.num_prototypes}")

    # ------------------------------------------------------------------ #
    # Memory accounting (Section 3: p·cin prototypes + cout·cin·p LUT entries)
    # ------------------------------------------------------------------ #
    def num_prototype_values(self) -> int:
        """Number of scalar values stored for the prototypes (``D·d·p``)."""
        return self.num_groups * self.subvector_dim * self.num_prototypes

    def lut_entries(self, out_features: int) -> int:
        """Number of scalar lookup-table entries for a layer with ``cout`` outputs."""
        return self.num_groups * self.num_prototypes * out_features
