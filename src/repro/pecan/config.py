"""Configuration objects for PECAN layers.

A PECAN layer is parameterized by the triple ``(p, D, d)``:

* ``p`` — number of prototypes per codebook,
* ``D`` — number of groups the flattened input rows are split into,
* ``d`` — dimension of each subvector / prototype, with ``D · d = cin · k²``
  for a convolution (``= in_features`` for a fully-connected layer).

The paper's Appendix Tables A2 / A3 give per-layer values; the model zoo in
:mod:`repro.models` reproduces those tables as :class:`PQLayerConfig` maps.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

import numpy as np


def is_identity_permutation(perm: np.ndarray) -> bool:
    """True when applying ``perm`` to an axis would be a no-op.

    Lives here (the import-lean config module) because both the training-side
    layers and the deployment-side :mod:`repro.cam.layer_lut` normalize
    identity permutations with it — one definition, one notion of "identity".
    """
    return bool(np.array_equal(perm, np.arange(perm.shape[0])))


class PECANMode(str, enum.Enum):
    """The two similarity-measure variants of the paper."""

    ANGLE = "angle"          # PECAN-A: dot-product + softmax attention (Eq. 2)
    DISTANCE = "distance"    # PECAN-D: l1 template matching + argmax (Eq. 3)

    @classmethod
    def parse(cls, value) -> "PECANMode":
        """Accept ``PECANMode``, ``"angle"``/``"distance"`` or ``"a"``/``"d"``."""
        if isinstance(value, cls):
            return value
        text = str(value).strip().lower()
        if text in ("angle", "a", "pecan-a", "dot"):
            return cls.ANGLE
        if text in ("distance", "d", "pecan-d", "adder", "l1"):
            return cls.DISTANCE
        raise ValueError(f"unknown PECAN mode {value!r}")


@dataclass
class PQLayerConfig:
    """Product-quantization settings for one layer.

    Parameters
    ----------
    num_prototypes:
        ``p`` — prototypes per codebook.
    subvector_dim:
        ``d`` — prototype dimension.  ``None`` means "use the layer's natural
        dimension" (``k²`` for convolutions, which is the paper's default).
    mode:
        Angle- or distance-based similarity.
    temperature:
        Softmax temperature ``τ`` (paper: 1.0 for PECAN-A, 0.5 for PECAN-D).
    """

    num_prototypes: int = 8
    subvector_dim: Optional[int] = None
    mode: PECANMode = PECANMode.ANGLE
    temperature: float = 1.0

    def __post_init__(self):
        self.mode = PECANMode.parse(self.mode)
        if self.num_prototypes <= 0:
            raise ValueError("num_prototypes must be positive")
        if self.subvector_dim is not None and self.subvector_dim <= 0:
            raise ValueError("subvector_dim must be positive when given")
        if self.temperature <= 0:
            raise ValueError("temperature must be positive")

    def resolve_dim(self, total_dim: int, kernel_size: int = 1) -> int:
        """Resolve ``d`` for a layer whose flattened row count is ``total_dim``.

        Falls back to ``k²`` when unspecified, and validates divisibility.
        """
        d = self.subvector_dim if self.subvector_dim is not None else kernel_size * kernel_size
        if total_dim % d != 0:
            raise ValueError(
                f"subvector dimension d={d} does not divide the flattened input size "
                f"{total_dim} (cin*k*k); choose d so that D = total/d is an integer")
        return d

    def num_groups(self, total_dim: int, kernel_size: int = 1) -> int:
        """``D = (cin · k²) / d``."""
        return total_dim // self.resolve_dim(total_dim, kernel_size)

    @staticmethod
    def default_for(mode: PECANMode, num_prototypes: Optional[int] = None,
                    subvector_dim: Optional[int] = None) -> "PQLayerConfig":
        """Paper-default config for a mode: τ=1/p=8 for A, τ=0.5/p=64 for D."""
        mode = PECANMode.parse(mode)
        if mode is PECANMode.ANGLE:
            return PQLayerConfig(num_prototypes=num_prototypes or 8,
                                 subvector_dim=subvector_dim, mode=mode, temperature=1.0)
        return PQLayerConfig(num_prototypes=num_prototypes or 64,
                             subvector_dim=subvector_dim, mode=mode, temperature=0.5)
