"""Training strategies for PECAN: co-optimization and uni-optimization.

The paper (Section 4, Table 6) uses two strategies:

* **co-optimization** — train weights *and* prototypes jointly from scratch
  (used for CIFAR-10/100);
* **uni-optimization** — freeze pretrained convolution / FC weights and train
  only the prototypes (used for the LeNet5 / MNIST experiment).

:class:`PECANTrainer` wraps the epoch loop, the per-epoch sign-gradient
schedule ``a = exp(4e/E)`` (Eq. 6), learning-rate decay and evaluation, and
records a history usable by the benchmark harness.
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.autograd import functional as F
from repro.autograd.tensor import Tensor, no_grad
from repro.data.loader import DataLoader
from repro.nn.module import Module
from repro.optim import Adam, LRScheduler, Optimizer
from repro.pecan.convert import pecan_layers


class TrainingStrategy(str, enum.Enum):
    """The two optimization strategies compared in Table 6."""

    CO_OPTIMIZATION = "co"      # weights + prototypes, from scratch
    UNI_OPTIMIZATION = "uni"    # prototypes only, weights frozen (pretrained)

    @classmethod
    def parse(cls, value) -> "TrainingStrategy":
        if isinstance(value, cls):
            return value
        text = str(value).strip().lower()
        if text in ("co", "co-opt", "co_optimization", "scratch", "joint"):
            return cls.CO_OPTIMIZATION
        if text in ("uni", "uni-opt", "uni_optimization", "freeze", "frozen"):
            return cls.UNI_OPTIMIZATION
        raise ValueError(f"unknown training strategy {value!r}")


def set_model_epoch(model: Module, epoch: int, total_epochs: int) -> None:
    """Propagate the epoch-aware sign-gradient schedule to every PECAN layer."""
    for _, layer in pecan_layers(model):
        layer.set_epoch(epoch, total_epochs)


def apply_strategy(model: Module, strategy: TrainingStrategy) -> None:
    """Freeze / unfreeze parameters according to the chosen strategy.

    Uni-optimization freezes every parameter except codebook prototypes;
    co-optimization leaves everything trainable.
    """
    strategy = TrainingStrategy.parse(strategy)
    if strategy is TrainingStrategy.CO_OPTIMIZATION:
        model.unfreeze()
        return
    model.freeze()
    for _, layer in pecan_layers(model):
        layer.codebook.prototypes.requires_grad = True


def co_optimize(model: Module) -> Module:
    """Mark all parameters trainable (weights + prototypes from scratch)."""
    apply_strategy(model, TrainingStrategy.CO_OPTIMIZATION)
    return model


def uni_optimize(model: Module) -> Module:
    """Freeze weights, leave only the codebook prototypes trainable."""
    apply_strategy(model, TrainingStrategy.UNI_OPTIMIZATION)
    return model


def initialize_codebooks_from_data(model: Module, loader: DataLoader,
                                   max_batches: int = 1,
                                   rng: Optional[np.random.Generator] = None,
                                   modes: Tuple[str, ...] = ("distance",)) -> None:
    """Warm-start codebooks from real activation subvectors.

    Runs a few forward passes, captures each PECAN layer's grouped im2col
    input and re-initializes the prototypes with a short l1 k-means — the
    classical PQ initialization the paper's end-to-end training refines.

    By default only **distance-mode** layers are re-initialized: the k-means
    centroids match PECAN-D's l1-nearest assignment, but for PECAN-A they
    cluster the prototypes into near-parallel directions, which collapses the
    dot-product attention and stalls training (angle-mode layers keep their
    random, direction-diverse initialization).  Pass
    ``modes=("distance", "angle")`` to force initialization of both.
    """
    from repro.pecan.config import PECANMode

    wanted = {PECANMode.parse(mode) for mode in modes}
    layers = [layer for _, layer in pecan_layers(model) if layer.config.mode in wanted]
    if not layers:
        return
    captured: Dict[int, List[np.ndarray]] = {id(layer): [] for layer in layers}

    originals = {}
    for layer in layers:
        originals[id(layer)] = layer.codebook.assign

        def make_hook(this_layer):
            original_assign = this_layer.codebook.assign

            def hooked(grouped, config, sharpness=None, hard=True):
                captured[id(this_layer)].append(np.asarray(grouped.data))
                return original_assign(grouped, config, sharpness=sharpness, hard=hard)

            return hooked

        layer.codebook.assign = make_hook(layer)

    model.eval()
    with no_grad():
        for batch_index, (images, _) in enumerate(loader):
            if batch_index >= max_batches:
                break
            model(Tensor(images))
    model.train()

    for layer in layers:
        layer.codebook.assign = originals[id(layer)]
        samples = captured[id(layer)]
        if samples:
            layer.codebook.initialize_from_data(np.concatenate(samples, axis=0), rng=rng)


@dataclass
class EpochRecord:
    """Metrics recorded after each training epoch."""

    epoch: int
    train_loss: float
    train_accuracy: float
    test_accuracy: float
    learning_rate: float
    seconds: float


@dataclass
class TrainingHistory:
    """Full training trace returned by :class:`PECANTrainer.fit`."""

    records: List[EpochRecord] = field(default_factory=list)

    def append(self, record: EpochRecord) -> None:
        self.records.append(record)

    @property
    def best_accuracy(self) -> float:
        return max((r.test_accuracy for r in self.records), default=0.0)

    @property
    def final_accuracy(self) -> float:
        return self.records[-1].test_accuracy if self.records else 0.0

    def as_dict(self) -> Dict[str, List[float]]:
        return {
            "epoch": [r.epoch for r in self.records],
            "train_loss": [r.train_loss for r in self.records],
            "train_accuracy": [r.train_accuracy for r in self.records],
            "test_accuracy": [r.test_accuracy for r in self.records],
            "learning_rate": [r.learning_rate for r in self.records],
        }


class PECANTrainer:
    """Epoch-loop trainer for both conventional and PECAN models.

    Parameters
    ----------
    model:
        The network to train (PECAN layers are detected automatically and get
        the per-epoch sign-gradient schedule).
    optimizer:
        Any :class:`repro.optim.Optimizer`; defaults to Adam as in the paper.
    scheduler:
        Optional learning-rate scheduler stepped once per epoch.
    strategy:
        Co- or uni-optimization; applied to the model at construction time.
    """

    def __init__(self, model: Module, optimizer: Optional[Optimizer] = None,
                 scheduler: Optional[LRScheduler] = None,
                 strategy: TrainingStrategy = TrainingStrategy.CO_OPTIMIZATION,
                 grad_clip: Optional[float] = None):
        self.model = model
        self.strategy = TrainingStrategy.parse(strategy)
        apply_strategy(model, self.strategy)
        self.optimizer = optimizer if optimizer is not None else Adam(model.parameters(), lr=1e-3)
        self.scheduler = scheduler
        self.grad_clip = grad_clip
        self.history = TrainingHistory()

    # ------------------------------------------------------------------ #
    # Core loops
    # ------------------------------------------------------------------ #
    def train_epoch(self, loader: DataLoader) -> Dict[str, float]:
        """One optimization pass over ``loader``; returns mean loss / accuracy."""
        self.model.train()
        total_loss = 0.0
        total_correct = 0.0
        total_samples = 0
        for images, labels in loader:
            inputs = Tensor(images)
            logits = self.model(inputs)
            loss = F.cross_entropy(logits, labels)
            self.optimizer.zero_grad()
            loss.backward()
            if self.grad_clip is not None:
                self.optimizer.clip_grad_norm(self.grad_clip)
            self.optimizer.step()

            batch = labels.shape[0]
            total_loss += float(loss.data) * batch
            total_correct += F.accuracy(logits, labels) * batch
            total_samples += batch
        return {
            "loss": total_loss / max(total_samples, 1),
            "accuracy": total_correct / max(total_samples, 1),
        }

    def evaluate(self, loader: DataLoader) -> float:
        """Top-1 accuracy of the model on ``loader`` (no gradients)."""
        self.model.eval()
        correct = 0.0
        total = 0
        with no_grad():
            for images, labels in loader:
                logits = self.model(Tensor(images))
                correct += F.accuracy(logits, labels) * labels.shape[0]
                total += labels.shape[0]
        return correct / max(total, 1)

    def fit(self, train_loader: DataLoader, test_loader: DataLoader,
            epochs: int, verbose: bool = False) -> TrainingHistory:
        """Train for ``epochs`` epochs, evaluating after each one."""
        for epoch in range(1, epochs + 1):
            start = time.time()
            set_model_epoch(self.model, epoch, epochs)
            train_metrics = self.train_epoch(train_loader)
            test_accuracy = self.evaluate(test_loader)
            if self.scheduler is not None:
                self.scheduler.step()
            record = EpochRecord(
                epoch=epoch,
                train_loss=train_metrics["loss"],
                train_accuracy=train_metrics["accuracy"],
                test_accuracy=test_accuracy,
                learning_rate=self.optimizer.lr,
                seconds=time.time() - start,
            )
            self.history.append(record)
            if verbose:  # pragma: no cover - console output only
                print(f"epoch {epoch:3d}  loss {record.train_loss:.4f}  "
                      f"train acc {record.train_accuracy:.3f}  test acc {record.test_accuracy:.3f}")
        return self.history
