"""Conversion of conventional models into PECAN models.

Two workflows from the paper are supported:

* **co-optimization** — build the PECAN model from scratch (random weights and
  prototypes) and train everything jointly;
* **uni-optimization** — start from a pretrained conventional CNN, copy its
  convolution / FC weights into PECAN layers, freeze them and train only the
  prototypes (Section 4.4.2, Table 6).

Batch normalization can be folded into the preceding convolution for
inference (Section 4.2 remarks FLOPs are counted with BN folded); the folding
helpers live here as well.
"""

from __future__ import annotations

import copy
from typing import Callable, Iterator, List, Optional, Tuple, Union

import numpy as np

from repro.nn.layers import BatchNorm2d, Conv2d, Linear
from repro.nn.module import Module
from repro.nn.sequential import Sequential
from repro.pecan.config import PQLayerConfig
from repro.pecan.layers import PECANConv2d, PECANLinear

ConfigProvider = Union[PQLayerConfig, Callable[[int, Module], Optional[PQLayerConfig]]]


def _resolve_config(provider: ConfigProvider, index: int, module: Module
                    ) -> Optional[PQLayerConfig]:
    if callable(provider) and not isinstance(provider, PQLayerConfig):
        return provider(index, module)
    return provider


def convert_to_pecan(model: Module, config: ConfigProvider,
                     skip_first: bool = False, skip_last: bool = False,
                     rng: Optional[np.random.Generator] = None,
                     copy_weights: bool = True) -> Module:
    """Return a deep copy of ``model`` with Conv2d/Linear replaced by PECAN layers.

    Parameters
    ----------
    model:
        The conventional network (its weights are not modified).
    config:
        Either a single :class:`PQLayerConfig` used for every layer, or a
        callable ``(layer_index, module) -> PQLayerConfig | None`` where
        returning ``None`` leaves that layer untouched (used to reproduce the
        per-layer settings of Appendix Tables A2 / A3).
    skip_first / skip_last:
        Leave the first convolution / last linear layer unquantized, as the
        paper does for the ConvMixer TinyImageNet experiment (Appendix D).
    copy_weights:
        Copy the original layer's weights and biases into the PECAN layer
        (required for uni-optimization; co-optimization may retrain anyway).
    """
    model = copy.deepcopy(model)
    replaceable = [(name, parent, child_name, child)
                   for name, parent, child_name, child in _iter_replaceable(model)]
    last_index = len(replaceable) - 1

    for index, (_, parent, child_name, child) in enumerate(replaceable):
        if skip_first and index == 0:
            continue
        if skip_last and index == last_index:
            continue
        layer_config = _resolve_config(config, index, child)
        if layer_config is None:
            continue
        pecan_layer = _convert_layer(child, layer_config, rng=rng, copy_weights=copy_weights)
        parent.add_module(child_name, pecan_layer)
        if isinstance(parent, Sequential):
            parent._layers[int(child_name)] = pecan_layer
    return model


def _iter_replaceable(module: Module, prefix: str = ""
                      ) -> Iterator[Tuple[str, Module, str, Module]]:
    """Yield ``(full_name, parent, child_name, child)`` for every Conv2d/Linear."""
    for child_name, child in list(module._modules.items()):
        full_name = f"{prefix}{child_name}"
        if isinstance(child, (Conv2d, Linear)) and not isinstance(child, (PECANConv2d, PECANLinear)):
            yield full_name, module, child_name, child
        else:
            yield from _iter_replaceable(child, prefix=f"{full_name}.")


def _convert_layer(layer: Module, config: PQLayerConfig,
                   rng: Optional[np.random.Generator], copy_weights: bool) -> Module:
    if isinstance(layer, Conv2d):
        pecan = PECANConv2d(layer.in_channels, layer.out_channels, layer.kernel_size,
                            config=config, stride=layer.stride, padding=layer.padding,
                            bias=layer.bias is not None, rng=rng)
    elif isinstance(layer, Linear):
        pecan = PECANLinear(layer.in_features, layer.out_features, config=config,
                            bias=layer.bias is not None, rng=rng)
    else:  # pragma: no cover - guarded by _iter_replaceable
        raise TypeError(f"cannot convert layer of type {type(layer).__name__}")
    if copy_weights:
        pecan.weight.data = layer.weight.data.copy()
        if layer.bias is not None and pecan.bias is not None:
            pecan.bias.data = layer.bias.data.copy()
    return pecan


def pecan_layers(model: Module) -> List[Tuple[str, Module]]:
    """All PECAN layers of a model as ``(qualified_name, layer)`` pairs."""
    return [(name, module) for name, module in model.named_modules()
            if isinstance(module, (PECANConv2d, PECANLinear))]


def set_pecan_mode_temperature(model: Module, temperature: float) -> None:
    """Override the softmax temperature of every PECAN layer (annealing runs)."""
    for _, layer in pecan_layers(model):
        layer.config.temperature = temperature


# --------------------------------------------------------------------------- #
# Batch-norm folding
# --------------------------------------------------------------------------- #
def fold_batchnorm(conv_weight: np.ndarray, conv_bias: Optional[np.ndarray],
                   bn: BatchNorm2d) -> Tuple[np.ndarray, np.ndarray]:
    """Fold a BatchNorm2d into the preceding convolution's weights and bias.

    Returns the folded ``(weight, bias)``: ``w' = w·γ/σ`` and
    ``b' = (b − μ)·γ/σ + β`` where ``σ = sqrt(running_var + eps)``.
    """
    gamma = bn.weight.data
    beta = bn.bias.data
    mean = bn.running_mean
    std = np.sqrt(bn.running_var + bn.eps)
    scale = gamma / std
    folded_weight = conv_weight * scale.reshape(-1, 1, 1, 1)
    bias = conv_bias if conv_bias is not None else np.zeros_like(mean)
    folded_bias = (bias - mean) * scale + beta
    return folded_weight, folded_bias


def fold_model_batchnorm(model: Module) -> Module:
    """Fold every (Conv2d|PECANConv2d, BatchNorm2d) pair inside Sequential blocks.

    Returns a deep copy with the BN layers replaced by identities; used before
    building the deployment LUTs so the paper's "BN folded at inference"
    convention holds.
    """
    from repro.nn.layers import Identity

    model = copy.deepcopy(model)
    for module in model.modules():
        if not isinstance(module, Sequential):
            continue
        layers = module._layers
        for i in range(len(layers) - 1):
            conv, bn = layers[i], layers[i + 1]
            if isinstance(conv, (Conv2d, PECANConv2d)) and isinstance(bn, BatchNorm2d):
                if conv.bias is None:
                    from repro.nn.module import Parameter
                    conv.bias = Parameter(np.zeros(conv.out_channels))
                folded_w, folded_b = fold_batchnorm(conv.weight.data, conv.bias.data, bn)
                conv.weight.data = folded_w
                conv.bias.data = folded_b
                identity = Identity()
                module.add_module(str(i + 1), identity)
                layers[i + 1] = identity
    return model
