"""Prototype-matching similarity functions (Eq. 2 – Eq. 6 of the paper).

Two schemes are implemented:

* **Angle-based (PECAN-A, Eq. 2)** — attention-style soft assignment:
  ``K_i^(j) = softmax(C^(j)ᵀ X_i^(j) / τ)``.
* **Distance-based (PECAN-D, Eq. 3–6)** — l1 template matching with

  - a Laplacian-kernel softmax relaxation when ``τ ≠ 0`` (Eq. 4),
  - a straight-through estimator combining the hard argmax forward with the
    soft backward (Eq. 5),
  - an epoch-aware ``tanh(a·x)`` replacement of the sign gradient with
    ``a = exp(4·e/E)`` (Eq. 6, Fig. 3).

All functions operate on grouped tensors of shape ``(..., D, d, L)`` for the
inputs and ``(D, d, p)`` for the codebooks, returning assignment tensors of
shape ``(..., D, p, L)``.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.autograd import functional as F
from repro.autograd.tensor import Tensor


def sign_gradient_scale(epoch: int, total_epochs: int) -> float:
    """Sharpness ``a = exp(4·e/E)`` of the tanh sign-gradient approximation (Eq. 6).

    Early in training (``e/E`` small) the surrogate is smooth; as training
    progresses it approaches the sign function (Fig. 3).
    """
    if total_epochs <= 0:
        raise ValueError("total_epochs must be positive")
    ratio = float(np.clip(epoch / total_epochs, 0.0, 1.0))
    return float(np.exp(4.0 * ratio))


def sign_surrogate(x: np.ndarray, sharpness: float) -> np.ndarray:
    """The smooth replacement ``tanh(a·x)`` for ``sgn(x)`` used in Eq. (6)."""
    return np.tanh(sharpness * x)


def l1_distance_smoothed(x: Tensor, prototypes: Tensor,
                         sharpness: Optional[float] = None) -> Tensor:
    """l1 distances ``‖X_i − C_m‖₁`` with an optionally smoothed backward pass.

    Parameters
    ----------
    x:
        Grouped inputs of shape ``(..., d, L)``.
    prototypes:
        Codebook of shape ``(..., d, p)`` (broadcast against ``x``).
    sharpness:
        When ``None`` the exact subgradient (sign) is used.  Otherwise the
        sign is replaced by ``tanh(sharpness · diff)`` per Eq. (6), which is
        what makes PECAN-D trainable.

    Returns
    -------
    Tensor of shape ``(..., p, L)`` holding the distances (non-negative).

    The smoothed sign is *not* retained for the backward pass: the shared
    kernel in :func:`repro.autograd.functional.pairwise_l1_distance`
    recomputes ``tanh(a·(x − c))`` chunk-by-chunk over the column axis, so
    training holds no extra ``(..., p, d, L)`` tensor between forward and
    backward.
    """
    if sharpness is None:
        return F.pairwise_l1_distance(x, prototypes)
    return F.pairwise_l1_distance(
        x, prototypes, sign_fn=lambda diff: sign_surrogate(diff, sharpness))


# --------------------------------------------------------------------------- #
# PECAN-A: angle-based assignment (Eq. 2)
# --------------------------------------------------------------------------- #
def angle_assignment(x_grouped: Tensor, prototypes: Tensor, temperature: float = 1.0) -> Tensor:
    """Soft attention scores ``softmax(C^(j)ᵀ X_i^(j) / τ)`` over the prototypes.

    Parameters
    ----------
    x_grouped:
        ``(N, D, d, L)`` grouped subvectors.
    prototypes:
        ``(D, d, p)`` codebooks (broadcast over the batch dimension).
    temperature:
        Softmax temperature ``τ`` (1.0 in the paper's PECAN-A experiments).

    Returns
    -------
    ``(N, D, p, L)`` assignment weights summing to 1 over the prototype axis.
    """
    scores = F.pairwise_dot(x_grouped, prototypes)
    if temperature != 1.0:
        scores = scores / float(temperature)
    return F.softmax(scores, axis=-2)


# --------------------------------------------------------------------------- #
# PECAN-D: distance-based assignment (Eq. 3 – 6)
# --------------------------------------------------------------------------- #
def soft_distance_assignment(x_grouped: Tensor, prototypes: Tensor, temperature: float = 0.5,
                             sharpness: Optional[float] = None) -> Tensor:
    """Laplacian-kernel softmax relaxation of the argmax assignment (Eq. 4).

    ``K̃_i^(j) = softmax(−‖X_i^(j) − C_m^(j)‖₁ / τ)`` over the prototypes.
    """
    distances = l1_distance_smoothed(x_grouped, prototypes, sharpness=sharpness)
    return F.softmax(-distances / float(temperature), axis=-2)


def hard_distance_assignment(x_grouped: np.ndarray, prototypes: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Hard argmax assignment (Eq. 3), used at inference and in the STE forward.

    Parameters
    ----------
    x_grouped:
        ``(N, D, d, L)`` array (plain NumPy — no gradients needed here).
    prototypes:
        ``(D, d, p)`` array.

    Returns
    -------
    ``(indices, one_hot)`` where ``indices`` has shape ``(N, D, L)`` holding
    the winning prototype per subvector and ``one_hot`` has shape
    ``(N, D, p, L)``.
    """
    # distances: (N, D, p, L)
    diff = x_grouped[..., None, :, :] - np.swapaxes(prototypes[..., None], -3, -2)[None]
    distances = np.abs(diff).sum(axis=-2)
    indices = distances.argmin(axis=-2)                       # (N, D, L)
    p = prototypes.shape[-1]
    one_hot = np.zeros_like(distances)
    np.put_along_axis(one_hot, indices[..., None, :], 1.0, axis=-2)
    return indices, one_hot


def distance_assignment(x_grouped: Tensor, prototypes: Tensor, temperature: float = 0.5,
                        sharpness: Optional[float] = None,
                        hard: bool = True) -> Tensor:
    """Full PECAN-D assignment combining Eq. (3), (4) and (5).

    When ``hard`` is True the forward value is the one-hot argmax assignment
    while the gradient flows through the temperature-relaxed softmax —
    the straight-through construction
    ``K̃(τ≠0) − sg(K̃(τ≠0) − K̃(τ=0))`` of Eq. (5).  When ``hard`` is False the
    soft relaxation itself is returned (useful for warm-up or analysis).
    """
    distances = l1_distance_smoothed(x_grouped, prototypes, sharpness=sharpness)
    soft = F.softmax(-distances / float(temperature), axis=-2)
    if not hard:
        return soft
    # Hard argmax over the same distances (computed once), per Eq. (3).
    indices = distances.data.argmin(axis=-2)
    one_hot = np.zeros_like(distances.data)
    np.put_along_axis(one_hot, indices[..., None, :], 1.0, axis=-2)
    return F.straight_through(soft, one_hot)


def reconstruct(prototypes: Tensor, assignment: Tensor) -> Tensor:
    """Quantized features ``X̃^(j) = C^(j) K^(j)`` (Eq. 2 / Eq. 3 right side).

    ``prototypes``: ``(D, d, p)``; ``assignment``: ``(N, D, p, L)``;
    returns ``(N, D, d, L)``.
    """
    return prototypes.matmul(assignment)


def reconstruct_and_project(weights: Tensor, prototypes: Tensor, assignment: Tensor) -> Tensor:
    """Fused layer output ``Y = Σ_j W₁^(j) C^(j) K^(j)`` in one contraction.

    ``weights``: ``(D, cout, d)``; ``prototypes``: ``(D, d, p)``;
    ``assignment``: ``(N, D, p, L)``; returns ``(N, cout, L)``.

    A single ``einsum`` replaces the reconstruct → per-group matmul → sum
    pipeline of the naive forward, so neither the ``(N, D, d, L)`` quantized
    features nor the ``(N, D, cout, L)`` per-group contributions are ever
    materialized (NumPy contracts ``W C`` into the ``(D, cout, p)`` lookup
    table first — the same product Algorithm 1 precomputes at deployment).
    """
    return F.einsum("god,gdp,ngpl->nol", weights, prototypes, assignment)


def assignment_entropy(assignment: np.ndarray, axis: int = -2, eps: float = 1e-12) -> np.ndarray:
    """Mean entropy of the assignment distribution over prototypes.

    A diagnostic used by the analysis module: near-zero entropy means the soft
    assignment has collapsed onto single prototypes (the PECAN-D regime),
    higher entropy means the attention is spread (PECAN-A regime).
    """
    clipped = np.clip(assignment, eps, 1.0)
    entropy = -(clipped * np.log(clipped)).sum(axis=axis)
    return entropy.mean()
