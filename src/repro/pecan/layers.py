"""PECAN layers: drop-in replacements for ``Conv2d`` and ``Linear``.

Training-time forward pass (Fig. 2a–d of the paper):

1. unfold the input into the im2col matrix ``X`` (``(N, cin·k², L)``),
2. split its rows into ``D`` groups of subvectors of dimension ``d``,
3. match every subvector against the group's ``p`` learned prototypes using
   either the angle (Eq. 2) or distance (Eq. 3–6) similarity,
4. replace the subvectors by their prototype reconstruction ``X̃ = C K``,
5. apply the (optionally frozen) weight matrix: ``Y = Σ_j W₁^(j) X̃^(j)``.

At deployment the products ``W₁^(j) C^(j)`` are precomputed into a lookup
table (Fig. 2e–f, Algorithm 1); :mod:`repro.cam` provides that inference
engine and the layers here expose :meth:`build_lookup_table` for it.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.autograd import functional as F
from repro.autograd.im2col import conv_output_size
from repro.autograd.tensor import Tensor
from repro.nn import init
from repro.nn.module import Module, Parameter
from repro.pecan.codebook import Codebook
from repro.pecan.config import (PECANMode, PQLayerConfig,
                                is_identity_permutation)  # noqa: F401  (re-export)
from repro.pecan.similarity import reconstruct_and_project, sign_gradient_scale


def build_group_permutation(in_channels: int, kernel_size: int, subvector_dim: int
                            ) -> Tuple[np.ndarray, np.ndarray, str]:
    """Row permutation turning im2col rows into contiguous PQ groups.

    The im2col layout is channel-major (row ``c·k² + pos``).  Depending on the
    requested subvector dimension ``d``:

    * ``d`` divides ``k²`` (paper default ``d = k²``, ablation ``d = k``) —
      groups live inside a channel, the identity permutation suffices
      (``"channel"`` layout);
    * otherwise, if ``d`` divides ``cin`` (ablation ``d = cin``) — groups
      gather the same kernel position across channels, so rows are reordered
      position-major (``"spatial"`` layout).

    Returns ``(perm, inverse_perm, layout)`` where applying ``perm`` to the
    row axis produces the grouped ordering and ``inverse_perm`` undoes it.
    """
    k2 = kernel_size * kernel_size
    total = in_channels * k2
    if subvector_dim <= 0 or total % subvector_dim != 0:
        raise ValueError(f"subvector dimension {subvector_dim} must divide cin*k*k = {total}")
    identity = np.arange(total)
    if k2 % subvector_dim == 0 or subvector_dim % k2 == 0:
        # Groups stay inside a channel (d ≤ k²) or gather whole channels
        # (d a multiple of k²); the channel-major im2col order is already grouped.
        return identity, identity, "channel"
    if in_channels % subvector_dim == 0:
        # Ablation layout d = cin (Fig. 4): groups gather the same kernel
        # position across channels, so rows are reordered position-major.
        pos, chan = np.meshgrid(np.arange(k2), np.arange(in_channels), indexing="ij")
        perm = (chan * k2 + pos).reshape(-1)
        inverse = np.argsort(perm)
        return perm, inverse, "spatial"
    # Generic setting of Table 1 (D·d = cin·k² with d unrelated to k² or cin):
    # contiguous blocks of the channel-major rows.
    return identity, identity, "channel"


class PECANLayerMixin:
    """Shared behaviour of PECAN layers: epoch schedule and PQ bookkeeping."""

    config: PQLayerConfig
    codebook: Codebook

    def set_epoch(self, epoch: int, total_epochs: int) -> None:
        """Update the epoch-aware sign-gradient sharpness ``a = exp(4e/E)`` (Eq. 6)."""
        self._sharpness = sign_gradient_scale(epoch, total_epochs)

    @property
    def sharpness(self) -> Optional[float]:
        """Current tanh sharpness; ``None`` selects the exact sign subgradient."""
        return getattr(self, "_sharpness", None)

    @property
    def mode(self) -> PECANMode:
        return self.config.mode

    def pq_shape(self) -> Tuple[int, int, int]:
        """The layer's ``(p, D, d)`` triple."""
        return (self.codebook.num_prototypes, self.codebook.num_groups,
                self.codebook.subvector_dim)


class PECANConv2d(Module, PECANLayerMixin):
    """Convolution realized by product quantization + prototype matching.

    Parameters mirror :class:`repro.nn.Conv2d` plus a :class:`PQLayerConfig`.
    The ``weight`` tensor keeps the conventional ``(cout, cin, k, k)`` shape so
    pretrained convolution weights can be copied verbatim (uni-optimization).
    """

    def __init__(self, in_channels: int, out_channels: int, kernel_size: int,
                 config: PQLayerConfig, stride: int = 1, padding: int = 0,
                 bias: bool = True, rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self.config = config

        total_dim = in_channels * kernel_size * kernel_size
        self.subvector_dim = config.resolve_dim(total_dim, kernel_size)
        self.num_groups = total_dim // self.subvector_dim
        perm, inverse, layout = build_group_permutation(in_channels, kernel_size, self.subvector_dim)
        self._perm = perm
        self._inverse_perm = inverse
        self.group_layout = layout
        # Identity permutations (the "channel" layout) must never pay for a
        # fancy-index copy — grouping is then a pure reshape view.
        self._perm_is_identity = is_identity_permutation(perm)

        self.weight = Parameter(np.empty((out_channels, in_channels, kernel_size, kernel_size)))
        init.kaiming_normal_(self.weight, rng=rng)
        self.bias: Optional[Parameter] = Parameter(np.zeros(out_channels)) if bias else None
        self.codebook = Codebook(self.num_groups, self.subvector_dim,
                                 config.num_prototypes, rng=rng)

    # ------------------------------------------------------------------ #
    # Grouping helpers
    # ------------------------------------------------------------------ #
    def group_columns(self, cols: Tensor) -> Tensor:
        """``(N, cin·k², L) -> (N, D, d, L)`` applying the group permutation."""
        n = cols.shape[0]
        length = cols.shape[-1]
        permuted = cols if self._perm_is_identity else cols[:, self._perm, :]
        return permuted.reshape(n, self.num_groups, self.subvector_dim, length)

    def ungroup_columns(self, grouped: Tensor) -> Tensor:
        """Inverse of :meth:`group_columns`."""
        n = grouped.shape[0]
        length = grouped.shape[-1]
        flat = grouped.reshape(n, self.num_groups * self.subvector_dim, length)
        if self._perm_is_identity:
            return flat
        return flat[:, self._inverse_perm, :]

    def grouped_weight(self) -> Tensor:
        """Weights reshaped to ``W₁ ∈ R^{D×cout×d}`` (Algorithm 1, line 1)."""
        w_mat = self.weight.reshape(self.out_channels, -1)
        if not self._perm_is_identity:
            w_mat = w_mat[:, self._perm]
        w_grouped = w_mat.reshape(self.out_channels, self.num_groups, self.subvector_dim)
        return w_grouped.transpose(1, 0, 2)

    def unfold_input(self, x: Tensor) -> Tensor:
        """im2col unfolding of the input (differentiable)."""
        return F.unfold(x, self.kernel_size, self.stride, self.padding)

    def output_spatial(self, h: int, w: int) -> Tuple[int, int]:
        return (conv_output_size(h, self.kernel_size, self.stride, self.padding),
                conv_output_size(w, self.kernel_size, self.stride, self.padding))

    # ------------------------------------------------------------------ #
    # Forward
    # ------------------------------------------------------------------ #
    def forward(self, x: Tensor) -> Tensor:
        n, _, h, w = x.shape
        hout, wout = self.output_spatial(h, w)

        cols = self.unfold_input(x)                       # (N, cin*k*k, L)
        grouped = self.group_columns(cols)                # (N, D, d, L)
        assignment = self.codebook.assign(grouped, self.config, sharpness=self.sharpness)
        # Fused Y = Σ_j W₁^(j) C^(j) K^(j): one einsum, no per-group
        # (N, D, cout, L) contributions tensor.
        out = reconstruct_and_project(self.grouped_weight(), self.codebook.prototypes,
                                      assignment)          # (N, cout, L)
        if self.bias is not None:
            out = out + self.bias.reshape(1, self.out_channels, 1)
        return out.reshape(n, self.out_channels, hout, wout)

    # ------------------------------------------------------------------ #
    # Deployment artifacts
    # ------------------------------------------------------------------ #
    def build_lookup_table(self) -> np.ndarray:
        """Precompute ``Y^(j) = W₁^(j) C₁^(j)`` (Algorithm 1, lines 2–4).

        Returns an array of shape ``(D, cout, p)`` — the content stored in the
        CAM/LUT at deployment.
        """
        w_grouped = self.grouped_weight().data             # (D, cout, d)
        prototypes = self.codebook.prototypes.data         # (D, d, p)
        return np.einsum("jod,jdp->jop", w_grouped, prototypes)

    def extra_repr(self) -> str:
        return (f"{self.in_channels}, {self.out_channels}, k={self.kernel_size}, "
                f"stride={self.stride}, padding={self.padding}, mode={self.config.mode.value}, "
                f"p={self.config.num_prototypes}, D={self.num_groups}, d={self.subvector_dim}")


class PECANLinear(Module, PECANLayerMixin):
    """Fully connected layer realized by product quantization.

    The paper treats an FC layer as a ``k = Hout = Wout = 1`` convolution; the
    input features play the role of a single im2col column.
    """

    def __init__(self, in_features: int, out_features: int, config: PQLayerConfig,
                 bias: bool = True, rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.config = config

        self.subvector_dim = config.resolve_dim(in_features, kernel_size=1) \
            if config.subvector_dim is not None else self._default_dim(in_features)
        if in_features % self.subvector_dim != 0:
            raise ValueError(
                f"subvector dimension {self.subvector_dim} must divide in_features={in_features}")
        self.num_groups = in_features // self.subvector_dim

        self.weight = Parameter(np.empty((out_features, in_features)))
        init.kaiming_uniform_(self.weight, rng=rng)
        self.bias: Optional[Parameter] = Parameter(np.zeros(out_features)) if bias else None
        self.codebook = Codebook(self.num_groups, self.subvector_dim,
                                 config.num_prototypes, rng=rng)

    @staticmethod
    def _default_dim(in_features: int) -> int:
        """Largest divisor of ``in_features`` not exceeding 16 (paper's FC setting)."""
        for candidate in range(min(16, in_features), 0, -1):
            if in_features % candidate == 0:
                return candidate
        return 1

    def grouped_weight(self) -> Tensor:
        """Weights reshaped to ``(D, out_features, d)``."""
        return self.weight.reshape(self.out_features, self.num_groups,
                                   self.subvector_dim).transpose(1, 0, 2)

    def group_features(self, x: Tensor) -> Tensor:
        """``(N, in_features) -> (N, D, d, 1)``."""
        n = x.shape[0]
        return x.reshape(n, self.num_groups, self.subvector_dim, 1)

    def forward(self, x: Tensor) -> Tensor:
        n = x.shape[0]
        grouped = self.group_features(x)                   # (N, D, d, 1)
        assignment = self.codebook.assign(grouped, self.config, sharpness=self.sharpness)
        out = reconstruct_and_project(self.grouped_weight(), self.codebook.prototypes,
                                      assignment)          # (N, out, 1)
        out = out.reshape(n, self.out_features)
        if self.bias is not None:
            out = out + self.bias
        return out

    def build_lookup_table(self) -> np.ndarray:
        """Precomputed LUT ``(D, out_features, p)`` for CAM inference."""
        w_grouped = self.grouped_weight().data
        prototypes = self.codebook.prototypes.data
        return np.einsum("jod,jdp->jop", w_grouped, prototypes)

    def extra_repr(self) -> str:
        return (f"{self.in_features}, {self.out_features}, mode={self.config.mode.value}, "
                f"p={self.config.num_prototypes}, D={self.num_groups}, d={self.subvector_dim}")
