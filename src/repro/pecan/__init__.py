"""PECAN: Product-QuantizEd Content Addressable Memory Network layers.

This package implements the paper's primary contribution:

* :mod:`repro.pecan.similarity` — the two end-to-end learnable prototype
  matching schemes: angle-based (Eq. 2, PECAN-A) and distance-based
  (Eq. 3–6, PECAN-D) with the straight-through estimator and the epoch-aware
  sign-gradient relaxation.
* :mod:`repro.pecan.codebook` — the learnable codebooks ``C^(j) ∈ R^{d×p}``.
* :mod:`repro.pecan.layers` — drop-in ``PECANConv2d`` / ``PECANLinear``
  replacements for ``nn.Conv2d`` / ``nn.Linear``.
* :mod:`repro.pecan.config` — per-layer PQ settings ``(p, D, d)`` mirroring
  the paper's Appendix Tables A2 / A3.
* :mod:`repro.pecan.convert` — conversion of a conventional model into a
  PECAN model (including batch-norm folding).
* :mod:`repro.pecan.training` — the co-optimization and uni-optimization
  (frozen weights) training strategies of Section 4.4.2.

Re-exports resolve lazily (PEP 562): the deployment/serving stack only needs
:mod:`repro.pecan.config` (the mode enum and PQ settings, pure dataclasses),
and importing it must not drag in the autograd-backed layer and training
modules.
"""

import importlib

#: Lazily resolved re-exports: attribute name -> providing submodule.
_EXPORTS = {
    "PQLayerConfig": "repro.pecan.config",
    "PECANMode": "repro.pecan.config",
    "Codebook": "repro.pecan.codebook",
    "angle_assignment": "repro.pecan.similarity",
    "distance_assignment": "repro.pecan.similarity",
    "soft_distance_assignment": "repro.pecan.similarity",
    "hard_distance_assignment": "repro.pecan.similarity",
    "sign_gradient_scale": "repro.pecan.similarity",
    "l1_distance_smoothed": "repro.pecan.similarity",
    "PECANConv2d": "repro.pecan.layers",
    "PECANLinear": "repro.pecan.layers",
    "PECANLayerMixin": "repro.pecan.layers",
    "convert_to_pecan": "repro.pecan.convert",
    "fold_batchnorm": "repro.pecan.convert",
    "pecan_layers": "repro.pecan.convert",
    "PECANTrainer": "repro.pecan.training",
    "TrainingStrategy": "repro.pecan.training",
    "set_model_epoch": "repro.pecan.training",
    "co_optimize": "repro.pecan.training",
    "uni_optimize": "repro.pecan.training",
}

__all__ = list(_EXPORTS)


def __getattr__(name):
    try:
        module_name = _EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    value = getattr(importlib.import_module(module_name), name)
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))
