"""PECAN: Product-QuantizEd Content Addressable Memory Network layers.

This package implements the paper's primary contribution:

* :mod:`repro.pecan.similarity` — the two end-to-end learnable prototype
  matching schemes: angle-based (Eq. 2, PECAN-A) and distance-based
  (Eq. 3–6, PECAN-D) with the straight-through estimator and the epoch-aware
  sign-gradient relaxation.
* :mod:`repro.pecan.codebook` — the learnable codebooks ``C^(j) ∈ R^{d×p}``.
* :mod:`repro.pecan.layers` — drop-in ``PECANConv2d`` / ``PECANLinear``
  replacements for ``nn.Conv2d`` / ``nn.Linear``.
* :mod:`repro.pecan.config` — per-layer PQ settings ``(p, D, d)`` mirroring
  the paper's Appendix Tables A2 / A3.
* :mod:`repro.pecan.convert` — conversion of a conventional model into a
  PECAN model (including batch-norm folding).
* :mod:`repro.pecan.training` — the co-optimization and uni-optimization
  (frozen weights) training strategies of Section 4.4.2.
"""

from repro.pecan.config import PQLayerConfig, PECANMode
from repro.pecan.codebook import Codebook
from repro.pecan.similarity import (
    angle_assignment,
    distance_assignment,
    soft_distance_assignment,
    hard_distance_assignment,
    sign_gradient_scale,
    l1_distance_smoothed,
)
from repro.pecan.layers import PECANConv2d, PECANLinear, PECANLayerMixin
from repro.pecan.convert import convert_to_pecan, fold_batchnorm, pecan_layers
from repro.pecan.training import (
    PECANTrainer,
    TrainingStrategy,
    set_model_epoch,
    co_optimize,
    uni_optimize,
)

__all__ = [
    "PQLayerConfig",
    "PECANMode",
    "Codebook",
    "angle_assignment",
    "distance_assignment",
    "soft_distance_assignment",
    "hard_distance_assignment",
    "sign_gradient_scale",
    "l1_distance_smoothed",
    "PECANConv2d",
    "PECANLinear",
    "PECANLayerMixin",
    "convert_to_pecan",
    "fold_batchnorm",
    "pecan_layers",
    "PECANTrainer",
    "TrainingStrategy",
    "set_model_epoch",
    "co_optimize",
    "uni_optimize",
]
