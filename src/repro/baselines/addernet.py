"""AdderNet layers: convolution as negative l1 template matching.

AdderNet (Chen et al., CVPR 2020) replaces the cross-correlation of a CNN by
``Y(o, i) = −Σ_f |X(f, i) − W(o, f)|`` so that inference needs only additions
and absolute differences.  The paper compares PECAN-D against AdderNet in
Table 5; these layers provide the executable comparator.

Gradient conventions follow the AdderNet paper: the weight gradient uses the
full-precision difference ``X − W`` (not its sign), and the input gradient
uses the clipped difference ``clip(W − X, −1, 1)`` (a HardTanh), which keeps
the magnitude information that makes AdderNets trainable.
"""

from __future__ import annotations

import copy
from typing import Optional

import numpy as np

from repro.autograd.im2col import col2im, conv_output_size, im2col
from repro.autograd.tensor import Tensor
from repro.nn import init
from repro.nn.layers import Conv2d, Linear
from repro.nn.module import Module, Parameter
from repro.nn.sequential import Sequential


def _adder_matching(cols: np.ndarray, weight_mat: np.ndarray) -> np.ndarray:
    """``out[n, o, l] = −Σ_f |cols[n, f, l] − weight_mat[o, f]|``."""
    diff = cols[:, None, :, :] - weight_mat[None, :, :, None]
    return -np.abs(diff).sum(axis=2)


class AdderConv2d(Module):
    """Convolution layer using l1 template matching instead of multiplication."""

    def __init__(self, in_channels: int, out_channels: int, kernel_size: int,
                 stride: int = 1, padding: int = 0, bias: bool = True,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self.weight = Parameter(np.empty((out_channels, in_channels, kernel_size, kernel_size)))
        init.kaiming_normal_(self.weight, rng=rng)
        self.bias: Optional[Parameter] = Parameter(np.zeros(out_channels)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        n, cin, h, w = x.shape
        k = self.kernel_size
        hout = conv_output_size(h, k, self.stride, self.padding)
        wout = conv_output_size(w, k, self.stride, self.padding)

        cols = im2col(x.data, k, self.stride, self.padding)      # (N, F, L)
        weight_mat = self.weight.data.reshape(self.out_channels, -1)
        out_data = _adder_matching(cols, weight_mat)             # (N, cout, L)
        if self.bias is not None:
            out_data = out_data + self.bias.data.reshape(1, -1, 1)

        weight = self.weight
        bias = self.bias
        stride, padding = self.stride, self.padding
        parents = (x, weight) if bias is None else (x, weight, bias)

        def backward(grad):
            grad = grad.reshape(n, self.out_channels, hout * wout)      # (N, cout, L)
            diff = cols[:, None, :, :] - weight_mat[None, :, :, None]   # (N, cout, F, L)
            if weight.requires_grad:
                # AdderNet weight gradient: full-precision difference X − W.
                gw = (grad[:, :, None, :] * diff).sum(axis=(0, 3))
                weight._accumulate_grad(gw.reshape(weight.shape))
            if bias is not None and bias.requires_grad:
                bias._accumulate_grad(grad.sum(axis=(0, 2)))
            if x.requires_grad:
                # Input gradient: clipped difference (HardTanh of W − X).
                clipped = np.clip(-diff, -1.0, 1.0)
                gcols = (grad[:, :, None, :] * clipped).sum(axis=1)
                x._accumulate_grad(col2im(gcols, (n, cin, h, w), k, stride, padding))

        out = Tensor.from_op(out_data.reshape(n, self.out_channels, hout, wout),
                             parents, backward)
        return out

    def extra_repr(self) -> str:
        return (f"{self.in_channels}, {self.out_channels}, k={self.kernel_size}, "
                f"stride={self.stride}, padding={self.padding}")


class AdderLinear(Module):
    """Fully-connected layer using l1 template matching."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(np.empty((out_features, in_features)))
        init.kaiming_uniform_(self.weight, rng=rng)
        self.bias: Optional[Parameter] = Parameter(np.zeros(out_features)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        data = x.data                                            # (N, in)
        weight = self.weight
        bias = self.bias
        diff = data[:, None, :] - weight.data[None, :, :]        # (N, out, in)
        out_data = -np.abs(diff).sum(axis=2)
        if bias is not None:
            out_data = out_data + bias.data

        parents = (x, weight) if bias is None else (x, weight, bias)

        def backward(grad):
            if weight.requires_grad:
                weight._accumulate_grad((grad[:, :, None] * diff).sum(axis=0))
            if bias is not None and bias.requires_grad:
                bias._accumulate_grad(grad.sum(axis=0))
            if x.requires_grad:
                clipped = np.clip(-diff, -1.0, 1.0)
                x._accumulate_grad((grad[:, :, None] * clipped).sum(axis=1))

        return Tensor.from_op(out_data, parents, backward)


def convert_to_addernet(model: Module, convert_linear: bool = False) -> Module:
    """Deep-copy ``model`` replacing Conv2d layers (and optionally Linear) by Adder layers.

    Weights are copied so a pretrained CNN can serve as the starting point.
    Batch-norm layers are left in place — the paper's Table 5 note points out
    BN cannot be folded into AdderNet layers, which is why AdderNet retains
    some multiplications in practice.
    """
    model = copy.deepcopy(model)

    def convert(module: Module) -> None:
        for name, child in list(module._modules.items()):
            replacement = None
            if isinstance(child, Conv2d) and type(child) is Conv2d:
                replacement = AdderConv2d(child.in_channels, child.out_channels,
                                          child.kernel_size, stride=child.stride,
                                          padding=child.padding, bias=child.bias is not None)
            elif convert_linear and isinstance(child, Linear) and type(child) is Linear:
                replacement = AdderLinear(child.in_features, child.out_features,
                                          bias=child.bias is not None)
            if replacement is not None:
                replacement.weight.data = child.weight.data.copy()
                if child.bias is not None and replacement.bias is not None:
                    replacement.bias.data = child.bias.data.copy()
                module.add_module(name, replacement)
                if isinstance(module, Sequential):
                    module._layers[int(name)] = replacement
            else:
                convert(child)

    convert(model)
    return model
