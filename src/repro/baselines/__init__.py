"""Baseline multiplication-reduction approaches the paper compares against.

* :mod:`repro.baselines.addernet` — AdderNet-style l1 convolution (Chen et al.,
  2020), the closest comparator in Table 5.
* :mod:`repro.baselines.binary` — XNOR-Net-style binary convolution with a
  per-filter scaling factor and straight-through gradients.
* :mod:`repro.baselines.shift` — DeepShift/ShiftCNN-style power-of-two weight
  quantization (bit-shift multiplication).

These are substrates for the comparison experiments: the paper quotes the BNN
accuracy numbers from their original papers but reasons about the op structure
of CNN vs AdderNet vs PECAN; implementing the baselines lets the Table 5
power/latency comparison be regenerated from first principles and provides
additional comparison points on the synthetic datasets.
"""

from repro.baselines.addernet import AdderConv2d, AdderLinear, convert_to_addernet
from repro.baselines.binary import BinaryConv2d, BinaryLinear, convert_to_binary
from repro.baselines.shift import ShiftConv2d, quantize_to_power_of_two

__all__ = [
    "AdderConv2d",
    "AdderLinear",
    "convert_to_addernet",
    "BinaryConv2d",
    "BinaryLinear",
    "convert_to_binary",
    "ShiftConv2d",
    "quantize_to_power_of_two",
]
