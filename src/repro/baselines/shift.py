"""Power-of-two (shift) weight quantization, in the spirit of ShiftCNN / DeepShift.

Each weight is rounded to ``sign(w) · 2^round(log2|w|)`` so that inference
multiplications become bit shifts and sign flips.  A straight-through
estimator keeps the layer trainable.  This baseline is included because the
paper's Related Work positions PECAN against the shift-network family; it also
provides an extra point for the op-count / accuracy trade-off benches.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.autograd import functional as F
from repro.autograd.tensor import Tensor
from repro.nn import init
from repro.nn.module import Module, Parameter


def quantize_to_power_of_two(weights: np.ndarray, min_exponent: int = -8,
                             max_exponent: int = 0) -> np.ndarray:
    """Round ``weights`` to signed powers of two with exponents in a clamp range.

    Zeros stay zero; other values become ``sign(w)·2^e`` with
    ``e = clip(round(log2 |w|), min_exponent, max_exponent)``.
    """
    magnitude = np.abs(weights)
    result = np.zeros_like(weights)
    nonzero = magnitude > 0
    exponents = np.clip(np.round(np.log2(magnitude[nonzero])), min_exponent, max_exponent)
    result[nonzero] = np.sign(weights[nonzero]) * np.power(2.0, exponents)
    return result


class ShiftConv2d(Module):
    """Convolution whose weights are quantized to powers of two at forward time."""

    def __init__(self, in_channels: int, out_channels: int, kernel_size: int,
                 stride: int = 1, padding: int = 0, bias: bool = True,
                 min_exponent: int = -8, max_exponent: int = 0,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self.min_exponent = min_exponent
        self.max_exponent = max_exponent
        self.weight = Parameter(np.empty((out_channels, in_channels, kernel_size, kernel_size)))
        init.kaiming_normal_(self.weight, rng=rng)
        self.bias: Optional[Parameter] = Parameter(np.zeros(out_channels)) if bias else None

    def shift_weight(self) -> Tensor:
        """Power-of-two weights with straight-through gradients."""
        quantized = quantize_to_power_of_two(self.weight.data, self.min_exponent,
                                             self.max_exponent)
        return F.straight_through(self.weight, quantized)

    def forward(self, x: Tensor) -> Tensor:
        return F.conv2d(x, self.shift_weight(), self.bias,
                        stride=self.stride, padding=self.padding)

    def extra_repr(self) -> str:
        return (f"{self.in_channels}, {self.out_channels}, k={self.kernel_size}, "
                f"exponents=[{self.min_exponent}, {self.max_exponent}]")
