"""Binary (XNOR-Net style) convolution and linear layers.

Weights are binarized to ``α · sign(w)`` with a per-filter scaling factor
``α = mean(|w|)``; gradients flow through the binarization with a
straight-through estimator clipped to ``|w| ≤ 1``.  These layers provide a
first-principles stand-in for the BNN rows (XNOR-Net, IR-Net, ...) whose
accuracies the paper quotes from the literature.
"""

from __future__ import annotations

import copy
from typing import Optional, Tuple

import numpy as np

from repro.autograd import functional as F
from repro.autograd.tensor import Tensor
from repro.nn import init
from repro.nn.layers import Conv2d, Linear
from repro.nn.module import Module, Parameter
from repro.nn.sequential import Sequential


def _binarize(weight: Tensor, per_filter_axis: Tuple[int, ...]) -> Tensor:
    """Return ``α·sign(w)`` with straight-through gradients.

    ``α`` is the mean absolute value over all axes except the output-filter
    axis; the gradient of the sign is approximated by the identity inside the
    clipping region ``|w| ≤ 1`` (the classic STE used by XNOR-Net).
    """
    alpha = np.abs(weight.data).mean(axis=per_filter_axis, keepdims=True)
    hard = np.sign(weight.data)
    hard[hard == 0] = 1.0
    binary = Tensor(alpha * hard)
    mask = (np.abs(weight.data) <= 1.0).astype(weight.data.dtype)
    # forward: binary value; backward: identity masked to the clip region.
    return weight * Tensor(mask) - F.stop_gradient(weight * Tensor(mask)) + binary


class BinaryConv2d(Module):
    """Convolution with binarized weights (activations stay full precision)."""

    def __init__(self, in_channels: int, out_channels: int, kernel_size: int,
                 stride: int = 1, padding: int = 0, bias: bool = True,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self.weight = Parameter(np.empty((out_channels, in_channels, kernel_size, kernel_size)))
        init.kaiming_normal_(self.weight, rng=rng)
        self.bias: Optional[Parameter] = Parameter(np.zeros(out_channels)) if bias else None

    def binary_weight(self) -> Tensor:
        return _binarize(self.weight, per_filter_axis=(1, 2, 3))

    def forward(self, x: Tensor) -> Tensor:
        return F.conv2d(x, self.binary_weight(), self.bias,
                        stride=self.stride, padding=self.padding)


class BinaryLinear(Module):
    """Fully-connected layer with binarized weights."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(np.empty((out_features, in_features)))
        init.kaiming_uniform_(self.weight, rng=rng)
        self.bias: Optional[Parameter] = Parameter(np.zeros(out_features)) if bias else None

    def binary_weight(self) -> Tensor:
        return _binarize(self.weight, per_filter_axis=(1,))

    def forward(self, x: Tensor) -> Tensor:
        return F.linear(x, self.binary_weight(), self.bias)


def convert_to_binary(model: Module, convert_linear: bool = False,
                      skip_first: bool = True, skip_last: bool = True) -> Module:
    """Deep-copy ``model`` replacing Conv2d (and optionally Linear) by binary layers.

    Following common BNN practice (and the paper's Related Work remark that
    most BNNs keep the first and last layers full precision), the first
    convolution and the final linear layer are skipped by default.
    """
    model = copy.deepcopy(model)
    replaceable = []

    def collect(module: Module):
        for name, child in list(module._modules.items()):
            if type(child) is Conv2d or (convert_linear and type(child) is Linear):
                replaceable.append((module, name, child))
            else:
                collect(child)

    collect(model)
    last = len(replaceable) - 1
    for index, (parent, name, child) in enumerate(replaceable):
        if skip_first and index == 0:
            continue
        if skip_last and index == last:
            continue
        if isinstance(child, Conv2d):
            replacement: Module = BinaryConv2d(child.in_channels, child.out_channels,
                                               child.kernel_size, stride=child.stride,
                                               padding=child.padding,
                                               bias=child.bias is not None)
        else:
            replacement = BinaryLinear(child.in_features, child.out_features,
                                       bias=child.bias is not None)
        replacement.weight.data = child.weight.data.copy()
        if child.bias is not None and replacement.bias is not None:
            replacement.bias.data = child.bias.data.copy()
        parent.add_module(name, replacement)
        if isinstance(parent, Sequential):
            parent._layers[int(name)] = replacement
    return model
