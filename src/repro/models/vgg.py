"""VGG-Small: the simplified VGGNet with a single fully-connected layer.

Six 3×3 convolution layers in three pairs (128, 256, 512 channels at paper
scale), each pair followed by 2×2 max pooling, batch normalization and ReLU
after every convolution, and one final linear classifier.  For a 32×32 CIFAR
input the pairs produce 32×32, 16×16 and 8×8 feature maps, matching the
output-map column of Appendix Table A3.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.autograd.tensor import Tensor
from repro.nn import (
    BatchNorm2d,
    Conv2d,
    Flatten,
    Linear,
    MaxPool2d,
    Module,
    ReLU,
    Sequential,
)

#: Paper-scale channel plan: three pairs of convolutions.
VGG_SMALL_CHANNELS: List[int] = [128, 128, 256, 256, 512, 512]


class VGGSmall(Module):
    """VGG-Small for CIFAR-10/100 (Tables 3, 4, 5, 6 and Fig. 5)."""

    def __init__(self, num_classes: int = 10, in_channels: int = 3, image_size: int = 32,
                 width_multiplier: float = 1.0, batch_norm: bool = True,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        channels = [max(1, int(round(c * width_multiplier))) for c in VGG_SMALL_CHANNELS]
        self.channels = channels
        self.num_classes = num_classes
        self.image_size = image_size

        layers = []
        previous = in_channels
        for index, width in enumerate(channels):
            layers.append(Conv2d(previous, width, 3, padding=1, bias=not batch_norm, rng=rng))
            if batch_norm:
                layers.append(BatchNorm2d(width))
            layers.append(ReLU())
            if index % 2 == 1:
                layers.append(MaxPool2d(2))
            previous = width
        self.features = Sequential(*layers)

        spatial = image_size // 8
        self.flatten = Flatten()
        self.classifier = Linear(channels[-1] * spatial * spatial, num_classes, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        x = self.features(x)
        x = self.flatten(x)
        return self.classifier(x)
