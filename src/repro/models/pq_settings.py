"""Per-layer product-quantization settings from the paper's appendices.

The paper specifies, for every layer of every model, the number of prototypes
``p`` and the subvector dimension ``d`` (Appendix Table A2 for LeNet/MNIST,
Table A3 for VGG-Small / ResNet-20 / ResNet-32 on CIFAR, Appendix D for the
ConvMixer/TinyImageNet run).  This module records those tables verbatim and
exposes *config providers* — callables ``(layer_index, module) -> PQLayerConfig``
that :func:`repro.pecan.convert.convert_to_pecan` consumes.

When models are built at reduced width (the CPU-scale training used in this
reproduction), a paper subvector dimension may no longer divide the layer's
flattened input size; :func:`adapt_subvector_dim` then falls back to the
largest divisor not exceeding the paper value, preserving the spirit of the
setting (documented in EXPERIMENTS.md).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from repro.nn.layers import Conv2d, Linear
from repro.nn.module import Module
from repro.pecan.config import PECANMode, PQLayerConfig

ConfigProvider = Callable[[int, Module], Optional[PQLayerConfig]]

# --------------------------------------------------------------------------- #
# Raw paper settings (p, D, d) per layer
# --------------------------------------------------------------------------- #
#: Appendix Table A2 — LeNet on MNIST, PECAN-A rows: {layer: (p, D, d)}.
LENET_PECAN_A_SETTINGS: Dict[str, Tuple[int, int, int]] = {
    "conv1": (4, 1, 9),
    "conv2": (8, 3, 24),
    "fc1": (8, 25, 16),
    "fc2": (8, 8, 16),
    "fc3": (8, 4, 16),
}

#: Appendix Table A2 — LeNet on MNIST, PECAN-D rows: {layer: (p, D, d)}.
LENET_PECAN_D_SETTINGS: Dict[str, Tuple[int, int, int]] = {
    "conv1": (64, 1, 9),
    "conv2": (64, 8, 9),
    "fc1": (64, 50, 8),
    "fc2": (64, 16, 8),
    "fc3": (64, 8, 8),
}

#: Appendix Table A3 — VGG-Small: per block {(p, d) for A, (p, d) for D},
#: keyed by output-map size; the single FC layer has its own entry.
VGG_SMALL_PECAN_SETTINGS: Dict[str, Dict[str, Tuple[int, int]]] = {
    "conv_32": {"angle": (16, 9), "distance": (32, 3)},
    "conv_16": {"angle": (16, 32), "distance": (32, 3)},
    "conv_8": {"angle": (16, 32), "distance": (32, 3)},
    "fc": {"angle": (16, 16), "distance": (32, 16)},
}

#: Appendix Table A3 — ResNet-20/32: first conv, per-stage convs and FC.
RESNET_PECAN_SETTINGS: Dict[str, Dict[str, Tuple[int, int]]] = {
    "stem": {"angle": (8, 9), "distance": (128, 3)},
    "stage_32": {"angle": (8, 9), "distance": (64, 3)},
    "stage_16": {"angle": (8, 16), "distance": (64, 3)},
    "stage_8": {"angle": (8, 16), "distance": (64, 3)},
    "fc": {"angle": (8, 16), "distance": (64, 4)},
}

#: Appendix D — modified ConvMixer on TinyImageNet.
CONVMIXER_PECAN_SETTINGS: Dict[str, Tuple[int, int]] = {
    "angle": (16, 25),
    "distance": (32, 25),
}


# --------------------------------------------------------------------------- #
# Helpers
# --------------------------------------------------------------------------- #
def adapt_subvector_dim(paper_dim: int, total_dim: int) -> int:
    """Largest divisor of ``total_dim`` that does not exceed ``paper_dim``.

    Returns ``paper_dim`` unchanged when it already divides ``total_dim``
    (always the case at paper scale).
    """
    if total_dim % paper_dim == 0:
        return paper_dim
    for candidate in range(min(paper_dim, total_dim), 0, -1):
        if total_dim % candidate == 0:
            return candidate
    return 1


def _layer_total_dim(module: Module) -> int:
    if isinstance(module, Conv2d):
        return module.in_channels * module.kernel_size * module.kernel_size
    if isinstance(module, Linear):
        return module.in_features
    raise TypeError(f"unsupported layer type {type(module).__name__}")


def _config(mode: PECANMode, p: int, d: int, module: Module) -> PQLayerConfig:
    total = _layer_total_dim(module)
    d = adapt_subvector_dim(d, total)
    temperature = 1.0 if mode is PECANMode.ANGLE else 0.5
    return PQLayerConfig(num_prototypes=p, subvector_dim=d, mode=mode, temperature=temperature)


# --------------------------------------------------------------------------- #
# Config providers per model
# --------------------------------------------------------------------------- #
def lenet_pecan_config(mode) -> ConfigProvider:
    """Provider implementing Appendix Table A2 (layers conv1..fc3 in order)."""
    mode = PECANMode.parse(mode)
    table = LENET_PECAN_A_SETTINGS if mode is PECANMode.ANGLE else LENET_PECAN_D_SETTINGS
    order = ["conv1", "conv2", "fc1", "fc2", "fc3"]

    def provider(index: int, module: Module) -> Optional[PQLayerConfig]:
        if index >= len(order):
            return None
        p, _, d = table[order[index]]
        return _config(mode, p, d, module)

    return provider


def vgg_small_pecan_config(mode) -> ConfigProvider:
    """Provider implementing the VGG-Small rows of Appendix Table A3.

    Layer order: six convolutions (pairs producing 32×32, 16×16, 8×8 maps)
    followed by the single FC classifier.
    """
    mode = PECANMode.parse(mode)
    key = "angle" if mode is PECANMode.ANGLE else "distance"

    def provider(index: int, module: Module) -> Optional[PQLayerConfig]:
        if isinstance(module, Linear):
            p, d = VGG_SMALL_PECAN_SETTINGS["fc"][key]
        elif index < 2:
            p, d = VGG_SMALL_PECAN_SETTINGS["conv_32"][key]
        elif index < 4:
            p, d = VGG_SMALL_PECAN_SETTINGS["conv_16"][key]
        else:
            p, d = VGG_SMALL_PECAN_SETTINGS["conv_8"][key]
        return _config(mode, p, d, module)

    return provider


def resnet_pecan_config(mode, depth: int = 20) -> ConfigProvider:
    """Provider implementing the ResNet rows of Appendix Table A3.

    The per-stage boundaries are derived from ``depth`` (6n+2): layer 0 is the
    stem convolution, then ``2n`` convolutions per stage, then the FC layer.
    """
    mode = PECANMode.parse(mode)
    key = "angle" if mode is PECANMode.ANGLE else "distance"
    blocks_per_stage = (depth - 2) // 6
    convs_per_stage = 2 * blocks_per_stage

    def provider(index: int, module: Module) -> Optional[PQLayerConfig]:
        if isinstance(module, Linear):
            p, d = RESNET_PECAN_SETTINGS["fc"][key]
        elif index == 0:
            p, d = RESNET_PECAN_SETTINGS["stem"][key]
        elif index <= convs_per_stage:
            p, d = RESNET_PECAN_SETTINGS["stage_32"][key]
        elif index <= 2 * convs_per_stage:
            p, d = RESNET_PECAN_SETTINGS["stage_16"][key]
        else:
            p, d = RESNET_PECAN_SETTINGS["stage_8"][key]
        return _config(mode, p, d, module)

    return provider


def convmixer_pecan_config(mode) -> ConfigProvider:
    """Provider implementing Appendix D (ConvMixer on TinyImageNet).

    The first convolution and the final FC layer are left uncompressed by
    passing ``skip_first=True, skip_last=True`` to ``convert_to_pecan``; this
    provider handles the remaining convolutions (k=5 blocks use the paper's
    ``d = 25``; 1×1 convolutions get an adapted dimension).
    """
    mode = PECANMode.parse(mode)
    key = "angle" if mode is PECANMode.ANGLE else "distance"
    p, d = CONVMIXER_PECAN_SETTINGS[key]

    def provider(index: int, module: Module) -> Optional[PQLayerConfig]:
        return _config(mode, p, d, module)

    return provider


def uniform_pecan_config(mode, num_prototypes: Optional[int] = None,
                         subvector_dim: Optional[int] = None) -> ConfigProvider:
    """A provider applying the same ``(p, d)`` to every layer (ablation runs).

    ``subvector_dim=None`` keeps the layer's natural ``k²`` dimension; an FC
    layer receives an adapted divisor of its input size.
    """
    mode = PECANMode.parse(mode)
    base = PQLayerConfig.default_for(mode, num_prototypes=num_prototypes,
                                     subvector_dim=subvector_dim)

    def provider(index: int, module: Module) -> Optional[PQLayerConfig]:
        total = _layer_total_dim(module)
        if subvector_dim is not None:
            d = adapt_subvector_dim(subvector_dim, total)
        elif isinstance(module, Linear):
            d = adapt_subvector_dim(16, total)
        else:
            d = module.kernel_size * module.kernel_size
        return PQLayerConfig(num_prototypes=base.num_prototypes, subvector_dim=d,
                             mode=mode, temperature=base.temperature)

    return provider
