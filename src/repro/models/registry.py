"""Name-based model construction mirroring the paper's ``--arch`` flags.

The released code of the paper exposes architectures as strings such as
``resnet20_pecan_a`` or ``resnet20_pecan_d`` (Appendix E).  This registry
reproduces that interface: a plain name builds the conventional baseline and a
``_pecan_a`` / ``_pecan_d`` suffix builds the converted PECAN model with the
appendix settings.
"""

from __future__ import annotations

import inspect
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.nn.module import Module
from repro.models.convmixer import ConvMixer
from repro.models.lenet import LeNet5
from repro.models.pq_settings import (
    convmixer_pecan_config,
    lenet_pecan_config,
    resnet_pecan_config,
    vgg_small_pecan_config,
)
from repro.models.resnet import resnet20, resnet32
from repro.models.vgg import VGGSmall
from repro.pecan.convert import convert_to_pecan

MODEL_REGISTRY: Dict[str, Callable[..., Module]] = {
    "lenet5": LeNet5,
    "vgg_small": VGGSmall,
    "resnet20": resnet20,
    "resnet32": resnet32,
    "convmixer": ConvMixer,
}

_PECAN_CONFIGS = {
    "lenet5": lambda mode, **kw: lenet_pecan_config(mode),
    "vgg_small": lambda mode, **kw: vgg_small_pecan_config(mode),
    "resnet20": lambda mode, **kw: resnet_pecan_config(mode, depth=20),
    "resnet32": lambda mode, **kw: resnet_pecan_config(mode, depth=32),
    "convmixer": lambda mode, **kw: convmixer_pecan_config(mode),
}

_SKIP_FIRST_LAST = {"convmixer"}


def available_models() -> List[str]:
    """All recognized architecture names, including the PECAN variants."""
    names = []
    for base in MODEL_REGISTRY:
        names.extend([base, f"{base}_pecan_a", f"{base}_pecan_d"])
    return sorted(names)


def build_model(name: str, num_classes: int = 10, width_multiplier: float = 1.0,
                rng: Optional[np.random.Generator] = None,
                prototype_cap: Optional[int] = None,
                from_baseline: Optional[Module] = None, **kwargs) -> Module:
    """Build a model by name, e.g. ``"resnet20"`` or ``"resnet20_pecan_d"``.

    PECAN variants are produced by constructing the conventional baseline and
    converting it with the appendix per-layer settings; the weights of the
    freshly built baseline carry over (so a caller can also load pretrained
    weights into the baseline first and convert manually via
    :func:`repro.pecan.convert.convert_to_pecan`).

    ``prototype_cap`` optionally clamps every layer's number of prototypes
    ``p`` (reduced-scale training runs use this so CPU-scale experiments stay
    tractable; the analytic op-count benches never set it).

    ``from_baseline`` supplies an already-built (typically pretrained)
    conventional model to convert instead of constructing a fresh one — the
    uni-optimization workflow of Section 4.4.2 starts from a mature CNN.
    """
    key = name.lower()
    mode = None
    if key.endswith("_pecan_a"):
        mode, key = "angle", key[: -len("_pecan_a")]
    elif key.endswith("_pecan_d"):
        mode, key = "distance", key[: -len("_pecan_d")]

    if key not in MODEL_REGISTRY:
        raise KeyError(f"unknown model {name!r}; available: {available_models()}")

    if from_baseline is not None:
        base_model = from_baseline
    else:
        constructor = MODEL_REGISTRY[key]
        # Drop keyword arguments the constructor does not accept (e.g. image_size
        # for ResNet, whose CIFAR variant is size-agnostic) so callers can pass a
        # uniform set of dataset-derived kwargs.
        signature = inspect.signature(constructor)
        has_var_keyword = any(p.kind is inspect.Parameter.VAR_KEYWORD
                              for p in signature.parameters.values())
        accepted = kwargs if has_var_keyword else {k: v for k, v in kwargs.items()
                                                   if k in signature.parameters}
        base_model = constructor(num_classes=num_classes,
                                 width_multiplier=width_multiplier, rng=rng, **accepted)
    if mode is None:
        return base_model
    config = _PECAN_CONFIGS[key](mode)
    if prototype_cap is not None:
        config = _cap_prototypes(config, prototype_cap)
    skip = key in _SKIP_FIRST_LAST
    return convert_to_pecan(base_model, config, skip_first=skip, skip_last=skip, rng=rng)


def _cap_prototypes(provider, cap: int):
    """Wrap a per-layer config provider, clamping ``num_prototypes`` to ``cap``."""

    def capped(index, module):
        config = provider(index, module)
        if config is None:
            return None
        config.num_prototypes = min(config.num_prototypes, cap)
        return config

    return capped
