"""Modified ConvMixer for the Tiny-ImageNet experiment (Appendix D, Table A4).

The paper modifies ConvMixer (Trockman & Kolter, 2022) by replacing the
depthwise and pointwise convolutions with conventional convolutions, keeping
the first (patch-embedding) convolution and the final fully-connected layer
uncompressed, with depth 8 and kernel size 5 in every block.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.autograd.tensor import Tensor
from repro.nn import (
    BatchNorm2d,
    Conv2d,
    GELU,
    GlobalAvgPool2d,
    Linear,
    Module,
    ModuleList,
    Sequential,
)


class ConvMixerBlock(Module):
    """One mixer block: k×k conv (residual) followed by a 1×1 conv."""

    def __init__(self, hidden_dim: int, kernel_size: int, rng: Optional[np.random.Generator] = None):
        super().__init__()
        padding = kernel_size // 2
        self.spatial = Sequential(
            Conv2d(hidden_dim, hidden_dim, kernel_size, padding=padding, rng=rng),
            GELU(),
            BatchNorm2d(hidden_dim),
        )
        self.pointwise = Sequential(
            Conv2d(hidden_dim, hidden_dim, 1, rng=rng),
            GELU(),
            BatchNorm2d(hidden_dim),
        )

    def forward(self, x: Tensor) -> Tensor:
        x = self.spatial(x) + x
        return self.pointwise(x)


class ConvMixer(Module):
    """ConvMixer-``depth``/``kernel_size`` with conventional convolutions.

    Parameters follow Appendix D: ``depth = 8``, ``kernel_size = 5`` and a
    64×64 Tiny-ImageNet input.  ``hidden_dim`` and ``patch_size`` default to a
    configuration whose op count lands in the paper's reported range and can
    be reduced (``width_multiplier``) for CPU-scale training.
    """

    def __init__(self, num_classes: int = 200, in_channels: int = 3, image_size: int = 64,
                 hidden_dim: int = 256, depth: int = 8, kernel_size: int = 5,
                 patch_size: int = 8, width_multiplier: float = 1.0,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        hidden = max(1, int(round(hidden_dim * width_multiplier)))
        self.hidden_dim = hidden
        self.depth = depth
        self.kernel_size = kernel_size
        self.patch_size = patch_size
        self.num_classes = num_classes
        self.image_size = image_size

        self.patch_embedding = Sequential(
            Conv2d(in_channels, hidden, patch_size, stride=patch_size, rng=rng),
            GELU(),
            BatchNorm2d(hidden),
        )
        self.blocks = ModuleList([ConvMixerBlock(hidden, kernel_size, rng=rng)
                                  for _ in range(depth)])
        self.pool = GlobalAvgPool2d()
        self.classifier = Linear(hidden, num_classes, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        x = self.patch_embedding(x)
        for block in self.blocks:
            x = block(x)
        x = self.pool(x)
        return self.classifier(x)
