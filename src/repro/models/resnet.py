"""CIFAR-style ResNet-20 / ResNet-32 (He et al., 2016).

Three stages of ``n`` basic blocks (``n = 3`` for ResNet-20, ``n = 5`` for
ResNet-32) with 16/32/64 channels at paper scale, global average pooling and a
linear classifier.  Shortcuts use the parameter-free "option A" (stride-2
subsampling + zero channel padding) so every convolution in the network is a
3×3 layer — exactly the population of layers PECAN quantizes, and consistent
with the paper's op counts (40.55M multiplications for ResNet-20), which leave
no room for 1×1 projection convolutions.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.autograd import functional as F
from repro.autograd.tensor import Tensor
from repro.nn import (BatchNorm2d, Conv2d, GlobalAvgPool2d, Identity, Linear, Module, ReLU, Sequential)


class DownsampleA(Module):
    """Option-A shortcut: subsample spatially by 2 and zero-pad the channels."""

    def __init__(self, in_channels: int, out_channels: int, stride: int):
        super().__init__()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.stride = stride

    def forward(self, x: Tensor) -> Tensor:
        data = x[:, :, ::self.stride, ::self.stride]
        pad_total = self.out_channels - self.in_channels
        if pad_total <= 0:
            return data
        n, _, h, w = data.shape
        zeros_front = Tensor(np.zeros((n, pad_total // 2, h, w), dtype=x.data.dtype))
        zeros_back = Tensor(np.zeros((n, pad_total - pad_total // 2, h, w), dtype=x.data.dtype))
        return F.concatenate([zeros_front, data, zeros_back], axis=1)


class BasicBlock(Module):
    """Two 3×3 convolutions with BN/ReLU and a residual connection."""

    def __init__(self, in_channels: int, out_channels: int, stride: int = 1,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.conv1 = Conv2d(in_channels, out_channels, 3, stride=stride, padding=1,
                            bias=False, rng=rng)
        self.bn1 = BatchNorm2d(out_channels)
        self.relu = ReLU()
        self.conv2 = Conv2d(out_channels, out_channels, 3, stride=1, padding=1,
                            bias=False, rng=rng)
        self.bn2 = BatchNorm2d(out_channels)
        if stride != 1 or in_channels != out_channels:
            self.shortcut: Module = DownsampleA(in_channels, out_channels, stride)
        else:
            self.shortcut = Identity()

    def forward(self, x: Tensor) -> Tensor:
        out = self.relu(self.bn1(self.conv1(x)))
        out = self.bn2(self.conv2(out))
        out = out + self.shortcut(x)
        return self.relu(out)


class ResNetCIFAR(Module):
    """ResNet-(6n+2) for CIFAR: ``depth ∈ {20, 32}`` in the paper."""

    def __init__(self, depth: int = 20, num_classes: int = 10, in_channels: int = 3,
                 width_multiplier: float = 1.0, rng: Optional[np.random.Generator] = None):
        super().__init__()
        if (depth - 2) % 6 != 0:
            raise ValueError("depth must be 6n+2 (e.g. 20, 32, 44)")
        blocks_per_stage = (depth - 2) // 6
        widths = [max(1, int(round(w * width_multiplier))) for w in (16, 32, 64)]
        self.depth = depth
        self.num_classes = num_classes
        self.widths = widths

        self.conv1 = Conv2d(in_channels, widths[0], 3, stride=1, padding=1, bias=False, rng=rng)
        self.bn1 = BatchNorm2d(widths[0])
        self.relu = ReLU()

        self.stage1 = self._make_stage(widths[0], widths[0], blocks_per_stage, stride=1, rng=rng)
        self.stage2 = self._make_stage(widths[0], widths[1], blocks_per_stage, stride=2, rng=rng)
        self.stage3 = self._make_stage(widths[1], widths[2], blocks_per_stage, stride=2, rng=rng)

        self.pool = GlobalAvgPool2d()
        self.fc = Linear(widths[2], num_classes, rng=rng)

    @staticmethod
    def _make_stage(in_channels: int, out_channels: int, blocks: int, stride: int,
                    rng: Optional[np.random.Generator]) -> Sequential:
        layers: List[Module] = [BasicBlock(in_channels, out_channels, stride=stride, rng=rng)]
        for _ in range(blocks - 1):
            layers.append(BasicBlock(out_channels, out_channels, stride=1, rng=rng))
        return Sequential(*layers)

    def forward(self, x: Tensor) -> Tensor:
        x = self.relu(self.bn1(self.conv1(x)))
        x = self.stage1(x)
        x = self.stage2(x)
        x = self.stage3(x)
        x = self.pool(x)
        return self.fc(x)


def resnet20(num_classes: int = 10, width_multiplier: float = 1.0,
             rng: Optional[np.random.Generator] = None) -> ResNetCIFAR:
    """ResNet-20 (Tables 3, 4, Fig. 4, Fig. 6)."""
    return ResNetCIFAR(20, num_classes=num_classes, width_multiplier=width_multiplier, rng=rng)


def resnet32(num_classes: int = 10, width_multiplier: float = 1.0,
             rng: Optional[np.random.Generator] = None) -> ResNetCIFAR:
    """ResNet-32 (Tables 3, 4)."""
    return ResNetCIFAR(32, num_classes=num_classes, width_multiplier=width_multiplier, rng=rng)
