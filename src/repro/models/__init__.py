"""Model zoo: the architectures evaluated in the paper.

* :mod:`repro.models.lenet` — the modified LeNet5 of Appendix Table A1.
* :mod:`repro.models.vgg` — VGG-Small (one fully-connected layer).
* :mod:`repro.models.resnet` — CIFAR ResNet-20 / ResNet-32.
* :mod:`repro.models.convmixer` — the modified ConvMixer of Appendix D.
* :mod:`repro.models.pq_settings` — the per-layer ``(p, D, d)`` settings from
  Appendix Tables A2 / A3 and the TinyImageNet appendix.
* :mod:`repro.models.registry` — name-based constructors mirroring the
  ``--arch resnet20_pecan_a`` style of the paper's released commands.
"""

from repro.models.lenet import LeNet5, LENET_LAYER_SPECS
from repro.models.vgg import VGGSmall, VGG_SMALL_CHANNELS
from repro.models.resnet import ResNetCIFAR, resnet20, resnet32, BasicBlock
from repro.models.convmixer import ConvMixer
from repro.models.pq_settings import (
    lenet_pecan_config,
    vgg_small_pecan_config,
    resnet_pecan_config,
    convmixer_pecan_config,
    LENET_PECAN_A_SETTINGS,
    LENET_PECAN_D_SETTINGS,
    VGG_SMALL_PECAN_SETTINGS,
    RESNET_PECAN_SETTINGS,
)
from repro.models.registry import build_model, MODEL_REGISTRY, available_models

__all__ = [
    "LeNet5",
    "LENET_LAYER_SPECS",
    "VGGSmall",
    "VGG_SMALL_CHANNELS",
    "ResNetCIFAR",
    "resnet20",
    "resnet32",
    "BasicBlock",
    "ConvMixer",
    "lenet_pecan_config",
    "vgg_small_pecan_config",
    "resnet_pecan_config",
    "convmixer_pecan_config",
    "LENET_PECAN_A_SETTINGS",
    "LENET_PECAN_D_SETTINGS",
    "VGG_SMALL_PECAN_SETTINGS",
    "RESNET_PECAN_SETTINGS",
    "build_model",
    "MODEL_REGISTRY",
    "available_models",
]
