"""The modified LeNet5 of the paper (Appendix Table A1).

Structure (for a ``1×28×28`` input):

========  ===========  ======================
layer     kernel       output ``[cout, H, W]``
========  ===========  ======================
CONV1     3×3          ``[8, 26, 26]``
ReLU + MaxPool 2×2     ``[8, 13, 13]``
CONV2     3×3          ``[16, 11, 11]``
ReLU + MaxPool 2×2     ``[16, 5, 5]``
FC1       —            ``[128]``
FC2       —            ``[64]``
FC3       —            ``[10]``
========  ===========  ======================

``width_multiplier`` scales the channel counts for quick CPU experiments; the
op-count benches always use the paper-scale multiplier of 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.autograd.tensor import Tensor
from repro.nn import Conv2d, Flatten, Linear, MaxPool2d, Module, ReLU, Sequential


@dataclass(frozen=True)
class LayerSpec:
    """Static description of one LeNet layer, used by the op-count model."""

    name: str
    kind: str                 # "conv" or "fc"
    in_channels: int
    out_channels: int
    kernel_size: int
    output_hw: Tuple[int, int]


#: Paper-scale layer shapes (Appendix Table A1) for a 28×28 MNIST input.
LENET_LAYER_SPECS: List[LayerSpec] = [
    LayerSpec("conv1", "conv", 1, 8, 3, (26, 26)),
    LayerSpec("conv2", "conv", 8, 16, 3, (11, 11)),
    LayerSpec("fc1", "fc", 400, 128, 1, (1, 1)),
    LayerSpec("fc2", "fc", 128, 64, 1, (1, 1)),
    LayerSpec("fc3", "fc", 64, 10, 1, (1, 1)),
]


class LeNet5(Module):
    """The modified LeNet5 used for the MNIST experiment (Table 2)."""

    def __init__(self, num_classes: int = 10, in_channels: int = 1, image_size: int = 28,
                 width_multiplier: float = 1.0, rng: Optional[np.random.Generator] = None):
        super().__init__()
        c1 = max(1, int(round(8 * width_multiplier)))
        c2 = max(1, int(round(16 * width_multiplier)))
        f1 = max(num_classes, int(round(128 * width_multiplier)))
        f2 = max(num_classes, int(round(64 * width_multiplier)))

        self.features = Sequential(
            Conv2d(in_channels, c1, 3, rng=rng),
            ReLU(),
            MaxPool2d(2),
            Conv2d(c1, c2, 3, rng=rng),
            ReLU(),
            MaxPool2d(2),
        )
        spatial = ((image_size - 2) // 2 - 2) // 2
        self.flatten = Flatten()
        self.classifier = Sequential(
            Linear(c2 * spatial * spatial, f1, rng=rng),
            ReLU(),
            Linear(f1, f2, rng=rng),
            ReLU(),
            Linear(f2, num_classes, rng=rng),
        )
        self.num_classes = num_classes
        self.image_size = image_size

    def forward(self, x: Tensor) -> Tensor:
        x = self.features(x)
        x = self.flatten(x)
        return self.classifier(x)
