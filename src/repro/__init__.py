"""Reproduction of "PECAN: A Product-Quantized Content Addressable Memory Network".

Top-level namespace re-exporting the most commonly used entry points.  See
``README.md`` for a quickstart and ``DESIGN.md`` for the system inventory and
the per-experiment index.

Subpackages
-----------
``repro.autograd``   NumPy reverse-mode autodiff engine (training substrate).
``repro.nn``         Conventional neural-network layers (the baselines).
``repro.optim``      Optimizers and LR schedulers.
``repro.data``       Synthetic dataset substrate (MNIST/CIFAR/TinyImageNet stand-ins).
``repro.pecan``      The paper's contribution: PQ codebooks + PECAN-A/D layers.
``repro.cam``        LUT construction and CAM-style lookup-only inference (Algorithm 1).
``repro.hardware``   Analytic op counts (Table 1) and power/latency cost model (Table 5).
``repro.models``     LeNet5 / VGG-Small / ResNet-20/32 / ConvMixer model zoo.
``repro.baselines``  AdderNet, binary (XNOR) and shift convolution comparators.
``repro.analysis``   Prototype usage, visualization and ablation utilities.
``repro.experiments`` Experiment configs and the training/evaluation runner.
"""

from repro.autograd import Tensor, no_grad
from repro.pecan import (
    PQLayerConfig,
    PECANMode,
    PECANConv2d,
    PECANLinear,
    Codebook,
    convert_to_pecan,
    PECANTrainer,
    TrainingStrategy,
)

__version__ = "1.0.0"

__all__ = [
    "Tensor",
    "no_grad",
    "PQLayerConfig",
    "PECANMode",
    "PECANConv2d",
    "PECANLinear",
    "Codebook",
    "convert_to_pecan",
    "PECANTrainer",
    "TrainingStrategy",
    "__version__",
]
