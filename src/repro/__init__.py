"""Reproduction of "PECAN: A Product-Quantized Content Addressable Memory Network".

Top-level namespace re-exporting the most commonly used entry points.  See
``README.md`` for a quickstart and ``DESIGN.md`` for the system inventory and
the per-experiment index.

Subpackages
-----------
``repro.autograd``   NumPy reverse-mode autodiff engine (training substrate).
``repro.nn``         Conventional neural-network layers (the baselines).
``repro.optim``      Optimizers and LR schedulers.
``repro.data``       Synthetic dataset substrate (MNIST/CIFAR/TinyImageNet stand-ins).
``repro.pecan``      The paper's contribution: PQ codebooks + PECAN-A/D layers.
``repro.cam``        LUT construction and CAM-style lookup-only inference (Algorithm 1).
``repro.hardware``   Analytic op counts (Table 1) and power/latency cost model (Table 5).
``repro.models``     LeNet5 / VGG-Small / ResNet-20/32 / ConvMixer model zoo.
``repro.baselines``  AdderNet, binary (XNOR) and shift convolution comparators.
``repro.analysis``   Prototype usage, visualization and ablation utilities.
``repro.experiments`` Experiment configs and the training/evaluation runner.
``repro.ir``         Graph IR for inference programs (tracing, op registry,
                     executor, optimization passes).
``repro.serve``      Bundle-backed model serving (engines, batching, registry).

The re-exports are resolved lazily (PEP 562) so that deployment-side imports
such as ``import repro.serve`` never load the training substrate (autograd,
optimizers, model zoo); attribute access behaves exactly as before.
"""

import importlib

__version__ = "1.1.0"

#: Lazily resolved re-exports: attribute name -> providing module.
_EXPORTS = {
    "Tensor": "repro.autograd",
    "no_grad": "repro.autograd",
    "PQLayerConfig": "repro.pecan",
    "PECANMode": "repro.pecan",
    "PECANConv2d": "repro.pecan",
    "PECANLinear": "repro.pecan",
    "Codebook": "repro.pecan",
    "convert_to_pecan": "repro.pecan",
    "PECANTrainer": "repro.pecan",
    "TrainingStrategy": "repro.pecan",
}

__all__ = list(_EXPORTS) + ["__version__"]


def __getattr__(name):
    try:
        module_name = _EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    value = getattr(importlib.import_module(module_name), name)
    globals()[name] = value          # cache so the import runs once
    return value


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))
