"""Minimal stdlib client for a running :class:`~repro.serve.server.PECANServer`.

Uses only ``http.client`` so scripts, notebooks and the test suite can talk
to a serving process with no extra dependencies::

    from repro.serve.client import ServeClient
    client = ServeClient("http://127.0.0.1:8080")
    logits = client.predict(images)          # (N, num_classes)
    print(client.metrics()["batching"]["histogram"])

Connections are **kept alive and reused**: each thread holds one persistent
``HTTPConnection`` for its idempotent traffic (every GET, and ``/predict`` —
a pure function of its input), which is what makes the event-loop front
end's keep-alive path the common case instead of a connect/teardown per
request.  A request that fails on a *reused* connection is replayed once on
a fresh socket without consuming the retry budget — a server-side idle reap
or a deploy-cycle restart between two requests is indistinguishable from a
stale keep-alive socket and must not surface to callers.  Non-idempotent
admin verbs always ride a fresh connection that is closed after the
exchange, so they can never hit the stale-socket ambiguity at all.
"""

from __future__ import annotations

import http.client
import json
import random
import threading
import time
import urllib.error
import urllib.parse
import weakref
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.serve.trace import ATTEMPT_HEADER, TRACE_HEADER, new_trace_id

#: Connection-level failures that mean "the socket died under us" — the
#: signature of a pool worker (or the router) being respawned — as opposed to
#: an HTTP-level error the server actually sent.
_TRANSIENT_ERRORS = (ConnectionResetError, BrokenPipeError, ConnectionAbortedError,
                     http.client.RemoteDisconnected, http.client.BadStatusLine)

#: HTTP statuses that mean "come back later" (queue full, brownout shed,
#: draining) — retryable for idempotent requests, honouring ``Retry-After``.
_BACKOFF_STATUSES = (429, 503)


def _close_registry(conns: Dict[int, http.client.HTTPConnection],
                    lock: threading.Lock) -> None:
    """Close and forget every registered connection (module-level so the
    client's ``weakref.finalize`` callback holds no reference to it)."""
    with lock:
        connections = list(conns.values())
        conns.clear()
    for connection in connections:
        try:
            connection.close()
        except OSError:
            pass


def _is_transient(exc: BaseException) -> bool:
    if isinstance(exc, _TRANSIENT_ERRORS):
        return True
    if isinstance(exc, urllib.error.URLError):
        return isinstance(getattr(exc, "reason", None), _TRANSIENT_ERRORS)
    return False


class ServeHTTPError(RuntimeError):
    """Non-2xx response from the serving endpoint.

    ``retry_after_s`` carries the server's ``Retry-After`` hint (seconds)
    when a 429/503 included one — the floor a well-behaved caller should
    back off before retrying.  Structured admin errors
    (:mod:`repro.serve.adminapi`) additionally carry ``code`` (a stable
    machine-readable category such as ``"not-found"``) and ``reason`` (the
    server-side exception class or validation rule) — branch on those
    instead of regex-matching the message.
    """

    def __init__(self, status: int, message: str,
                 retry_after_s: Optional[float] = None,
                 code: Optional[str] = None,
                 reason: Optional[str] = None):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.retry_after_s = retry_after_s
        self.code = code
        self.reason = reason


def _backoff_delay(attempt: int, retry_after_s: Optional[float],
                   base_s: float = 0.1, cap_s: float = 5.0) -> float:
    """Capped exponential backoff with jitter, floored by ``Retry-After``.

    The server's hint is the floor (it knows its own recovery horizon); the
    exponential term spreads retries from many blocked clients so recovery
    is not met by a thundering herd.
    """
    exp = min(base_s * (2.0 ** max(attempt, 0)), cap_s)
    jittered = random.uniform(exp * 0.5, exp)
    if retry_after_s is not None and retry_after_s > 0:
        return min(max(jittered, retry_after_s), cap_s)
    return jittered


class ServeClient:
    """JSON-over-HTTP client mirroring the server's endpoints.

    Idempotent requests (every GET, and ``/predict`` — bundle inference is a
    pure function of its input) are retried once when the connection is torn
    mid-exchange (``ConnectionResetError`` / ``BrokenPipeError`` /
    ``RemoteDisconnected``): that is what a request hitting a worker being
    respawned looks like from the client side, and the router-side retry only
    covers failures *between* router and worker.  Backpressure answers (HTTP
    429/503) on idempotent requests are retried up to ``backoff_retries``
    times with capped exponential backoff + jitter, honouring the server's
    ``Retry-After`` hint as the floor.  Non-idempotent admin operations
    (``deploy``) are never retried on either path — the first attempt may
    have been applied before the connection died.
    """

    def __init__(self, base_url: str, timeout_s: float = 60.0,
                 transient_retries: int = 1,
                 backoff_retries: int = 2,
                 backoff_cap_s: float = 5.0):
        self.base_url = base_url.rstrip("/")
        parsed = urllib.parse.urlsplit(self.base_url)
        if parsed.scheme not in ("http", ""):
            raise ValueError(f"unsupported scheme {parsed.scheme!r}")
        self._host = parsed.hostname or "127.0.0.1"
        self._port = parsed.port or 80
        self.timeout_s = timeout_s
        self.transient_retries = max(int(transient_retries), 0)
        self.backoff_retries = max(int(backoff_retries), 0)
        self.backoff_cap_s = float(backoff_cap_s)
        #: Trace id of the most recent ``/predict`` call (sent or generated).
        self.last_trace_id: Optional[str] = None
        #: Per-thread persistent keep-alive connections (idempotent traffic
        #: only).  Also tracked in one registry so :meth:`close` can release
        #: every thread's socket deterministically.
        self._local = threading.local()
        self._conns: Dict[int, http.client.HTTPConnection] = {}
        self._conns_lock = threading.Lock()
        # Safety net for clients that are dropped without close(): the
        # finalizer holds the registry (keeping the sockets alive until it
        # runs) and releases them before they could be GC'd unclosed.
        self._finalizer = weakref.finalize(
            self, _close_registry, self._conns, self._conns_lock)

    # ------------------------------------------------------------------ #
    # Connection management
    # ------------------------------------------------------------------ #
    def _new_connection(self) -> http.client.HTTPConnection:
        connection = http.client.HTTPConnection(self._host, self._port,
                                                timeout=self.timeout_s)
        connection._repro_used = False         # fresh-socket marker
        return connection

    def _pooled_connection(self) -> http.client.HTTPConnection:
        connection = getattr(self._local, "connection", None)
        if connection is None:
            connection = self._new_connection()
            self._local.connection = connection
        with self._conns_lock:
            # (Re-)register every time: after close() a thread's cached
            # connection transparently reconnects, and it must land back in
            # the registry or the next close() would miss its socket.  A
            # different connection under this ident belongs to a dead
            # thread whose id was recycled — release it, nothing can reach
            # it anymore.
            ident = threading.get_ident()
            previous = self._conns.get(ident)
            if previous is not None and previous is not connection:
                try:
                    previous.close()
                except OSError:
                    pass
            self._conns[ident] = connection
        return connection

    def _drop_pooled_connection(self) -> None:
        connection = getattr(self._local, "connection", None)
        if connection is not None:
            connection.close()
            self._local.connection = None
            with self._conns_lock:
                self._conns.pop(threading.get_ident(), None)

    def close(self) -> None:
        """Release every thread's cached keep-alive connection."""
        _close_registry(self._conns, self._conns_lock)
        self._local.connection = None

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    def _exchange(self, connection: http.client.HTTPConnection, method: str,
                  path: str, data: Optional[bytes],
                  request_headers: Dict[str, str]):
        """One request/response on ``connection``; returns
        ``(status, body, retry_after_s)``.  The body is always read in full —
        the keep-alive contract for reusing the socket afterwards."""
        connection.request(method, path, body=data, headers=request_headers)
        response = connection.getresponse()
        body = response.read()
        retry_after = None
        try:
            retry_after = float(response.headers.get("Retry-After"))
        except (TypeError, ValueError):
            pass
        connection._repro_used = True
        return response.status, body, retry_after

    def _request(self, path: str, payload: Optional[Dict] = None,
                 idempotent: Optional[bool] = None,
                 headers: Optional[Dict[str, str]] = None,
                 trace_id: Optional[str] = None) -> Dict:
        data = json.dumps(payload).encode("utf-8") if payload is not None else None
        method = "POST" if data is not None else "GET"
        if idempotent is None:
            idempotent = data is None          # GETs are always safe to retry
        transient_attempts = 1 + (self.transient_retries if idempotent else 0)
        backoff_attempts = 1 + (self.backoff_retries if idempotent else 0)
        transient = 0
        backoff = 0
        while True:
            request_headers = dict(headers or {})
            if trace_id:
                # Every retry reuses the SAME trace id with an incremented
                # attempt tag: server-side the attempts stitch into one
                # trace, and the runtime-verification plane can compare the
                # retried answer's argmax against the first one.
                request_headers[TRACE_HEADER] = trace_id
                request_headers[ATTEMPT_HEADER] = str(transient + backoff)
            if data:
                request_headers.setdefault("Content-Type", "application/json")
            if idempotent:
                connection = self._pooled_connection()
            else:
                # Admin verbs ride a one-shot connection: a stale keep-alive
                # failure is ambiguous ("did the deploy apply?"), so they
                # must never encounter one.
                connection = self._new_connection()
            reused = bool(getattr(connection, "_repro_used", False))
            try:
                status, body, retry_after = self._exchange(
                    connection, method, path, data, request_headers)
            except Exception as exc:          # noqa: BLE001 - filtered below
                if idempotent:
                    self._drop_pooled_connection()
                else:
                    connection.close()
                if reused and idempotent and _is_transient(exc):
                    # The server reaped this keep-alive socket between
                    # requests (idle timeout, deploy cycle) — that is what a
                    # dead socket under a pooled connection means.  Replaying
                    # on a fresh connection is free and does not consume the
                    # transient budget.  (Timeouts are not transient: they
                    # still surface immediately.)
                    continue
                if not (_is_transient(exc) and transient + 1 < transient_attempts):
                    raise
                transient += 1
                time.sleep(0.05)              # let the respawn win the race
                continue
            finally:
                if not idempotent:
                    connection.close()
            if 200 <= status < 300:
                return json.loads(body.decode("utf-8"))
            code = reason = None
            try:
                error = json.loads(body.decode("utf-8"))
                message = error.get("error", "")
                code = error.get("code")
                reason = error.get("reason")
                if retry_after is None and error.get("retry_after") is not None:
                    retry_after = float(error["retry_after"])
            except Exception:                 # noqa: BLE001 - body may be empty
                message = http.client.responses.get(status, str(status))
            if status in _BACKOFF_STATUSES and backoff + 1 < backoff_attempts:
                backoff += 1
                time.sleep(_backoff_delay(backoff - 1, retry_after,
                                          cap_s=self.backoff_cap_s))
                continue
            raise ServeHTTPError(status, message, retry_after_s=retry_after,
                                 code=code, reason=reason) from None

    # ------------------------------------------------------------------ #
    def predict_response(self, inputs: np.ndarray,
                         model: Optional[str] = None,
                         priority: Optional[str] = None,
                         tenant: Optional[str] = None,
                         deadline_ms: Optional[float] = None,
                         trace_id: Optional[str] = None,
                         no_cache: bool = False) -> Dict:
        """Full JSON response for one ``/predict`` call.

        ``priority`` (``interactive``/``standard``/``batch``), ``tenant`` and
        ``deadline_ms`` (remaining budget) ride in the request body and are
        honoured end to end — front end, router, batcher.  ``trace_id``
        pins the request's distributed-trace id (``X-Trace-Id``); when
        absent one is generated client-side, so the caller can always
        correlate this response with the server's ``/trace`` view.  The id
        used is exposed as :attr:`last_trace_id` and in the returned
        payload's ``trace_id`` field.  ``no_cache=True`` forces a fresh
        engine execution past the server's deterministic response cache
        (and past in-flight coalescing).
        """
        payload: Dict[str, object] = {"inputs": np.asarray(inputs).tolist()}
        if model is not None:
            payload["model"] = model
        if priority is not None:
            payload["priority"] = priority
        if tenant is not None:
            payload["tenant"] = tenant
        if deadline_ms is not None:
            payload["deadline_ms"] = float(deadline_ms)
        if no_cache:
            payload["no_cache"] = True
        trace_id = trace_id or new_trace_id()
        self.last_trace_id = trace_id
        response = self._request("/predict", payload, idempotent=True,
                                 trace_id=trace_id)
        response.setdefault("trace_id", trace_id)
        return response

    def predict(self, inputs: np.ndarray, model: Optional[str] = None,
                **qos) -> np.ndarray:
        """Logits array for one sample or a batch."""
        return np.asarray(self.predict_response(inputs, model=model,
                                                **qos)["outputs"])

    def predict_classes(self, inputs: np.ndarray,
                        model: Optional[str] = None, **qos) -> np.ndarray:
        return np.asarray(self.predict_response(inputs, model=model,
                                                **qos)["classes"])

    def metrics(self) -> Dict:
        return self._request("/metrics")

    def trace(self, trace_id: Optional[str] = None) -> Dict:
        """GET ``/trace`` (recent traces) or ``/trace?id=`` (one timeline)."""
        if trace_id:
            return self._request(f"/trace?id={trace_id}")
        return self._request("/trace")

    def models(self) -> Dict:
        return self._request("/models")

    def healthz(self) -> Dict:
        return self._request("/healthz")

    # ------------------------------------------------------------------ #
    # Lifecycle admin API
    # ------------------------------------------------------------------ #
    def deploy(self, name: str, path: str, version: Optional[int] = None,
               **options) -> Dict:
        """POST ``/admin/deploy``: hot-load a new version of base ``name``.

        ``path`` must be readable by the *serving host* (the admin API ships
        the path, not the bytes).  Extra keyword options (pool only):
        ``canary_fraction``, ``min_samples``, ``max_parity_violations``,
        ``max_latency_ratio``, ``auto``.  Not retried: a deploy is not
        idempotent."""
        from repro.serve.adminapi import DeployRequest

        payload: Dict[str, object] = {"name": name, "path": str(path), **options}
        if version is not None:
            payload["version"] = version
        # Round-trip through the shared wire schema: the client sends exactly
        # the bytes the servers validate, so the two cannot drift.
        request = DeployRequest.from_payload(payload)
        return self._request("/admin/deploy", request.to_payload(),
                             idempotent=False)

    def promote(self, name: str, version: Optional[int] = None) -> Dict:
        from repro.serve.adminapi import PromoteRequest

        request = PromoteRequest(name=name, version=version)
        # Promoting to an explicit-or-inferred version is idempotent on the
        # serving side, but inference happens there; stay conservative.
        return self._request("/admin/promote", request.to_payload(),
                             idempotent=False)

    def rollback(self, name: str) -> Dict:
        from repro.serve.adminapi import RollbackRequest

        return self._request("/admin/rollback",
                             RollbackRequest(name=name).to_payload(),
                             idempotent=False)

    def scale(self, workers: int, reason: str = "operator") -> Dict:
        """POST ``/admin/scale`` (pool only): pin the worker target.

        With the autoscaler enabled the pin is clamped into its
        ``[floor, ceiling]`` envelope and scaling resumes from there."""
        from repro.serve.adminapi import ScaleRequest

        request = ScaleRequest(workers=int(workers), reason=reason)
        return self._request("/admin/scale", request.to_payload(),
                             idempotent=False)

    def admin_status(self) -> Dict:
        return self._request("/admin/status")

    def wait_ready(self, timeout_s: float = 10.0) -> bool:
        """Poll ``/healthz`` until the server answers (or the timeout passes)."""
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            try:
                if self.healthz().get("status") == "ok":
                    return True
            except (ServeHTTPError, urllib.error.URLError,
                    http.client.HTTPException, OSError):
                time.sleep(0.05)
        return False


class BulkScorer:
    """Offline bulk scoring that soaks idle capacity but yields to online
    traffic.

    Splits a dataset into chunks of ``chunk_size`` samples and submits each
    at ``batch`` priority — the class the serving plane schedules last,
    budgets inside every micro-batch, and sheds first under overload.  Shed
    or rate-limited chunks (429/503) back off (honouring ``Retry-After``)
    and retry, so a long scoring run rides out brownouts instead of failing;
    persistent refusal past ``max_chunk_retries`` raises.

    The chunk size is the head-of-line-blocking knob: a chunk is one request,
    and one request is never split across micro-batches, so it should stay at
    or below the server's ``batch_class_samples`` budget (the CLI default of
    8 matches the default budget of ``max_batch_size=32 // 4``).
    """

    def __init__(self, client: ServeClient, model: Optional[str] = None,
                 tenant: str = "bulk", chunk_size: int = 8,
                 max_chunk_retries: int = 12,
                 on_chunk: Optional[Callable[[Dict], None]] = None):
        if chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        self.client = client
        self.model = model
        self.tenant = tenant
        self.chunk_size = int(chunk_size)
        self.max_chunk_retries = int(max_chunk_retries)
        self.on_chunk = on_chunk
        self.chunks_total = 0
        self.retries_total = 0
        self.backoff_s_total = 0.0

    def _score_chunk(self, chunk: np.ndarray) -> List[List[float]]:
        for attempt in range(self.max_chunk_retries + 1):
            try:
                response = self.client.predict_response(
                    chunk, model=self.model, priority="batch",
                    tenant=self.tenant)
            except ServeHTTPError as exc:
                if exc.status not in _BACKOFF_STATUSES \
                        or attempt >= self.max_chunk_retries:
                    raise
                delay = _backoff_delay(attempt, exc.retry_after_s)
                self.retries_total += 1
                self.backoff_s_total += delay
                time.sleep(delay)
                continue
            self.chunks_total += 1
            if self.on_chunk is not None:
                self.on_chunk(response)
            return response["outputs"]
        raise RuntimeError("unreachable")      # the loop always returns/raises

    def score(self, inputs: np.ndarray) -> np.ndarray:
        """Score every sample; returns the stacked ``(N, num_classes)`` logits.

        Chunks are submitted sequentially (closed loop): bulk pressure on the
        server is one in-flight request per scorer, and overall bulk
        throughput scales with how much capacity the scheduler grants the
        ``batch`` class — which is exactly the intent.
        """
        inputs = np.asarray(inputs, dtype=np.float64)
        if inputs.ndim == 0 or inputs.shape[0] == 0:
            raise ValueError("score() needs at least one sample")
        outputs: List[List[float]] = []
        for start in range(0, inputs.shape[0], self.chunk_size):
            outputs.extend(self._score_chunk(inputs[start:start + self.chunk_size]))
        return np.asarray(outputs)
