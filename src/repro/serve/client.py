"""Minimal stdlib client for a running :class:`~repro.serve.server.PECANServer`.

Uses only ``urllib`` so scripts, notebooks and the test suite can talk to a
serving process with no extra dependencies::

    from repro.serve.client import ServeClient
    client = ServeClient("http://127.0.0.1:8080")
    logits = client.predict(images)          # (N, num_classes)
    print(client.metrics()["batching"]["histogram"])
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Dict, Optional

import numpy as np


class ServeHTTPError(RuntimeError):
    """Non-2xx response from the serving endpoint."""

    def __init__(self, status: int, message: str):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status


class ServeClient:
    """JSON-over-HTTP client mirroring the server's endpoints."""

    def __init__(self, base_url: str, timeout_s: float = 60.0):
        self.base_url = base_url.rstrip("/")
        self.timeout_s = timeout_s

    # ------------------------------------------------------------------ #
    def _request(self, path: str, payload: Optional[Dict] = None) -> Dict:
        url = f"{self.base_url}{path}"
        data = json.dumps(payload).encode("utf-8") if payload is not None else None
        request = urllib.request.Request(
            url, data=data,
            headers={"Content-Type": "application/json"} if data else {},
            method="POST" if data is not None else "GET")
        try:
            with urllib.request.urlopen(request, timeout=self.timeout_s) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            try:
                message = json.loads(exc.read().decode("utf-8")).get("error", "")
            except Exception:                 # noqa: BLE001 - body may be empty
                message = exc.reason
            raise ServeHTTPError(exc.code, message) from None

    # ------------------------------------------------------------------ #
    def predict_response(self, inputs: np.ndarray,
                         model: Optional[str] = None) -> Dict:
        """Full JSON response for one ``/predict`` call."""
        payload: Dict[str, object] = {"inputs": np.asarray(inputs).tolist()}
        if model is not None:
            payload["model"] = model
        return self._request("/predict", payload)

    def predict(self, inputs: np.ndarray, model: Optional[str] = None) -> np.ndarray:
        """Logits array for one sample or a batch."""
        return np.asarray(self.predict_response(inputs, model=model)["outputs"])

    def predict_classes(self, inputs: np.ndarray,
                        model: Optional[str] = None) -> np.ndarray:
        return np.asarray(self.predict_response(inputs, model=model)["classes"])

    def metrics(self) -> Dict:
        return self._request("/metrics")

    def models(self) -> Dict:
        return self._request("/models")

    def healthz(self) -> Dict:
        return self._request("/healthz")

    def wait_ready(self, timeout_s: float = 10.0) -> bool:
        """Poll ``/healthz`` until the server answers (or the timeout passes)."""
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            try:
                if self.healthz().get("status") == "ok":
                    return True
            except (ServeHTTPError, urllib.error.URLError, OSError):
                time.sleep(0.05)
        return False
