"""Minimal stdlib client for a running :class:`~repro.serve.server.PECANServer`.

Uses only ``urllib`` so scripts, notebooks and the test suite can talk to a
serving process with no extra dependencies::

    from repro.serve.client import ServeClient
    client = ServeClient("http://127.0.0.1:8080")
    logits = client.predict(images)          # (N, num_classes)
    print(client.metrics()["batching"]["histogram"])
"""

from __future__ import annotations

import http.client
import json
import time
import urllib.error
import urllib.request
from typing import Dict, Optional

import numpy as np

#: Connection-level failures that mean "the socket died under us" — the
#: signature of a pool worker (or the router) being respawned — as opposed to
#: an HTTP-level error the server actually sent.
_TRANSIENT_ERRORS = (ConnectionResetError, BrokenPipeError, ConnectionAbortedError,
                     http.client.RemoteDisconnected, http.client.BadStatusLine)


def _is_transient(exc: BaseException) -> bool:
    if isinstance(exc, _TRANSIENT_ERRORS):
        return True
    if isinstance(exc, urllib.error.URLError):
        return isinstance(getattr(exc, "reason", None), _TRANSIENT_ERRORS)
    return False


class ServeHTTPError(RuntimeError):
    """Non-2xx response from the serving endpoint."""

    def __init__(self, status: int, message: str):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status


class ServeClient:
    """JSON-over-HTTP client mirroring the server's endpoints.

    Idempotent requests (every GET, and ``/predict`` — bundle inference is a
    pure function of its input) are retried once when the connection is torn
    mid-exchange (``ConnectionResetError`` / ``BrokenPipeError`` /
    ``RemoteDisconnected``): that is what a request hitting a worker being
    respawned looks like from the client side, and the router-side retry only
    covers failures *between* router and worker.  Non-idempotent admin
    operations (``deploy``) are never retried — the first attempt may have
    been applied before the connection died.
    """

    def __init__(self, base_url: str, timeout_s: float = 60.0,
                 transient_retries: int = 1):
        self.base_url = base_url.rstrip("/")
        self.timeout_s = timeout_s
        self.transient_retries = max(int(transient_retries), 0)

    # ------------------------------------------------------------------ #
    def _request(self, path: str, payload: Optional[Dict] = None,
                 idempotent: Optional[bool] = None) -> Dict:
        url = f"{self.base_url}{path}"
        data = json.dumps(payload).encode("utf-8") if payload is not None else None
        if idempotent is None:
            idempotent = data is None          # GETs are always safe to retry
        attempts = 1 + (self.transient_retries if idempotent else 0)
        for attempt in range(attempts):
            request = urllib.request.Request(
                url, data=data,
                headers={"Content-Type": "application/json"} if data else {},
                method="POST" if data is not None else "GET")
            try:
                with urllib.request.urlopen(request,
                                            timeout=self.timeout_s) as response:
                    return json.loads(response.read().decode("utf-8"))
            except urllib.error.HTTPError as exc:
                try:
                    message = json.loads(exc.read().decode("utf-8")).get("error", "")
                except Exception:             # noqa: BLE001 - body may be empty
                    message = exc.reason
                raise ServeHTTPError(exc.code, message) from None
            except Exception as exc:          # noqa: BLE001 - filtered below
                if not (_is_transient(exc) and attempt + 1 < attempts):
                    raise
                time.sleep(0.05)              # let the respawn win the race

    # ------------------------------------------------------------------ #
    def predict_response(self, inputs: np.ndarray,
                         model: Optional[str] = None) -> Dict:
        """Full JSON response for one ``/predict`` call."""
        payload: Dict[str, object] = {"inputs": np.asarray(inputs).tolist()}
        if model is not None:
            payload["model"] = model
        return self._request("/predict", payload, idempotent=True)

    def predict(self, inputs: np.ndarray, model: Optional[str] = None) -> np.ndarray:
        """Logits array for one sample or a batch."""
        return np.asarray(self.predict_response(inputs, model=model)["outputs"])

    def predict_classes(self, inputs: np.ndarray,
                        model: Optional[str] = None) -> np.ndarray:
        return np.asarray(self.predict_response(inputs, model=model)["classes"])

    def metrics(self) -> Dict:
        return self._request("/metrics")

    def models(self) -> Dict:
        return self._request("/models")

    def healthz(self) -> Dict:
        return self._request("/healthz")

    # ------------------------------------------------------------------ #
    # Lifecycle admin API
    # ------------------------------------------------------------------ #
    def deploy(self, name: str, path: str, version: Optional[int] = None,
               **options) -> Dict:
        """POST ``/admin/deploy``: hot-load a new version of base ``name``.

        ``path`` must be readable by the *serving host* (the admin API ships
        the path, not the bytes).  Extra keyword options (pool only):
        ``canary_fraction``, ``min_samples``, ``max_parity_violations``,
        ``max_latency_ratio``, ``auto``.  Not retried: a deploy is not
        idempotent."""
        payload: Dict[str, object] = {"name": name, "path": str(path), **options}
        if version is not None:
            payload["version"] = version
        return self._request("/admin/deploy", payload, idempotent=False)

    def promote(self, name: str, version: Optional[int] = None) -> Dict:
        payload: Dict[str, object] = {"name": name}
        if version is not None:
            payload["version"] = version
        # Promoting to an explicit-or-inferred version is idempotent on the
        # serving side, but inference happens there; stay conservative.
        return self._request("/admin/promote", payload, idempotent=False)

    def rollback(self, name: str) -> Dict:
        return self._request("/admin/rollback", {"name": name},
                             idempotent=False)

    def admin_status(self) -> Dict:
        return self._request("/admin/status")

    def wait_ready(self, timeout_s: float = 10.0) -> bool:
        """Poll ``/healthz`` until the server answers (or the timeout passes)."""
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            try:
                if self.healthz().get("status") == "ok":
                    return True
            except (ServeHTTPError, urllib.error.URLError, OSError):
                time.sleep(0.05)
        return False
