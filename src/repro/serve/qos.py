"""The QoS plane: priority classes, tenancy, deadlines, fairness, brownout.

Until now every request through :mod:`repro.serve` was equal: one queue, one
class of traffic, and overload was a blunt 429 at a fixed queue bound.  One
misbehaving tenant — or a perfectly well-behaved bulk scoring job — could blow
the p99 of every interactive client.  This module is the shared vocabulary
and machinery that makes the serving plane safe to oversubscribe:

* **Priority classes** (:data:`PRIORITY_CLASSES`): ``interactive`` >
  ``standard`` > ``batch``.  Requests carry their class end to end (HTTP
  front end → router → batcher) and every scheduling decision is
  priority-ordered.
* **Deadlines**: an absolute per-request deadline, parsed once at the front
  end and *propagated* — the router forwards the remaining budget, so a
  request doomed to time out is shed before it wastes engine time, with
  queue-time diagnostics on the 408.
* **Per-tenant fairness** (:class:`FairScheduler`): a bounded set of dispatch
  slots fronted by weighted-fair per-tenant queues with strict
  priority-ordered grant, so one tenant's burst cannot starve the others.
* **Rate limits** (:class:`TokenBucket` / :class:`TokenBucketTable`):
  optional per-tenant token buckets, refused work gets a ``Retry-After``
  hint.
* **Brownout** (:class:`BrownoutController`): an EWMA detector over queue
  depth and p99 latency that degrades through explicit, observable states —
  ``healthy → shed-batch → shed-standard → emergency`` — shedding the lowest
  class first and publishing its state, load score and per-class shed
  counters in ``/metrics``.

The design follows the overload detector and QoE-centric router of vLLM's
production stack, scaled to this repo; making the shed decisions explicit
states (rather than emergent queue behaviour) is what lets the tests assert
runtime-verification style invariants like *"no interactive request was
dropped while batch work was admitted"*.
"""

from __future__ import annotations

import random
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from repro.serve.scheduler import (DEFAULT_PRIORITY, DEFAULT_TENANT,
                                   PRIORITY_CLASSES, QueueFullError,
                                   RequestTimeout)

_PRIORITY_INDEX = {name: index for index, name in enumerate(PRIORITY_CLASSES)}


def priority_index(priority: str) -> int:
    """Numeric rank of ``priority`` (0 = most important); raises on unknown."""
    try:
        return _PRIORITY_INDEX[priority]
    except KeyError:
        raise ValueError(f"unknown priority class {priority!r}; "
                         f"expected one of {PRIORITY_CLASSES}") from None


class ShedError(RuntimeError):
    """The request was refused by the QoS plane (not by the engine).

    Carries the HTTP status the front end should answer with and a
    ``Retry-After`` hint in seconds so well-behaved clients back off instead
    of hammering an overloaded server.
    """

    def __init__(self, message: str, *, status: int = 503,
                 retry_after_s: float = 1.0, reason: str = "shed"):
        super().__init__(message)
        self.status = status
        self.retry_after_s = retry_after_s
        self.reason = reason


def connection_budget_shed(limit: int,
                           retry_after_s: float = 1.0) -> ShedError:
    """The refusal for a connection past the front end's budget.

    Connection-level overload rides the same wire shape as a brownout shed
    (``{error, reason, retry_after_s}`` body + ``Retry-After`` header), so
    one client-side backoff path — :class:`~repro.serve.client.ServeClient`
    honouring 503 + ``Retry-After`` — handles both.  The reason string
    distinguishes the layers in metrics and logs.
    """
    return ShedError(
        f"connection budget exhausted ({limit} open connections)",
        status=503, retry_after_s=retry_after_s, reason="connection-budget")


# --------------------------------------------------------------------------- #
# Request QoS descriptor + parsing
# --------------------------------------------------------------------------- #
@dataclass
class RequestQoS:
    """Everything the scheduling layers need to know about one request.

    ``deadline`` is absolute ``time.monotonic()`` seconds (or ``None``) so it
    survives propagation across queues without clock re-anchoring inside one
    process; across the router→worker HTTP hop it travels as the *remaining*
    budget in milliseconds (:meth:`remaining_ms`).
    """

    priority: str = DEFAULT_PRIORITY
    tenant: str = DEFAULT_TENANT
    deadline: Optional[float] = None

    @property
    def rank(self) -> int:
        return priority_index(self.priority)

    def remaining_ms(self, now: Optional[float] = None) -> Optional[float]:
        if self.deadline is None:
            return None
        now = time.monotonic() if now is None else now
        return (self.deadline - now) * 1e3

    def expired(self, now: Optional[float] = None) -> bool:
        if self.deadline is None:
            return False
        return (time.monotonic() if now is None else now) > self.deadline


#: HTTP request headers the front ends accept (body fields win on conflict
#: so a router that merged headers into the body stays authoritative).
HEADER_PRIORITY = "X-Priority"
HEADER_TENANT = "X-Tenant"
HEADER_DEADLINE_MS = "X-Deadline-Ms"


def parse_qos(payload: Optional[Mapping[str, object]] = None,
              headers: Optional[Mapping[str, str]] = None,
              now: Optional[float] = None) -> RequestQoS:
    """Build a :class:`RequestQoS` from a JSON body and/or HTTP headers.

    Accepted body fields: ``priority`` (class name), ``tenant`` (string),
    ``deadline_ms`` (relative budget from *now*).  Header equivalents:
    ``X-Priority``, ``X-Tenant``, ``X-Deadline-Ms``.  Malformed values raise
    ``ValueError`` — the front ends map that to HTTP 400 (a typo'd priority
    must not silently demote or promote a request).
    """
    now = time.monotonic() if now is None else now
    priority: object = DEFAULT_PRIORITY
    tenant: object = DEFAULT_TENANT
    deadline_ms: object = None
    if headers:
        if headers.get(HEADER_PRIORITY) is not None:
            priority = headers[HEADER_PRIORITY]
        if headers.get(HEADER_TENANT) is not None:
            tenant = headers[HEADER_TENANT]
        if headers.get(HEADER_DEADLINE_MS) is not None:
            deadline_ms = headers[HEADER_DEADLINE_MS]
    if payload:
        if payload.get("priority") is not None:
            priority = payload["priority"]
        if payload.get("tenant") is not None:
            tenant = payload["tenant"]
        if payload.get("deadline_ms") is not None:
            deadline_ms = payload["deadline_ms"]
    priority = str(priority).strip().lower()
    priority_index(priority)                       # validates
    tenant = str(tenant).strip() or DEFAULT_TENANT
    deadline: Optional[float] = None
    if deadline_ms is not None:
        try:
            budget_ms = float(deadline_ms)
        except (TypeError, ValueError):
            raise ValueError(f"deadline_ms must be a number, got {deadline_ms!r}") \
                from None
        if budget_ms <= 0:
            raise ValueError(f"deadline_ms must be positive, got {budget_ms!r}")
        deadline = now + budget_ms / 1e3
    return RequestQoS(priority=priority, tenant=tenant, deadline=deadline)


def merge_qos_into_payload(payload: Dict[str, object], qos: RequestQoS,
                           now: Optional[float] = None) -> Dict[str, object]:
    """Write ``qos`` into a JSON body for the router→worker hop.

    The deadline is rewritten to the *remaining* budget, so the worker's
    batcher honours (approximately) the same absolute deadline the front end
    admitted — that is the propagation half of "shed doomed work before it
    reaches the engine".
    """
    payload = dict(payload)
    payload["priority"] = qos.priority
    payload["tenant"] = qos.tenant
    remaining = qos.remaining_ms(now)
    if remaining is not None:
        payload["deadline_ms"] = max(remaining, 0.001)
    else:
        payload.pop("deadline_ms", None)
    return payload


# --------------------------------------------------------------------------- #
# Per-tenant token buckets
# --------------------------------------------------------------------------- #
class TokenBucket:
    """Classic token bucket: ``rate`` tokens/s, capacity ``burst``."""

    def __init__(self, rate: float, burst: float):
        if rate <= 0:
            raise ValueError("token bucket rate must be positive")
        self.rate = float(rate)
        self.burst = max(float(burst), 1.0)
        self.tokens = self.burst
        self._updated = time.monotonic()
        self._lock = threading.Lock()

    def try_take(self, n: float = 1.0,
                 now: Optional[float] = None) -> Tuple[bool, float]:
        """Take ``n`` tokens if available.

        Returns ``(granted, retry_after_s)``; ``retry_after_s`` is how long
        until ``n`` tokens will have accrued (0 when granted).
        """
        now = time.monotonic() if now is None else now
        with self._lock:
            self.tokens = min(self.burst,
                              self.tokens + (now - self._updated) * self.rate)
            self._updated = now
            if self.tokens >= n:
                self.tokens -= n
                return True, 0.0
            return False, (n - self.tokens) / self.rate

    def snapshot(self) -> Dict[str, float]:
        with self._lock:
            return {"rate_per_s": self.rate, "burst": self.burst,
                    "tokens": round(self.tokens, 3)}


class TokenBucketTable:
    """Per-tenant token buckets with a default rate and per-tenant overrides.

    ``default_rate=None`` disables rate limiting for tenants without an
    explicit override (the zero-configuration behaviour).  The table is
    bounded: beyond ``max_tenants`` tracked tenants, *new* tenants share one
    overflow bucket so a tenant-id cardinality attack cannot grow memory.
    """

    def __init__(self, default_rate: Optional[float] = None,
                 default_burst: float = 8.0,
                 overrides: Optional[Mapping[str, float]] = None,
                 max_tenants: int = 256):
        self.default_rate = default_rate
        self.default_burst = default_burst
        self.overrides = dict(overrides or {})
        self.max_tenants = max_tenants
        self._buckets: Dict[str, TokenBucket] = {}
        self._overflow: Optional[TokenBucket] = None
        self._lock = threading.Lock()

    def _bucket_for(self, tenant: str) -> Optional[TokenBucket]:
        rate = self.overrides.get(tenant, self.default_rate)
        if rate is None:
            return None
        with self._lock:
            bucket = self._buckets.get(tenant)
            if bucket is None:
                if len(self._buckets) >= self.max_tenants and \
                        tenant not in self.overrides:
                    if self._overflow is None:
                        self._overflow = TokenBucket(rate, self.default_burst)
                    return self._overflow
                bucket = TokenBucket(rate, self.default_burst)
                self._buckets[tenant] = bucket
            return bucket

    def admit(self, tenant: str) -> Tuple[bool, float]:
        bucket = self._bucket_for(tenant)
        if bucket is None:
            return True, 0.0
        return bucket.try_take(1.0)

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            buckets = dict(self._buckets)
        return {
            "default_rate_per_s": self.default_rate,
            "tenants": {tenant: bucket.snapshot()
                        for tenant, bucket in sorted(buckets.items())},
        }


# --------------------------------------------------------------------------- #
# Weighted-fair, priority-ordered dispatch slots (the router queue)
# --------------------------------------------------------------------------- #
class _Waiter:
    __slots__ = ("qos", "enqueued_at", "event", "granted", "shed")

    def __init__(self, qos: RequestQoS):
        self.qos = qos
        self.enqueued_at = time.monotonic()
        self.event = threading.Event()
        self.granted = False
        self.shed: Optional[RequestTimeout] = None


class FairScheduler:
    """Admit requests to a bounded set of dispatch slots, fairly.

    The router's analogue of the batcher's queue: ``slots`` concurrent
    dispatches are allowed through; beyond that, callers wait in per-class ×
    per-tenant FIFO queues.  When a slot frees, the grant order is:

    1. **strict priority** — any waiting ``interactive`` request beats any
       ``standard`` one, which beats any ``batch`` one;
    2. **weighted fair across tenants** within a class — the tenant with the
       smallest weighted virtual time is served next, so a tenant flooding
       the queue gets (weight-proportionally) the same grant rate as a
       polite one, not more.

    Waiters whose deadline passes while queued are shed *in the queue* with a
    :class:`~repro.serve.scheduler.RequestTimeout` carrying queue-time
    diagnostics — they never consume a dispatch slot, which is the contract
    the deadline-propagation tests pin down.
    """

    def __init__(self, slots: int, max_waiting: int = 256,
                 tenant_weights: Optional[Mapping[str, float]] = None,
                 batch_waiting_fraction: float = 0.5):
        if slots < 1:
            raise ValueError("FairScheduler needs at least one dispatch slot")
        self.slots = int(slots)
        self.max_waiting = int(max_waiting)
        self.tenant_weights = dict(tenant_weights or {})
        #: ``batch``-class waiters are capped at this fraction of the waiting
        #: room, so a deep bulk backlog can never consume the admission
        #: capacity interactive traffic needs.
        self.batch_waiting_cap = max(1, int(max_waiting * batch_waiting_fraction))
        self._cond = threading.Condition()
        self._active = 0
        self._waiting = 0
        self._batch_waiting = 0
        #: class index -> tenant -> deque of waiters.
        self._queues: List[Dict[str, deque]] = [dict() for _ in PRIORITY_CLASSES]
        #: tenant -> weighted virtual time (grant accounting).
        self._vtime: Dict[str, float] = {}
        self.granted_total = 0
        self.shed_deadline_total = 0
        self.rejected_total = 0

    # -- internals (condition held) ------------------------------------- #
    def _weight(self, tenant: str) -> float:
        return max(float(self.tenant_weights.get(tenant, 1.0)), 1e-6)

    def _enqueue(self, waiter: _Waiter) -> None:
        rank = waiter.qos.rank
        queues = self._queues[rank]
        tenant = waiter.qos.tenant
        if tenant not in queues or not queues[tenant]:
            # A tenant (re)joining the queue must not replay virtual time it
            # never spent: fast-forward to the floor of currently queued
            # tenants so it competes from "now", not from t=0.
            floor = min((self._vtime.get(other, 0.0)
                         for cls in self._queues for other in cls if cls[other]),
                        default=0.0)
            self._vtime[tenant] = max(self._vtime.get(tenant, 0.0), floor)
        queues.setdefault(tenant, deque()).append(waiter)
        self._waiting += 1
        if rank == priority_index("batch"):
            self._batch_waiting += 1

    def _remove(self, waiter: _Waiter) -> bool:
        queues = self._queues[waiter.qos.rank]
        tenant_queue = queues.get(waiter.qos.tenant)
        if tenant_queue is None:
            return False
        try:
            tenant_queue.remove(waiter)
        except ValueError:
            return False
        self._waiting -= 1
        if waiter.qos.rank == priority_index("batch"):
            self._batch_waiting -= 1
        return True

    def _pop_next(self) -> Optional[_Waiter]:
        for rank in range(len(PRIORITY_CLASSES)):
            queues = self._queues[rank]
            candidates = [tenant for tenant, q in queues.items() if q]
            if not candidates:
                continue
            tenant = min(candidates, key=lambda t: (self._vtime.get(t, 0.0), t))
            waiter = queues[tenant].popleft()
            self._waiting -= 1
            if rank == priority_index("batch"):
                self._batch_waiting -= 1
            self._vtime[tenant] = self._vtime.get(tenant, 0.0) + 1.0 / self._weight(tenant)
            return waiter
        return None

    def _grant_slots(self) -> None:
        now = time.monotonic()
        while self._active < self.slots:
            waiter = self._pop_next()
            if waiter is None:
                return
            if waiter.qos.expired(now):
                # Shed in the queue: the slot is NOT consumed and the waiter
                # carries its queue-time diagnostics out.
                queue_ms = (now - waiter.enqueued_at) * 1e3
                self.shed_deadline_total += 1
                waiter.shed = RequestTimeout(
                    f"deadline expired after {queue_ms:.1f} ms in the router "
                    f"queue (shed before dispatch)",
                    queue_ms=queue_ms, stage="router-queue")
                waiter.event.set()
                continue
            waiter.granted = True
            self.granted_total += 1
            self._active += 1
            waiter.event.set()

    # -- public API ------------------------------------------------------ #
    def acquire(self, qos: RequestQoS) -> float:
        """Wait for a dispatch slot; returns the queue wait in seconds.

        Raises :class:`QueueFullError` when the waiting room (or the batch
        share of it) is full, and :class:`RequestTimeout` (with queue-time
        diagnostics) when the deadline expires before a slot frees.
        """
        with self._cond:
            if self._active < self.slots and self._waiting == 0:
                self._active += 1
                self.granted_total += 1
                return 0.0
            if self._waiting >= self.max_waiting:
                self.rejected_total += 1
                raise QueueFullError(
                    f"router queue is full ({self.max_waiting} waiting)")
            if (qos.rank == priority_index("batch")
                    and self._batch_waiting >= self.batch_waiting_cap):
                self.rejected_total += 1
                raise QueueFullError(
                    f"batch-class waiting room is full "
                    f"({self.batch_waiting_cap} waiting)")
            waiter = _Waiter(qos)
            self._enqueue(waiter)
            self._grant_slots()                  # a slot may already be free
        while True:
            timeout = None
            if qos.deadline is not None:
                timeout = max(qos.deadline - time.monotonic(), 0.0) + 0.005
            if waiter.event.wait(timeout):
                if waiter.shed is not None:
                    raise waiter.shed
                return time.monotonic() - waiter.enqueued_at
            with self._cond:
                if waiter.event.is_set():
                    continue                     # granted in the race window
                self._remove(waiter)
                queue_ms = (time.monotonic() - waiter.enqueued_at) * 1e3
                self.shed_deadline_total += 1
            raise RequestTimeout(
                f"deadline expired after {queue_ms:.1f} ms in the router "
                f"queue (shed before dispatch)",
                queue_ms=queue_ms, stage="router-queue")

    def release(self) -> None:
        with self._cond:
            self._active -= 1
            self._grant_slots()

    def resize(self, slots: int) -> int:
        """Change the dispatch-slot count in place (elastic pools).

        Growing grants queued waiters immediately; shrinking never cancels
        in-flight work — ``_active`` drains below the new bound naturally as
        requests release.  Returns the new slot count.
        """
        with self._cond:
            self.slots = max(1, int(slots))
            self._grant_slots()
            return self.slots

    def snapshot(self) -> Dict[str, object]:
        with self._cond:
            per_class = {
                PRIORITY_CLASSES[rank]: sum(len(q) for q in queues.values())
                for rank, queues in enumerate(self._queues)
            }
            return {
                "slots": self.slots,
                "active": self._active,
                "waiting": self._waiting,
                "waiting_by_class": per_class,
                "granted": self.granted_total,
                "shed_deadline": self.shed_deadline_total,
                "rejected": self.rejected_total,
                "tenant_weights": dict(self.tenant_weights),
            }


# --------------------------------------------------------------------------- #
# Brownout controller
# --------------------------------------------------------------------------- #
#: Brownout states, mildest first.  Each state sheds every class at or below
#: its :data:`_SHED_FLOOR` rank (``None`` = shed nothing).
BROWNOUT_STATES: Tuple[str, ...] = ("healthy", "shed-batch", "shed-standard",
                                    "emergency")

#: state -> lowest priority rank still admitted (requests with rank >= the
#: floor are shed).  ``emergency`` sheds everything — the breaker of last
#: resort; the controller should recover out of it before interactive traffic
#: is affected for long.
_SHED_FLOOR = {
    "healthy": None,
    "shed-batch": priority_index("batch"),
    "shed-standard": priority_index("standard"),
    "emergency": 0,
}

#: Default Retry-After hints per state (seconds).
_RETRY_AFTER = {"shed-batch": 1.0, "shed-standard": 2.0, "emergency": 5.0}

#: Flap damping: growth factor and cap (× ``min_dwell_s``) for the adaptive
#: recovery dwell, and the post-recovery window (× ``min_dwell_s``) inside
#: which a re-escalation counts as a flap.
_FLAP_BACKOFF = 2.0
_MAX_RECOVER_DWELL_FACTOR = 8.0
_FLAP_WINDOW_FACTOR = 2.0


class BrownoutController:
    """EWMA overload detector with explicit, hysteretic degradation states.

    ``signal_fn`` returns the two raw overload signals — current queue depth
    and recent p99 latency in ms (``None`` disables the latency signal).  On
    every :meth:`admit` (rate-limited to ``observe_interval_s``) the
    controller folds them into EWMAs and a unitless **load score**::

        load = max(queue_ewma / queue_high, p99_ewma / p99_slo_ms)

    State machine (evaluated against the load score, with a minimum dwell
    time per state so one noisy sample cannot flap the server):

    * ``load >= 1.0``  → at least ``shed-batch``
    * ``load >= shed_standard_at`` → at least ``shed-standard``
    * ``load >= emergency_at`` → ``emergency``
    * ``load <  recover_at`` → step one state back toward ``healthy``

    Escalation is immediate (overload will not wait); recovery is one state
    per dwell so a recovering server ramps traffic back gradually.  Every
    transition is logged (bounded) and visible in ``/metrics``, which is what
    makes shedding *checkable*: the tests assert the controller's decisions,
    not emergent queue behaviour.

    **Flap damping.**  The load score only sees *admitted* work, so under a
    sustained burst shedding hides the demand: the queue drains, the score
    collapses, the controller recovers — and the burst floods straight back
    in.  To keep that oscillation bounded the recovery dwell is adaptive:
    re-escalating within ``2 × min_dwell_s`` of a recovery doubles the dwell
    the *next* recovery must wait out (capped at ``8 × min_dwell_s``), and a
    calm escalation — long after the last recovery — resets it.  Sustained
    overload therefore settles into slow probe-and-back-off cycles instead
    of flapping at the observation rate, while recovery is always retried
    eventually (no livelock when demand finally subsides).
    """

    def __init__(self, signal_fn: Callable[[], Tuple[float, Optional[float]]], *,
                 queue_high: float = 32.0,
                 p99_slo_ms: Optional[float] = None,
                 alpha: float = 0.3,
                 observe_interval_s: float = 0.05,
                 shed_standard_at: float = 1.6,
                 emergency_at: float = 3.0,
                 recover_at: float = 0.7,
                 min_dwell_s: float = 0.5,
                 retry_after: Optional[Mapping[str, float]] = None):
        if queue_high <= 0:
            raise ValueError("queue_high must be positive")
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        self.signal_fn = signal_fn
        self.queue_high = float(queue_high)
        self.p99_slo_ms = p99_slo_ms
        self.alpha = float(alpha)
        self.observe_interval_s = float(observe_interval_s)
        self.shed_standard_at = float(shed_standard_at)
        self.emergency_at = float(emergency_at)
        self.recover_at = float(recover_at)
        self.min_dwell_s = float(min_dwell_s)
        self.retry_after = dict(_RETRY_AFTER)
        if retry_after:
            self.retry_after.update(retry_after)
        self._lock = threading.Lock()
        self._state = "healthy"
        self._state_since = time.monotonic()
        self._last_observed = 0.0
        self._queue_ewma = 0.0
        self._p99_ewma = 0.0
        self._load = 0.0
        #: Adaptive recovery dwell (flap damping) and the time of the last
        #: recovery transition it keys off.
        self._recover_dwell_s = self.min_dwell_s
        self._recovered_at: Optional[float] = None
        self.shed_by_class: Dict[str, int] = {cls: 0 for cls in PRIORITY_CLASSES}
        self._transitions: deque = deque(maxlen=32)

    # -- state machine (lock held) --------------------------------------- #
    def _target_state(self) -> str:
        if self._load >= self.emergency_at:
            return "emergency"
        if self._load >= self.shed_standard_at:
            return "shed-standard"
        if self._load >= 1.0:
            return "shed-batch"
        return "healthy"

    def _transition(self, new_state: str, now: float) -> None:
        self._transitions.append({
            "from": self._state, "to": new_state,
            "load": round(self._load, 3),
            "after_s": round(now - self._state_since, 3),
        })
        self._state = new_state
        self._state_since = now

    def _refresh(self, now: float) -> None:
        if now - self._last_observed < self.observe_interval_s:
            return
        self._last_observed = now
        try:
            queue_depth, p99_ms = self.signal_fn()
        except Exception:                          # noqa: BLE001 - stay safe
            return
        self._queue_ewma += self.alpha * (float(queue_depth) - self._queue_ewma)
        load = self._queue_ewma / self.queue_high
        if self.p99_slo_ms and p99_ms is not None:
            self._p99_ewma += self.alpha * (float(p99_ms) - self._p99_ewma)
            load = max(load, self._p99_ewma / self.p99_slo_ms)
        self._load = load
        target = self._target_state()
        current_rank = BROWNOUT_STATES.index(self._state)
        target_rank = BROWNOUT_STATES.index(target)
        if target_rank > current_rank:
            # Escalate immediately — but first adapt the recovery dwell:
            # re-escalating right after a recovery means the recovery probe
            # failed (shed demand flooded back in), so the next one waits
            # longer; a calm escalation resets the backoff.
            if (self._recovered_at is not None and
                    now - self._recovered_at
                    < _FLAP_WINDOW_FACTOR * self.min_dwell_s):
                self._recover_dwell_s = min(
                    self._recover_dwell_s * _FLAP_BACKOFF,
                    _MAX_RECOVER_DWELL_FACTOR * self.min_dwell_s)
            else:
                self._recover_dwell_s = self.min_dwell_s
            self._transition(target, now)
        elif (self._load < self.recover_at and current_rank > 0
                and now - self._state_since >= self._recover_dwell_s):
            # Recover one state per dwell: ramp traffic back gradually.
            self._transition(BROWNOUT_STATES[current_rank - 1], now)
            self._recovered_at = now

    # -- public API ------------------------------------------------------ #
    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    def admit(self, priority: str, now: Optional[float] = None) -> None:
        """Refresh the detector and shed ``priority`` if the state says so.

        Raises :class:`ShedError` (HTTP 503 + ``Retry-After``) on shed;
        returns normally on admit.
        """
        now = time.monotonic() if now is None else now
        rank = priority_index(priority)
        with self._lock:
            self._refresh(now)
            floor = _SHED_FLOOR[self._state]
            if floor is None or rank < floor:
                return
            self.shed_by_class[priority] += 1
            state = self._state
            retry = self.retry_after.get(state, 1.0)
        raise ShedError(
            f"overload brownout ({state}): shedding {priority!r} traffic; "
            f"retry after {retry:.1f}s",
            status=503, retry_after_s=retry, reason=f"brownout:{state}")

    def force_state(self, state: str) -> None:
        """Pin the controller to ``state`` (tests / operator override)."""
        if state not in BROWNOUT_STATES:
            raise ValueError(f"unknown brownout state {state!r}")
        with self._lock:
            if state != self._state:
                self._transition(state, time.monotonic())

    def snapshot(self) -> Dict[str, object]:
        now = time.monotonic()
        with self._lock:
            self._refresh(now)
            return {
                "state": self._state,
                "state_age_s": round(now - self._state_since, 3),
                "recover_dwell_s": round(self._recover_dwell_s, 3),
                "load": round(self._load, 4),
                "queue_ewma": round(self._queue_ewma, 3),
                "p99_ewma_ms": round(self._p99_ewma, 3),
                "queue_high": self.queue_high,
                "p99_slo_ms": self.p99_slo_ms,
                "shed_by_class": dict(self.shed_by_class),
                "transitions": list(self._transitions),
            }


# --------------------------------------------------------------------------- #
# Configuration bundle
# --------------------------------------------------------------------------- #
def _knob(default, **serve):
    """A dataclass field carrying the serve-flag metadata convention.

    The ``"serve"`` metadata key is read by :mod:`repro.serve.config`, which
    reuses :class:`QoSConfig` verbatim as the ``qos`` section of
    :class:`~repro.serve.config.ServeConfig` and generates the CLI flags,
    ``--help`` text and reference-table rows from it — one source of truth,
    so a QoS knob and its flag can never drift.
    """
    if callable(default):
        return field(default_factory=default, metadata={"serve": serve})
    return field(default=default, metadata={"serve": serve})


@dataclass
class QoSConfig:
    """Every QoS knob in one picklable bag (crosses the pool spawn boundary).

    The defaults are deliberately permissive — no rate limits, generous
    waiting room — so a deployment that never mentions QoS behaves exactly
    like the pre-QoS stack until it overloads, at which point the brownout
    controller (always on) sheds lowest-class-first instead of 429-ing
    everyone equally.
    """

    #: Concurrent proxied dispatches per ready worker (router slots =
    #: ``slots_per_worker × workers``).
    slots_per_worker: int = _knob(
        4, parse=int,
        help="concurrent dispatch slots per worker in the weighted-fair "
             "scheduler (pool mode)")
    #: Bound on requests waiting for a dispatch slot.
    max_waiting: int = _knob(
        256, parse=int,
        help="router waiting-room size; overflow sheds lowest-priority "
             "first with 429")
    #: Fraction of the waiting room batch-class requests may occupy.
    batch_waiting_fraction: float = _knob(
        0.5, parse=float,
        help="fraction of the waiting room batch-class requests may occupy")
    #: Default per-tenant token rate (requests/s); ``None`` = unlimited.
    tenant_rate: Optional[float] = _knob(
        None, parse=float,
        help="per-tenant request rate limit (requests/s; token bucket); "
             "unset disables rate limiting")
    tenant_burst: float = _knob(
        8.0, parse=float, help="token-bucket burst per tenant")
    #: Per-tenant rate overrides, e.g. ``{"free-tier": 5.0}``.
    tenant_rates: Mapping[str, float] = _knob(
        dict, flag=None,
        help="per-tenant rate overrides, e.g. {\"free-tier\": 5.0}")
    #: Weighted-fair shares, e.g. ``{"gold": 4.0}``; default weight 1.
    tenant_weights: Mapping[str, float] = _knob(
        dict, flag=None,
        help="weighted-fair tenant shares, e.g. {\"gold\": 4.0}; "
             "default weight 1")
    #: Brownout: queue depth that maps to load 1.0.
    queue_high: float = _knob(
        32.0, parse=float,
        help="queue depth the brownout controller treats as load 1.0")
    #: Brownout: p99 SLO in ms (``None`` disables the latency signal).
    p99_slo_ms: Optional[float] = _knob(
        None, parse=float,
        help="p99 latency SLO; sustained breaches drive the brownout "
             "controller through shed-batch / shed-standard / emergency")
    alpha: float = _knob(
        0.3, flag="--brownout_alpha", parse=float,
        help="EWMA smoothing factor for the brownout load signals")
    shed_standard_at: float = _knob(
        1.6, parse=float,
        help="brownout load score at which standard-class traffic sheds")
    emergency_at: float = _knob(
        3.0, parse=float,
        help="brownout load score at which all traffic sheds (breaker of "
             "last resort)")
    recover_at: float = _knob(
        0.7, parse=float,
        help="brownout load score below which the controller steps back "
             "toward healthy")
    min_dwell_s: float = _knob(
        0.5, flag="--brownout_min_dwell_s", parse=float,
        help="minimum dwell per brownout state (flap damping)")
    #: Batcher: bulk-class sample budget per dispatched micro-batch
    #: (``None`` → ``max(1, max_batch_size // 4)``); what keeps an
    #: interactive arrival from waiting behind a full batch of bulk work.
    batch_class_samples: Optional[int] = _knob(
        None, parse=int,
        help="per-micro-batch sample budget for batch-class work "
             "(default max_batch_size // 4)")

    def make_brownout(self, signal_fn) -> BrownoutController:
        return BrownoutController(
            signal_fn, queue_high=self.queue_high, p99_slo_ms=self.p99_slo_ms,
            alpha=self.alpha, shed_standard_at=self.shed_standard_at,
            emergency_at=self.emergency_at, recover_at=self.recover_at,
            min_dwell_s=self.min_dwell_s)

    def make_buckets(self) -> TokenBucketTable:
        return TokenBucketTable(default_rate=self.tenant_rate,
                                default_burst=self.tenant_burst,
                                overrides=self.tenant_rates)

    def make_fair_scheduler(self, workers: int) -> FairScheduler:
        return FairScheduler(
            slots=max(1, self.slots_per_worker * max(workers, 1)),
            max_waiting=self.max_waiting,
            tenant_weights=self.tenant_weights,
            batch_waiting_fraction=self.batch_waiting_fraction)


def backoff_delay(attempt: int, retry_after_s: Optional[float],
                  base_s: float = 0.1, cap_s: float = 5.0,
                  rng: Optional[random.Random] = None) -> float:
    """Capped exponential backoff with full jitter, seeded by ``Retry-After``.

    The server's hint is the floor (it knows its own recovery horizon); the
    exponential term spreads retries from many blocked clients so recovery is
    not met by a thundering herd.
    """
    rng = rng if rng is not None else random
    exp = min(base_s * (2.0 ** max(attempt, 0)), cap_s)
    jittered = rng.uniform(exp * 0.5, exp)
    if retry_after_s is not None and retry_after_s > 0:
        return min(max(jittered, retry_after_s), cap_s)
    return jittered
