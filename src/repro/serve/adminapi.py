"""Typed request/response schemas for the ``/admin/*`` API.

Four subsystems speak the admin protocol — :class:`~repro.serve.server.
PECANServer`, :class:`~repro.serve.pool.PoolServer`, the federation
:class:`~repro.serve.federation.FrontRouter` and
:class:`~repro.serve.client.ServeClient` — and until this module each kept
its own ad-hoc payload parsing, so a field added on one side silently
vanished on another.  This module is the single wire contract:

* **Request schemas** — one dataclass per verb (:class:`DeployRequest`,
  :class:`PromoteRequest`, :class:`RollbackRequest`, :class:`ScaleRequest`)
  with ``from_payload`` validation and ``to_payload`` serialization, used by
  the servers to parse and by the client to build the same bytes.
* **Structured errors** — every admin failure carries ``code`` (a stable
  machine-readable category), ``reason`` (the exception class that caused
  it) and ``retry_after`` (seconds, or ``None``) *in addition to* the legacy
  ``error`` message key, so existing clients keep working while new ones can
  branch on ``code`` instead of regex-matching messages.
* **Shared dispatch** — :func:`dispatch_admin` owns path routing, body
  parsing and the exception→status mapping for every server, so the admin
  plane literally cannot drift between the single server, the pool and the
  federation front.

Error codes (``ERROR_CODES``): ``bad-request`` (400 — validation,
lifecycle-rule or file errors), ``not-found`` (404 — unknown model/version/
path), ``unavailable`` (503 — the serving plane cannot take admin work right
now; carries ``retry_after``), ``internal`` (500 — anything else, reported
with the exception type).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Callable, Dict, Mapping, Optional, Tuple

from repro.serve.lifecycle import LifecycleError

__all__ = [
    "ADMIN_VERBS",
    "ERROR_CODES",
    "AdminError",
    "DeployRequest",
    "PromoteRequest",
    "RollbackRequest",
    "ScaleRequest",
    "dispatch_admin",
    "error_payload",
    "error_response",
    "json_response",
    "parse_admin_request",
]

#: Stable machine-readable error categories (the ``code`` payload field).
ERROR_CODES: Tuple[str, ...] = ("bad-request", "not-found", "unavailable",
                                "internal")


class AdminError(Exception):
    """An admin-plane failure with its full structured wire shape.

    Server-side code may raise this directly for precise control; every
    other exception crossing :func:`dispatch_admin` is classified into one
    (see :func:`classify_error`).
    """

    def __init__(self, message: str, *, status: int = 400,
                 code: str = "bad-request", reason: Optional[str] = None,
                 retry_after_s: Optional[float] = None):
        super().__init__(message)
        if code not in ERROR_CODES:
            raise ValueError(f"unknown admin error code {code!r}")
        self.status = int(status)
        self.code = code
        self.reason = reason or code
        self.retry_after_s = retry_after_s


def classify_error(exc: Exception) -> AdminError:
    """Map an arbitrary handler exception to its structured admin error.

    The mapping preserves the historical status codes exactly:
    lifecycle/validation/file errors → 400, unknown names → 404 (with the
    KeyError quoting stripped), everything else → 500 with the exception
    type named.
    """
    if isinstance(exc, AdminError):
        return exc
    if isinstance(exc, (LifecycleError, ValueError, FileNotFoundError)):
        return AdminError(str(exc), status=400, code="bad-request",
                          reason=type(exc).__name__)
    if isinstance(exc, KeyError):
        return AdminError(str(exc).strip("'\""), status=404, code="not-found",
                          reason="KeyError")
    return AdminError(f"{type(exc).__name__}: {exc}", status=500,
                      code="internal", reason=type(exc).__name__)


def error_payload(error: AdminError) -> Dict[str, Any]:
    """The structured error body (legacy ``error`` key + typed fields)."""
    return {
        "error": str(error),
        "code": error.code,
        "reason": error.reason,
        "retry_after": error.retry_after_s,
    }


def json_response(status: int, payload: Mapping[str, Any],
                  headers: Optional[Mapping[str, str]] = None,
                  ) -> Tuple[int, bytes, Dict[str, str]]:
    """One app-level response triple: ``(status, body_bytes, headers)``."""
    return (int(status), json.dumps(payload).encode("utf-8"),
            dict(headers or {}))


def error_response(error: AdminError) -> Tuple[int, bytes, Dict[str, str]]:
    headers: Dict[str, str] = {}
    if error.retry_after_s is not None:
        headers["Retry-After"] = f"{max(error.retry_after_s, 0.0):.3f}"
    return json_response(error.status, error_payload(error), headers)


# --------------------------------------------------------------------------- #
# Request schemas
# --------------------------------------------------------------------------- #
def _require(payload: Mapping[str, Any], verb: str, *names: str) -> None:
    missing = [name for name in names if name not in payload]
    if missing:
        wanted = " and ".join(f"'{name}'" for name in names)
        raise AdminError(f"{verb} needs {wanted}", status=400,
                         code="bad-request", reason="missing-field")


def _optional_int(payload: Mapping[str, Any], name: str) -> Optional[int]:
    value = payload.get(name)
    if value is None:
        return None
    try:
        return int(value)
    except (TypeError, ValueError):
        raise AdminError(f"{name} must be an integer, got {value!r}",
                         reason="bad-field") from None


@dataclass
class DeployRequest:
    """``POST /admin/deploy`` — register (and canary) a new bundle version.

    The canary-gate knobs (``canary_fraction`` …) only apply on pools; the
    single-process server ignores them, which is the historical behaviour.
    """

    name: str
    path: str
    version: Optional[int] = None
    preload: bool = True
    canary_fraction: float = 0.25
    min_samples: int = 20
    max_parity_violations: int = 0
    #: ``3.0`` when absent; an explicit JSON ``null`` disables the latency
    #: gate — the tri-state the wire protocol has always had.
    max_latency_ratio: Optional[float] = 3.0
    auto: bool = True

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "DeployRequest":
        _require(payload, "deploy", "name", "path")
        return cls(
            name=str(payload["name"]),
            path=str(payload["path"]),
            version=_optional_int(payload, "version"),
            preload=bool(payload.get("preload", True)),
            canary_fraction=float(payload.get("canary_fraction", 0.25)),
            min_samples=int(payload.get("min_samples", 20)),
            max_parity_violations=int(payload.get("max_parity_violations", 0)),
            max_latency_ratio=(
                (None if payload["max_latency_ratio"] is None
                 else float(payload["max_latency_ratio"]))
                if "max_latency_ratio" in payload else 3.0),
            auto=bool(payload.get("auto", True)),
        )

    def to_payload(self) -> Dict[str, Any]:
        return {"name": self.name, "path": self.path, "version": self.version,
                "preload": self.preload,
                "canary_fraction": self.canary_fraction,
                "min_samples": self.min_samples,
                "max_parity_violations": self.max_parity_violations,
                "max_latency_ratio": self.max_latency_ratio,
                "auto": self.auto}


@dataclass
class PromoteRequest:
    """``POST /admin/promote`` — flip the active alias to ``version``."""

    name: str
    version: Optional[int] = None

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "PromoteRequest":
        _require(payload, "promote", "name")
        return cls(name=str(payload["name"]),
                   version=_optional_int(payload, "version"))

    def to_payload(self) -> Dict[str, Any]:
        return {"name": self.name, "version": self.version}


@dataclass
class RollbackRequest:
    """``POST /admin/rollback`` — abort a canary / restore the previous
    active version."""

    name: str

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "RollbackRequest":
        _require(payload, "rollback", "name")
        return cls(name=str(payload["name"]))

    def to_payload(self) -> Dict[str, Any]:
        return {"name": self.name}


@dataclass
class ScaleRequest:
    """``POST /admin/scale`` — set the pool's worker target (autoscale-aware).

    ``workers`` pins the target; the autoscaler (when enabled) keeps
    adjusting from there within its envelope.
    """

    workers: int
    reason: str = "operator"

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "ScaleRequest":
        _require(payload, "scale", "workers")
        workers = _optional_int(payload, "workers")
        if workers is None or workers < 0:
            raise AdminError(f"workers must be a non-negative integer, got "
                             f"{payload.get('workers')!r}", reason="bad-field")
        return cls(workers=workers,
                   reason=str(payload.get("reason", "operator")))

    def to_payload(self) -> Dict[str, Any]:
        return {"workers": self.workers, "reason": self.reason}


#: verb -> request schema.  ``status`` is a GET with no body, listed for
#: completeness (the servers answer it from their lifecycle snapshots).
ADMIN_VERBS: Dict[str, Any] = {
    "deploy": DeployRequest,
    "promote": PromoteRequest,
    "rollback": RollbackRequest,
    "scale": ScaleRequest,
    "status": None,
}


def parse_admin_request(path: str, body: bytes) -> Any:
    """Parse ``POST /admin/<verb>`` into its typed request.

    Raises :class:`AdminError` on an unknown verb, malformed JSON or a
    schema violation — the caller answers with :func:`error_response`.
    """
    if not path.startswith("/admin/"):
        raise AdminError(f"unknown admin path {path}", status=404,
                         code="not-found", reason="unknown-path")
    verb = path[len("/admin/"):]
    schema = ADMIN_VERBS.get(verb)
    if schema is None:
        raise AdminError(f"unknown admin path {path}", status=404,
                         code="not-found", reason="unknown-path")
    try:
        payload = json.loads(body or b"{}")
        if not isinstance(payload, dict):
            raise ValueError("admin body must be a JSON object")
    except (ValueError, json.JSONDecodeError) as exc:
        raise AdminError(str(exc), status=400, code="bad-request",
                         reason="bad-json") from None
    return schema.from_payload(payload)


def dispatch_admin(path: str, body: bytes,
                   handlers: Mapping[str, Callable[[Any], Mapping[str, Any]]],
                   ) -> Tuple[int, bytes, Dict[str, str]]:
    """Route one ``POST /admin/*`` request through typed schemas.

    ``handlers`` maps verb names (``"deploy"`` …) to callables taking the
    parsed request dataclass and returning a JSON-ready dict.  Verbs without
    a handler 404 (so the single server can simply not implement ``scale``),
    and every failure — parse-time or handler-time — leaves as a structured
    error response.
    """
    try:
        request = parse_admin_request(path, body)
    except AdminError as exc:
        return error_response(exc)
    verb = path[len("/admin/"):]
    handler = handlers.get(verb)
    if handler is None:
        return error_response(AdminError(
            f"unknown admin path {path}", status=404, code="not-found",
            reason="unknown-path"))
    try:
        return json_response(200, handler(request))
    except Exception as exc:                     # noqa: BLE001 - boundary
        return error_response(classify_error(exc))
