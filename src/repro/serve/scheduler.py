"""Dynamic micro-batching scheduler with admission control.

Production CAM inference is throughput-bound: the fused kernels amortize their
fixed costs (im2col set-up, GEMM dispatch, LUT gathers) across the batch, so
serving one request per forward wastes most of the hardware.  The
:class:`DynamicBatcher` sits between the HTTP front end and a
:class:`~repro.serve.engine.BundleEngine`:

* requests enqueue into a **bounded** queue — when it is full the submit
  raises :class:`QueueFullError` immediately (backpressure, not unbounded
  buffering), which the server maps to HTTP 429;
* a worker thread coalesces waiting requests into one batch of up to
  ``max_batch_size`` samples, waiting at most ``max_wait_ms`` after the first
  request so a lone request still gets low latency;
* the batch runs through ``predict(batch, batch_chunk=)`` once and the result
  rows are scattered back to each request's future;
* requests that sat in the queue past their deadline are failed with
  :class:`RequestTimeout` instead of being dispatched (shed load late, not
  never).

The design follows the router/engine split of vLLM's production stack scaled
to this repo: scheduling policy lives here, numerical work stays in the
engine, and every decision is observable through
:class:`~repro.serve.metrics.ServerMetrics`.
"""

from __future__ import annotations

import queue
import threading
import time
from typing import Callable, List, Optional

import numpy as np

from repro.serve.metrics import ServerMetrics


class SchedulerError(RuntimeError):
    """Base class for scheduling failures."""


class QueueFullError(SchedulerError):
    """The bounded request queue is at capacity (admission control)."""


class RequestTimeout(SchedulerError):
    """The request exceeded its deadline before completing."""


class SchedulerStopped(SchedulerError):
    """The scheduler is shut down and no longer accepts work."""


class InferenceRequest:
    """A submitted batch-of-samples and its completion future."""

    __slots__ = ("inputs", "num_samples", "submitted_at", "deadline",
                 "_done", "_result", "_error", "queue_seconds")

    def __init__(self, inputs: np.ndarray, timeout_s: Optional[float]):
        self.inputs = inputs
        self.num_samples = int(inputs.shape[0])
        self.submitted_at = time.monotonic()
        self.deadline = (self.submitted_at + timeout_s) if timeout_s else None
        self._done = threading.Event()
        self._result: Optional[np.ndarray] = None
        self._error: Optional[BaseException] = None
        self.queue_seconds = 0.0

    # -- worker side ---------------------------------------------------- #
    def expired(self, now: float) -> bool:
        return self.deadline is not None and now > self.deadline

    def set_result(self, result: np.ndarray) -> None:
        self._result = result
        self._done.set()

    def set_error(self, error: BaseException) -> None:
        self._error = error
        self._done.set()

    # -- caller side ---------------------------------------------------- #
    def result(self, timeout: Optional[float] = None) -> np.ndarray:
        """Block until the batch containing this request completes."""
        if not self._done.wait(timeout):
            raise RequestTimeout("timed out waiting for inference result")
        if self._error is not None:
            raise self._error
        return self._result

    @property
    def done(self) -> bool:
        return self._done.is_set()


class DynamicBatcher:
    """Coalesce single-sample requests into micro-batches for one engine.

    Parameters
    ----------
    predict_fn:
        ``(batch: np.ndarray) -> np.ndarray`` — typically
        ``lambda x: engine.predict(x, batch_chunk=...)``.
    max_batch_size:
        Sample budget per dispatched batch.  A single request larger than the
        budget still dispatches (alone) — the engine chunks internally.
    max_wait_ms:
        How long a *lone* first request is held open for near-simultaneous
        followers; once two or more requests have coalesced the batch
        dispatches as soon as the queue is momentarily empty (see
        :meth:`_collect_batch`).
    max_queue_depth:
        Bound on queued (not yet dispatched) requests; beyond it ``submit``
        raises :class:`QueueFullError`.
    request_timeout_s:
        Default per-request deadline; expired requests are failed, not run.
    on_batch:
        Optional hook ``(inputs, outputs) -> None`` called after each batch
        (the parity auditor taps in here).
    """

    def __init__(self, predict_fn: Callable[[np.ndarray], np.ndarray],
                 max_batch_size: int = 32, max_wait_ms: float = 5.0,
                 max_queue_depth: int = 256,
                 request_timeout_s: Optional[float] = 30.0,
                 metrics: Optional[ServerMetrics] = None,
                 on_batch: Optional[Callable[[np.ndarray, np.ndarray], None]] = None):
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        self.predict_fn = predict_fn
        self.max_batch_size = int(max_batch_size)
        self.max_wait_s = max(float(max_wait_ms), 0.0) / 1e3
        self.request_timeout_s = request_timeout_s
        self.metrics = metrics if metrics is not None else ServerMetrics()
        self.on_batch = on_batch
        self._queue: "queue.Queue[InferenceRequest]" = queue.Queue(maxsize=max_queue_depth)
        #: A popped request that would have overflowed its batch's sample
        #: budget; it seeds the next batch instead (worker-thread only).
        self._carry: Optional[InferenceRequest] = None
        self._running = False
        self._stopped = False
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------ #
    def start(self) -> "DynamicBatcher":
        if self._thread is None or not self._thread.is_alive():
            self._running = True
            self._stopped = False
            self._thread = threading.Thread(target=self._worker,
                                            name="repro-serve-batcher", daemon=True)
            self._thread.start()
        return self

    def stop(self, drain: bool = True, timeout: float = 5.0) -> None:
        """Stop the worker; with ``drain`` the queue is emptied first."""
        if self._thread is not None:
            if drain:
                deadline = time.monotonic() + timeout
                while not self._queue.empty() and time.monotonic() < deadline:
                    time.sleep(0.005)
            self._running = False
            self._thread.join(timeout)
            self._thread = None
        self._running = False
        self._stopped = True
        # Fail anything still queued (or carried) so no caller blocks forever.
        if self._carry is not None:
            self._carry.set_error(SchedulerStopped("scheduler stopped"))
            self._carry = None
        while True:
            try:
                request = self._queue.get_nowait()
            except queue.Empty:
                break
            request.set_error(SchedulerStopped("scheduler stopped"))

    @property
    def queue_depth(self) -> int:
        return self._queue.qsize()

    # ------------------------------------------------------------------ #
    def submit(self, inputs: np.ndarray,
               timeout_s: Optional[float] = None) -> InferenceRequest:
        """Enqueue a request; returns its future.  Never blocks on a full queue.

        Submitting before :meth:`start` is allowed — requests queue up and the
        worker drains them once started (tests use this to force coalescing
        deterministically); submitting after :meth:`stop` raises.
        """
        if self._stopped:
            raise SchedulerStopped("scheduler is stopped")
        inputs = np.asarray(inputs, dtype=np.float64)
        if inputs.shape[0] == 0:
            raise ValueError("empty batch submitted")
        request = InferenceRequest(
            inputs, timeout_s if timeout_s is not None else self.request_timeout_s)
        try:
            self._queue.put_nowait(request)
        except queue.Full:
            self.metrics.record_rejected()
            raise QueueFullError(
                f"request queue is full ({self._queue.maxsize} pending); retry later"
            ) from None
        self.metrics.record_submitted(request.num_samples)
        return request

    def predict(self, inputs: np.ndarray, timeout_s: Optional[float] = None) -> np.ndarray:
        """Convenience synchronous path: submit and wait."""
        request = self.submit(inputs, timeout_s=timeout_s)
        wait = None
        if request.deadline is not None:
            wait = max(request.deadline - time.monotonic(), 0.0) + 1.0
        return request.result(timeout=wait)

    # ------------------------------------------------------------------ #
    def _collect_batch(self) -> List[InferenceRequest]:
        """Block for the first request, then coalesce followers greedily.

        Continuous-batching policy: everything already queued is drained
        without waiting; the ``max_wait_ms`` hold window is only spent while
        the batch still holds a *single* request (giving a lone arrival a
        chance to coalesce with near-simultaneous followers).  Once at least
        two requests are on board and the queue is momentarily empty the
        batch dispatches immediately — waiting longer would trade latency for
        nothing, and under a closed-loop client population (everyone blocked
        on us) it would deadlock throughput against the window.  Sustained
        load still fills batches to the budget: requests that arrive during
        the previous batch's inference are all picked up in one drain.
        """
        if self._carry is not None:
            first, self._carry = self._carry, None
        else:
            try:
                first = self._queue.get(timeout=0.05)
            except queue.Empty:
                return []
        batch = [first]
        samples = first.num_samples
        hold_until = time.monotonic() + self.max_wait_s
        while samples < self.max_batch_size:
            try:
                request = self._queue.get_nowait()
            except queue.Empty:
                if len(batch) >= 2:
                    break
                remaining = hold_until - time.monotonic()
                if remaining <= 0:
                    break
                try:
                    request = self._queue.get(timeout=remaining)
                except queue.Empty:
                    break
            if samples + request.num_samples > self.max_batch_size:
                # Never overshoot the sample budget: the oversized follower
                # seeds the next batch.  (A single request above the budget
                # still dispatches — alone, as the first of its batch.)
                self._carry = request
                break
            batch.append(request)
            samples += request.num_samples
        return batch

    def _dispatch(self, batch: List[InferenceRequest]) -> None:
        now = time.monotonic()
        live: List[InferenceRequest] = []
        for request in batch:
            if request.expired(now):
                self.metrics.record_timeout()
                request.set_error(RequestTimeout(
                    "request expired in queue before dispatch"))
            else:
                request.queue_seconds = now - request.submitted_at
                live.append(request)
        if not live:
            return
        started = time.monotonic()
        try:
            # Concatenation stays inside the guard: a shape-mismatched request
            # that slipped past admission must fail its batch, not kill the
            # worker thread.
            inputs = (live[0].inputs if len(live) == 1
                      else np.concatenate([request.inputs for request in live], axis=0))
            outputs = self.predict_fn(inputs)
        except Exception as exc:                      # noqa: BLE001 - forwarded
            self.metrics.record_error()
            for request in live:
                request.set_error(exc)
            return
        infer_seconds = time.monotonic() - started
        self.metrics.record_batch(int(inputs.shape[0]), infer_seconds)
        offset = 0
        finished = time.monotonic()
        for request in live:
            request.set_result(outputs[offset:offset + request.num_samples])
            offset += request.num_samples
            self.metrics.record_completed(finished - request.submitted_at,
                                          request.queue_seconds)
        if self.on_batch is not None:
            try:
                self.on_batch(inputs, outputs)
            except Exception:                         # noqa: BLE001 - audit is best-effort
                self.metrics.record_error()

    def _worker(self) -> None:
        while self._running:
            try:
                batch = self._collect_batch()
                if batch:
                    self._dispatch(batch)
            except Exception:                         # noqa: BLE001 - keep serving
                # _dispatch guards per-batch failures; this is a last-resort
                # backstop so no bug can permanently kill the worker thread.
                self.metrics.record_error()
