"""Dynamic micro-batching scheduler with admission control and QoS.

Production CAM inference is throughput-bound: the fused kernels amortize their
fixed costs (im2col set-up, GEMM dispatch, LUT gathers) across the batch, so
serving one request per forward wastes most of the hardware.  The
:class:`DynamicBatcher` sits between the HTTP front end and a
:class:`~repro.serve.engine.BundleEngine`:

* requests enqueue into **bounded per-priority-class queues** — when the total
  (or the batch-class share of it) is full the submit raises
  :class:`QueueFullError` immediately (backpressure, not unbounded
  buffering), which the server maps to HTTP 429;
* a worker thread coalesces waiting requests into one batch of up to
  ``max_batch_size`` samples, waiting at most ``max_wait_ms`` after the first
  request so a lone request still gets low latency;
* coalescing is **priority-ordered** (``interactive`` > ``standard`` >
  ``batch``) and bulk work is budgeted: at most ``batch_class_samples`` of
  each dispatched batch may be ``batch``-class samples, so an interactive
  arrival is never stuck behind a full batch of bulk scoring work;
* the batch runs through ``predict(batch, batch_chunk=)`` once and the result
  rows are scattered back to each request's future;
* requests that sat in the queue past their deadline — or that are **doomed**
  (the deadline will pass before the batch's predicted inference time
  elapses) — are failed with :class:`RequestTimeout` instead of being
  dispatched, carrying queue-time diagnostics (shed load early, before it
  wastes engine time).

The design follows the router/engine split of vLLM's production stack scaled
to this repo: scheduling policy lives here, numerical work stays in the
engine, and every decision is observable through
:class:`~repro.serve.metrics.ServerMetrics`.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Callable, Deque, List, Optional

import numpy as np

from repro.serve.metrics import ServerMetrics
from repro.serve.trace import Tracer, use_context

#: Priority classes, most to least important; index = dispatch rank.
#: Canonical definition — :mod:`repro.serve.qos` re-exports it.
PRIORITY_CLASSES = ("interactive", "standard", "batch")

#: The class assigned when a request does not say (the pre-QoS behaviour).
DEFAULT_PRIORITY = "standard"

#: The tenant id assigned when a request does not say.
DEFAULT_TENANT = "default"

_BATCH_RANK = PRIORITY_CLASSES.index("batch")


def priority_rank(priority: str) -> int:
    """Numeric rank of ``priority`` (0 = most important); raises on unknown."""
    try:
        return PRIORITY_CLASSES.index(priority)
    except ValueError:
        raise ValueError(f"unknown priority class {priority!r}; "
                         f"expected one of {PRIORITY_CLASSES}") from None


class SchedulerError(RuntimeError):
    """Base class for scheduling failures."""


class QueueFullError(SchedulerError):
    """The bounded request queue is at capacity (admission control)."""


class RequestTimeout(SchedulerError):
    """The request exceeded its deadline before completing.

    When the deadline expired while the request was still *queued* (shed
    before any engine work), ``queue_ms``/``stage`` carry the diagnostics the
    front ends surface on the 408 — how long it waited and in which queue.
    """

    def __init__(self, message: str = "request timed out", *,
                 queue_ms: Optional[float] = None,
                 stage: Optional[str] = None):
        super().__init__(message)
        self.queue_ms = queue_ms
        self.stage = stage

    @property
    def details(self) -> dict:
        details: dict = {}
        if self.queue_ms is not None:
            details["queue_ms"] = round(self.queue_ms, 3)
        if self.stage is not None:
            details["stage"] = self.stage
        return details


class SchedulerStopped(SchedulerError):
    """The scheduler is shut down and no longer accepts work."""


class InferenceRequest:
    """A submitted batch-of-samples and its completion future."""

    __slots__ = ("inputs", "num_samples", "submitted_at", "deadline",
                 "priority", "tenant", "rank",
                 "_done", "_result", "_error", "queue_seconds",
                 "trace_id", "parent_span", "queue_span", "infer_seconds")

    def __init__(self, inputs: np.ndarray, timeout_s: Optional[float],
                 priority: str = DEFAULT_PRIORITY,
                 tenant: str = DEFAULT_TENANT,
                 deadline: Optional[float] = None,
                 trace_id: Optional[str] = None,
                 parent_span: Optional[str] = None):
        self.inputs = inputs
        self.num_samples = int(inputs.shape[0])
        self.submitted_at = time.monotonic()
        #: Absolute deadline (monotonic seconds).  An explicit ``deadline``
        #: (propagated from an upstream front end) wins over the relative
        #: ``timeout_s`` so the request honours the budget it was admitted
        #: with, not a fresh one.
        if deadline is not None:
            self.deadline = float(deadline)
        else:
            self.deadline = (self.submitted_at + timeout_s) if timeout_s else None
        self.priority = priority
        self.tenant = tenant
        self.rank = priority_rank(priority)
        self._done = threading.Event()
        self._result: Optional[np.ndarray] = None
        self._error: Optional[BaseException] = None
        self.queue_seconds = 0.0
        #: Trace propagation: the id this request rides under, the span that
        #: submitted it (the parent of the batcher's spans), the open
        #: ``batch.queue`` span, and the measured per-batch inference time.
        self.trace_id = trace_id
        self.parent_span = parent_span
        self.queue_span = None
        self.infer_seconds = 0.0

    # -- worker side ---------------------------------------------------- #
    def expired(self, now: float) -> bool:
        return self.deadline is not None and now > self.deadline

    def set_result(self, result: np.ndarray) -> None:
        self._result = result
        self._done.set()

    def set_error(self, error: BaseException) -> None:
        self._error = error
        self._done.set()

    # -- caller side ---------------------------------------------------- #
    def result(self, timeout: Optional[float] = None) -> np.ndarray:
        """Block until the batch containing this request completes."""
        if not self._done.wait(timeout):
            raise RequestTimeout("timed out waiting for inference result")
        if self._error is not None:
            raise self._error
        return self._result

    @property
    def done(self) -> bool:
        return self._done.is_set()


class DynamicBatcher:
    """Coalesce single-sample requests into micro-batches for one engine.

    Parameters
    ----------
    predict_fn:
        ``(batch: np.ndarray) -> np.ndarray`` — typically
        ``lambda x: engine.predict(x, batch_chunk=...)``.
    max_batch_size:
        Sample budget per dispatched batch.  A single request larger than the
        budget still dispatches (alone) — the engine chunks internally.
    max_wait_ms:
        How long a *lone* first request is held open for near-simultaneous
        followers; once two or more requests have coalesced the batch
        dispatches as soon as the queue is momentarily empty (see
        :meth:`_collect_batch`).
    max_queue_depth:
        Bound on queued (not yet dispatched) requests across all classes;
        beyond it ``submit`` raises :class:`QueueFullError`.  ``batch``-class
        requests are additionally capped at half the depth so a bulk backlog
        cannot exhaust the queue interactive traffic needs.
    request_timeout_s:
        Default per-request deadline; expired requests are failed, not run.
    batch_class_samples:
        Bulk-class sample budget per dispatched micro-batch (default
        ``max(1, max_batch_size // 4)``); the knob that keeps an interactive
        arrival from waiting behind a full batch of bulk scoring work.
    on_batch:
        Optional hook ``(inputs, outputs) -> None`` called after each batch
        (the parity auditor taps in here).
    """

    def __init__(self, predict_fn: Callable[[np.ndarray], np.ndarray],
                 max_batch_size: int = 32, max_wait_ms: float = 5.0,
                 max_queue_depth: int = 256,
                 request_timeout_s: Optional[float] = 30.0,
                 metrics: Optional[ServerMetrics] = None,
                 on_batch: Optional[Callable[[np.ndarray, np.ndarray], None]] = None,
                 batch_class_samples: Optional[int] = None,
                 tracer: Optional[Tracer] = None):
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        self.predict_fn = predict_fn
        self.max_batch_size = int(max_batch_size)
        self.max_wait_s = max(float(max_wait_ms), 0.0) / 1e3
        self.max_queue_depth = int(max_queue_depth)
        self.batch_queue_cap = max(1, self.max_queue_depth // 2)
        self.batch_class_samples = (
            int(batch_class_samples) if batch_class_samples is not None
            else max(1, self.max_batch_size // 4))
        self.request_timeout_s = request_timeout_s
        self.metrics = metrics if metrics is not None else ServerMetrics()
        self.on_batch = on_batch
        self.tracer = tracer
        self._cond = threading.Condition()
        #: Per-priority-class FIFO queues; dispatch pops rank 0 first.
        self._queues: List[Deque[InferenceRequest]] = \
            [deque() for _ in PRIORITY_CLASSES]
        self._depth = 0
        #: EWMA of per-batch inference seconds — the doomed-request detector's
        #: estimate of how long a dispatch will take.
        self._infer_ewma = 0.0
        #: A popped request that would have overflowed its batch's sample
        #: budget; it seeds the next batch instead (worker-thread only).
        self._carry: Optional[InferenceRequest] = None
        self._running = False
        self._stopped = False
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------ #
    def start(self) -> "DynamicBatcher":
        if self._thread is None or not self._thread.is_alive():
            self._running = True
            self._stopped = False
            self._thread = threading.Thread(target=self._worker,
                                            name="repro-serve-batcher", daemon=True)
            self._thread.start()
        return self

    def stop(self, drain: bool = True, timeout: float = 5.0) -> None:
        """Stop the worker; with ``drain`` the queue is emptied first."""
        if self._thread is not None:
            if drain:
                deadline = time.monotonic() + timeout
                while self.queue_depth > 0 and time.monotonic() < deadline:
                    time.sleep(0.005)
            self._running = False
            with self._cond:
                self._cond.notify_all()
            self._thread.join(timeout)
            self._thread = None
        self._running = False
        self._stopped = True
        # Fail anything still queued (or carried) so no caller blocks forever.
        if self._carry is not None:
            self._carry.set_error(SchedulerStopped("scheduler stopped"))
            self._carry = None
        with self._cond:
            pending = [request for q in self._queues for request in q]
            for q in self._queues:
                q.clear()
            self._depth = 0
        for request in pending:
            request.set_error(SchedulerStopped("scheduler stopped"))

    @property
    def queue_depth(self) -> int:
        with self._cond:
            return self._depth

    def queue_depth_by_class(self) -> dict:
        with self._cond:
            return {PRIORITY_CLASSES[rank]: len(q)
                    for rank, q in enumerate(self._queues)}

    # ------------------------------------------------------------------ #
    def submit(self, inputs: np.ndarray,
               timeout_s: Optional[float] = None,
               priority: str = DEFAULT_PRIORITY,
               tenant: str = DEFAULT_TENANT,
               deadline: Optional[float] = None,
               trace_id: Optional[str] = None,
               parent_span: Optional[str] = None) -> InferenceRequest:
        """Enqueue a request; returns its future.  Never blocks on a full queue.

        Submitting before :meth:`start` is allowed — requests queue up and the
        worker drains them once started (tests use this to force coalescing
        deterministically); submitting after :meth:`stop` raises.
        """
        if self._stopped:
            raise SchedulerStopped("scheduler is stopped")
        inputs = np.asarray(inputs, dtype=np.float64)
        if inputs.shape[0] == 0:
            raise ValueError("empty batch submitted")
        request = InferenceRequest(
            inputs, timeout_s if timeout_s is not None else self.request_timeout_s,
            priority=priority, tenant=tenant, deadline=deadline,
            trace_id=trace_id, parent_span=parent_span)
        if self.tracer is not None and request.trace_id:
            # Opened before enqueue, closed by ``_dispatch`` — its duration is
            # exactly the time the request spent queued in this batcher.
            request.queue_span = self.tracer.start_span(
                "batch.queue", request.trace_id, parent_id=request.parent_span,
                attrs={"priority": priority, "samples": request.num_samples})
        try:
            with self._cond:
                if self._depth >= self.max_queue_depth:
                    self.metrics.record_rejected(priority=priority)
                    raise QueueFullError(
                        f"request queue is full ({self.max_queue_depth} pending); "
                        f"retry later")
                if (request.rank == _BATCH_RANK
                        and len(self._queues[_BATCH_RANK]) >= self.batch_queue_cap):
                    self.metrics.record_rejected(priority=priority)
                    raise QueueFullError(
                        f"batch-class queue is full ({self.batch_queue_cap} "
                        f"pending); bulk work must yield — retry later")
                self._queues[request.rank].append(request)
                self._depth += 1
                self._cond.notify()
        except QueueFullError:
            if self.tracer is not None:
                self.tracer.finish_span(request.queue_span, status="rejected",
                                        reason="queue-full")
            raise
        self.metrics.record_submitted(request.num_samples)
        return request

    def predict(self, inputs: np.ndarray, timeout_s: Optional[float] = None,
                priority: str = DEFAULT_PRIORITY,
                tenant: str = DEFAULT_TENANT,
                deadline: Optional[float] = None) -> np.ndarray:
        """Convenience synchronous path: submit and wait."""
        request = self.submit(inputs, timeout_s=timeout_s, priority=priority,
                              tenant=tenant, deadline=deadline)
        wait = None
        if request.deadline is not None:
            wait = max(request.deadline - time.monotonic(), 0.0) + 1.0
        return request.result(timeout=wait)

    # ------------------------------------------------------------------ #
    def _pop_locked(self, bulk_samples: int = -1) -> Optional[InferenceRequest]:
        """Pop the highest-priority queued request (condition held).

        With ``bulk_samples >= 0`` the ``batch`` class is skipped once the
        current batch has spent its bulk sample budget — over-budget bulk
        work stays queued and seeds a later batch.
        """
        for rank, q in enumerate(self._queues):
            if not q:
                continue
            if (rank == _BATCH_RANK and bulk_samples >= 0
                    and bulk_samples >= self.batch_class_samples):
                continue
            self._depth -= 1
            return q.popleft()
        return None

    def _collect_batch(self) -> List[InferenceRequest]:
        """Block for the first request, then coalesce followers greedily.

        Continuous-batching policy: everything already queued is drained
        without waiting — highest priority class first — and the
        ``max_wait_ms`` hold window is only spent while the batch still holds
        a *single* request (giving a lone arrival a chance to coalesce with
        near-simultaneous followers).  Once at least two requests are on
        board and the queue is momentarily empty the batch dispatches
        immediately — waiting longer would trade latency for nothing, and
        under a closed-loop client population (everyone blocked on us) it
        would deadlock throughput against the window.  Sustained load still
        fills batches to the budget: requests that arrive during the previous
        batch's inference are all picked up in one drain, but never more than
        ``batch_class_samples`` bulk samples per dispatch.
        """
        if self._carry is not None:
            first, self._carry = self._carry, None
        else:
            with self._cond:
                if self._depth == 0:
                    self._cond.wait(timeout=0.05)
                first = self._pop_locked()
            if first is None:
                return []
        batch = [first]
        samples = first.num_samples
        bulk = first.num_samples if first.rank == _BATCH_RANK else 0
        hold_until = time.monotonic() + self.max_wait_s
        while samples < self.max_batch_size:
            with self._cond:
                request = self._pop_locked(bulk)
            if request is None:
                if len(batch) >= 2:
                    break
                remaining = hold_until - time.monotonic()
                if remaining <= 0:
                    break
                with self._cond:
                    if self._depth == 0:
                        self._cond.wait(timeout=remaining)
                    request = self._pop_locked(bulk)
                if request is None:
                    # Only over-budget bulk work is queued; idle out the rest
                    # of the hold window without hot-spinning on the lock.
                    time.sleep(min(remaining, 0.0005))
                    continue
            if samples + request.num_samples > self.max_batch_size:
                # Never overshoot the sample budget: the oversized follower
                # seeds the next batch.  (A single request above the budget
                # still dispatches — alone, as the first of its batch.)
                self._carry = request
                break
            batch.append(request)
            samples += request.num_samples
            if request.rank == _BATCH_RANK:
                bulk += request.num_samples
        return batch

    def _dispatch(self, batch: List[InferenceRequest]) -> None:
        now = time.monotonic()
        live: List[InferenceRequest] = []
        for request in batch:
            queue_ms = (now - request.submitted_at) * 1e3
            if request.expired(now):
                self.metrics.record_timeout(priority=request.priority)
                if self.tracer is not None:
                    self.tracer.finish_span(request.queue_span, status="timeout",
                                            stage="batch-queue", queue_ms=queue_ms)
                request.set_error(RequestTimeout(
                    f"request expired after {queue_ms:.1f} ms in queue, "
                    f"before dispatch",
                    queue_ms=queue_ms, stage="batch-queue"))
            elif (request.deadline is not None and self._infer_ewma > 0.0
                    and now + self._infer_ewma > request.deadline):
                # Doomed: the deadline will pass before the batch's predicted
                # inference time elapses — shed now, before engine work.
                self.metrics.record_timeout(priority=request.priority)
                if self.tracer is not None:
                    self.tracer.finish_span(request.queue_span, status="timeout",
                                            stage="doomed", queue_ms=queue_ms)
                request.set_error(RequestTimeout(
                    f"request shed as doomed after {queue_ms:.1f} ms in queue: "
                    f"{(request.deadline - now) * 1e3:.1f} ms of budget left "
                    f"vs ~{self._infer_ewma * 1e3:.1f} ms predicted inference",
                    queue_ms=queue_ms, stage="doomed"))
            else:
                request.queue_seconds = now - request.submitted_at
                if self.tracer is not None:
                    self.tracer.finish_span(request.queue_span,
                                            queue_ms=queue_ms)
                live.append(request)
        if not live:
            return
        started = time.monotonic()
        wall_started = time.time()
        try:
            # Concatenation stays inside the guard: a shape-mismatched request
            # that slipped past admission must fail its batch, not kill the
            # worker thread.
            inputs = (live[0].inputs if len(live) == 1
                      else np.concatenate([request.inputs for request in live], axis=0))
            traced = (next((r for r in live if r.trace_id), None)
                      if self.tracer is not None else None)
            if traced is not None:
                # Publish the trace context for the duration of the engine
                # call so ``BundleEngine.predict`` can attach its own span.
                with use_context(traced.trace_id, traced.parent_span or ""):
                    outputs = self.predict_fn(inputs)
            else:
                outputs = self.predict_fn(inputs)
        except Exception as exc:                      # noqa: BLE001 - forwarded
            self.metrics.record_error()
            for request in live:
                request.set_error(exc)
            return
        infer_seconds = time.monotonic() - started
        self._infer_ewma += 0.3 * (infer_seconds - self._infer_ewma)
        self.metrics.record_batch(int(inputs.shape[0]), infer_seconds)
        offset = 0
        finished = time.monotonic()
        for request in live:
            request.infer_seconds = infer_seconds
            if self.tracer is not None and request.trace_id:
                # Recorded post-hoc so span bookkeeping stays off the timed
                # inference path (infer_seconds is already measured), but
                # BEFORE set_result releases the waiting client — otherwise
                # an immediate /trace fetch can race the span's append.  The
                # wall start is back-dated to the batch's.
                span = self.tracer.start_span(
                    "batch.infer", request.trace_id,
                    parent_id=request.parent_span,
                    attrs={"batch_samples": int(inputs.shape[0]),
                           "batch_requests": len(live),
                           "samples": request.num_samples})
                if span is not None:
                    span.start_time = wall_started
                self.tracer.finish_span(span)
            request.set_result(outputs[offset:offset + request.num_samples])
            offset += request.num_samples
            self.metrics.record_completed(finished - request.submitted_at,
                                          request.queue_seconds,
                                          priority=request.priority,
                                          tenant=request.tenant)
        if self.on_batch is not None:
            try:
                self.on_batch(inputs, outputs)
            except Exception:                         # noqa: BLE001 - audit is best-effort
                self.metrics.record_error()

    def _worker(self) -> None:
        while self._running:
            try:
                batch = self._collect_batch()
                if batch:
                    self._dispatch(batch)
            except Exception:                         # noqa: BLE001 - keep serving
                # _dispatch guards per-batch failures; this is a last-resort
                # backstop so no bug can permanently kill the worker thread.
                self.metrics.record_error()
