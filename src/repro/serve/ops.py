"""Backwards-compatible re-exports of the unified op lowerings.

The pure-NumPy forward ops used to live here; since the graph-IR refactor
every lowering has exactly one home — the op registry of
:mod:`repro.ir.ops` — and this module only re-exports the public functions so
existing imports (``from repro.serve import ops``) keep working.
"""

from __future__ import annotations

from repro.ir.ops import (avg_pool2d, batch_norm, concat, conv2d, flatten,
                          gelu, global_avg_pool2d, linear, max_pool2d, relu)

__all__ = [
    "avg_pool2d",
    "batch_norm",
    "concat",
    "conv2d",
    "flatten",
    "gelu",
    "global_avg_pool2d",
    "linear",
    "max_pool2d",
    "relu",
]
