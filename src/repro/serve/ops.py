"""Pure-NumPy forward ops for replaying a bundle's inference program.

Each function mirrors the corresponding forward pass of
:mod:`repro.autograd.functional` *exactly* — same lowering (im2col + einsum
for convolution), same reduction order, same constants — so a
:class:`~repro.serve.engine.BundleEngine` replay is element-wise identical to
running the source model through the CAM engine, without importing autograd.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.perf.im2col import conv_output_size, im2col


def conv2d(x: np.ndarray, weight: np.ndarray, bias: Optional[np.ndarray],
           stride: int = 1, padding: int = 0) -> np.ndarray:
    """2-D convolution via im2col lowering; mirrors ``functional.conv2d``."""
    n, cin, h, w = x.shape
    cout, cin_w, k, _ = weight.shape
    if cin != cin_w:
        raise ValueError(f"channel mismatch: input has {cin}, weight expects {cin_w}")
    hout = conv_output_size(h, k, stride, padding)
    wout = conv_output_size(w, k, stride, padding)
    cols = im2col(x, k, stride, padding)                 # (N, Cin*k*k, L)
    w_mat = weight.reshape(cout, -1)                     # (Cout, Cin*k*k)
    out = np.einsum("of,nfl->nol", w_mat, cols).reshape(n, cout, hout, wout)
    if bias is not None:
        out = out + bias.reshape(1, cout, 1, 1)
    return out


def linear(x: np.ndarray, weight: np.ndarray, bias: Optional[np.ndarray]) -> np.ndarray:
    """``x @ weight.T + bias`` with ``weight`` of shape ``(out, in)``."""
    out = np.matmul(x, weight.T)
    if bias is not None:
        out = out + bias
    return out


def relu(x: np.ndarray) -> np.ndarray:
    return np.maximum(x, 0.0)


def gelu(x: np.ndarray) -> np.ndarray:
    """Gaussian error linear unit (tanh approximation, same constants)."""
    inner = (x + x * x * x * 0.044715) * 0.7978845608028654
    return x * (np.tanh(inner) + 1.0) * 0.5


def _pool_windows(x: np.ndarray, kernel_size: int, stride: int) -> np.ndarray:
    n, c, h, w = x.shape
    k = kernel_size
    hout = (h - k) // stride + 1
    wout = (w - k) // stride + 1
    sn, sc, sh, sw = x.strides
    return np.lib.stride_tricks.as_strided(
        x,
        shape=(n, c, hout, wout, k, k),
        strides=(sn, sc, sh * stride, sw * stride, sh, sw),
        writeable=False,
    )


def max_pool2d(x: np.ndarray, kernel_size: int, stride: Optional[int] = None) -> np.ndarray:
    stride = stride if stride is not None else kernel_size
    windows = _pool_windows(x, kernel_size, stride)
    k = kernel_size
    flat = windows.reshape(*windows.shape[:4], k * k)
    arg = flat.argmax(axis=-1)
    return np.take_along_axis(flat, arg[..., None], axis=-1)[..., 0]


def avg_pool2d(x: np.ndarray, kernel_size: int, stride: Optional[int] = None) -> np.ndarray:
    stride = stride if stride is not None else kernel_size
    return _pool_windows(x, kernel_size, stride).mean(axis=(-1, -2))


def global_avg_pool2d(x: np.ndarray) -> np.ndarray:
    return x.mean(axis=(2, 3))


def flatten(x: np.ndarray) -> np.ndarray:
    return x.reshape(x.shape[0], -1)


def batch_norm(x: np.ndarray, mean: np.ndarray, var: np.ndarray,
               gamma: np.ndarray, beta: np.ndarray, eps: float) -> np.ndarray:
    """Eval-mode batch normalization; mirrors ``functional.batch_norm``."""
    if x.ndim == 4:
        shape = (1, -1, 1, 1)
    elif x.ndim == 2:
        shape = (1, -1)
    else:
        raise ValueError(f"batch_norm expects 2-D or 4-D input, got {x.ndim}-D")
    normalized = (x - mean.reshape(shape)) / np.sqrt(var.reshape(shape) + eps)
    return normalized * gamma.reshape(shape) + beta.reshape(shape)
