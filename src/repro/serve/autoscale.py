"""Elastic worker-pool control loop (decision engine).

The :class:`Autoscaler` is a *pure* policy object: the pool's monitor thread
feeds it one :class:`ScaleSignals` observation per tick and applies whatever
:class:`ScaleDecision` comes back (spawn N / retire N — the mechanics live in
:mod:`repro.serve.pool`).  Keeping the policy free of processes, sockets and
locks makes every scaling rule unit-testable with a fake clock.

Policy
------
* **Scale-up** when admission pressure is *sustained*: the router waiting
  room exceeds ``up_queue_per_worker × capacity`` (capacity counts ready
  workers plus ones already being started, so pressure during a spawn does
  not double-trigger), or the recent p99 exceeds the QoS SLO when one is
  configured.  After ``up_dwell_s`` of continuous pressure the target
  doubles (bounded by the ceiling) — doubling reaches a 1→4 ramp in two
  decisions instead of three while staying proportional to pool size.
* **Scale-down** when the pool is *completely idle* (no queued, no
  in-flight) for ``down_idle_s``: the target steps down by one — retiring is
  deliberately more timid than growing, because a retire flushes a worker's
  warm batchers.
* **Scale-to-zero**: with ``scale_to_zero`` the idle path may retire the
  last worker.  A request arriving at an empty pool calls :meth:`wake`,
  which forces the target to at least one immediately (no dwell, no
  cooldown) — the cold-start latency is already the mmap'd bundle load; the
  policy must not add seconds of deliberation on top.
* **Cooldown** (``cooldown_s``) separates consecutive scaling actions in
  either direction so the loop cannot flap; :meth:`wake` and operator pins
  (:meth:`pin`) bypass it, dwell timers reset on every action.

The pool's crash-loop breaker stays authoritative: the autoscaler proposes
targets, but the pool refuses to spawn when respawns are exhausted.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional

from repro.serve.config import AutoscaleConfig

__all__ = ["Autoscaler", "ScaleDecision", "ScaleSignals"]


@dataclass(frozen=True)
class ScaleSignals:
    """One monitor-tick observation of the pool."""

    ready: int                      #: workers in the routing rotation
    starting: int = 0               #: spawned but not yet ready (incl. probing)
    retiring: int = 0               #: draining toward retirement
    queue_depth: float = 0.0        #: router waiting room + worker batch queues
    inflight: int = 0               #: admitted /predict calls not yet finished
    p99_ms: float = 0.0             #: recent end-to-end p99
    p99_slo_ms: Optional[float] = None  #: QoS SLO (None: latency not a signal)

    @property
    def capacity(self) -> int:
        """Workers that are serving or about to: the denominator for
        per-worker pressure (starting workers count — their spawn is the
        response to pressure already measured)."""
        return self.ready + self.starting


@dataclass(frozen=True)
class ScaleDecision:
    """One applied (or proposed) change of the worker target."""

    target: int
    previous: int
    reason: str
    at: float

    def describe(self) -> Dict[str, object]:
        return {"target": self.target, "previous": self.previous,
                "reason": self.reason, "at": round(self.at, 3)}


@dataclass
class Autoscaler:
    """Queue/latency-driven worker-target policy (see module docstring)."""

    config: AutoscaleConfig
    start_workers: int = 1
    clock: Callable[[], float] = time.monotonic
    events: Deque[ScaleDecision] = field(default_factory=lambda: deque(maxlen=256))

    def __post_init__(self) -> None:
        self.floor = self.config.floor()
        self.ceiling = self.config.ceiling(self.start_workers)
        self.target = min(max(self.start_workers, self.floor), self.ceiling)
        self.scale_ups = 0
        self.scale_downs = 0
        self._pressure_since: Optional[float] = None
        self._idle_since: Optional[float] = None
        self._last_action_at: Optional[float] = None

    # ------------------------------------------------------------------ #
    # Decisions
    # ------------------------------------------------------------------ #
    def observe(self, signals: ScaleSignals) -> Optional[ScaleDecision]:
        """Fold one observation in; a non-``None`` result is a new target."""
        now = self.clock()
        if self._under_pressure(signals):
            self._idle_since = None
            if self._pressure_since is None:
                self._pressure_since = now
            if (self.target < self.ceiling
                    and now - self._pressure_since >= self.config.up_dwell_s
                    and self._cooled_down(now)):
                # Doubling, not +1: pressure is measured per worker, so a
                # pool twice as deep needs twice the step to feel relief.
                return self._retarget(
                    min(max(self.target + 1, self.target * 2), self.ceiling),
                    "queue-pressure" if signals.p99_slo_ms is None
                    or signals.p99_ms <= signals.p99_slo_ms else "p99-slo",
                    now)
        elif self._is_idle(signals):
            self._pressure_since = None
            if self._idle_since is None:
                self._idle_since = now
            if (self.target > self.floor
                    and now - self._idle_since >= self.config.down_idle_s
                    and self._cooled_down(now)):
                return self._retarget(max(self.target - 1, self.floor),
                                      "idle", now)
        else:
            # Busy-but-coping: neither dwell timer accumulates.
            self._pressure_since = None
            self._idle_since = None
        return None

    def wake(self, reason: str = "cold-start") -> Optional[ScaleDecision]:
        """Force at least one worker *now* (request hit an empty pool)."""
        if self.target >= 1:
            return None
        return self._retarget(max(1, self.floor), reason, self.clock(),
                              force=True)

    def pin(self, workers: int, reason: str = "operator") -> ScaleDecision:
        """Operator override via ``/admin/scale``: clamp into the envelope
        and apply immediately (no dwell, no cooldown)."""
        workers = min(max(int(workers), self.floor), self.ceiling)
        return self._retarget(workers, reason, self.clock(), force=True) \
            or ScaleDecision(self.target, self.target, reason, self.clock())

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _under_pressure(self, signals: ScaleSignals) -> bool:
        capacity = max(signals.capacity, 1)
        if signals.queue_depth >= self.config.up_queue_per_worker * capacity:
            return True
        if signals.capacity == 0 and (signals.queue_depth > 0
                                      or signals.inflight > 0):
            return True
        return (signals.p99_slo_ms is not None and signals.p99_ms > 0
                and signals.p99_ms > signals.p99_slo_ms)

    @staticmethod
    def _is_idle(signals: ScaleSignals) -> bool:
        return signals.queue_depth <= 0 and signals.inflight <= 0

    def _cooled_down(self, now: float) -> bool:
        return (self._last_action_at is None
                or now - self._last_action_at >= self.config.cooldown_s)

    def _retarget(self, target: int, reason: str,
                  now: float, force: bool = False) -> Optional[ScaleDecision]:
        if target == self.target:
            return None
        decision = ScaleDecision(target, self.target, reason, now)
        if target > self.target:
            self.scale_ups += 1
        else:
            self.scale_downs += 1
        self.target = target
        self._last_action_at = now
        self._pressure_since = None
        self._idle_since = None
        self.events.append(decision)
        return decision

    # ------------------------------------------------------------------ #
    # Observability
    # ------------------------------------------------------------------ #
    def snapshot(self) -> Dict[str, object]:
        """The ``/metrics`` ``autoscale`` subtree."""
        recent: List[Dict[str, object]] = [event.describe()
                                           for event in list(self.events)[-16:]]
        return {
            "enabled": True,
            "target": self.target,
            "floor": self.floor,
            "ceiling": self.ceiling,
            "scale_ups": self.scale_ups,
            "scale_downs": self.scale_downs,
            "events": recent,
        }
