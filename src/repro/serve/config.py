"""Layered serving configuration — one typed tree for every serving knob.

Ten PRs of serving features each grew the ``PECANServer`` / ``PoolServer``
constructors and the ``repro-pecan serve`` flag list by hand, and the three
copies (constructor kwargs, CLI flags, worker-process plumbing) had started
to drift.  This module replaces all of that with a single layered dataclass
tree:

* :class:`ServeConfig` — the ONE constructor argument for
  :class:`~repro.serve.server.PECANServer`,
  :class:`~repro.serve.pool.PoolServer` and
  :class:`~repro.serve.federation.FrontRouter`.  Sections:
  ``net`` / ``engine`` / ``pool`` / ``qos`` / ``cache`` / ``trace`` /
  ``lifecycle`` / ``autoscale`` / ``federation``.
* **Flag generation** — every ``repro-pecan serve`` flag is generated from
  the field metadata (:func:`add_serve_arguments`), so a flag and its config
  field can never drift: adding a field adds the flag, its ``--help`` text
  and its row in the generated reference table (:func:`config_reference_table`)
  in one place.
* **Round trips** — ``argv`` ⇄ config (:func:`serve_config_from_args` /
  :func:`serve_config_to_args`) and JSON ⇄ config (:func:`to_json_dict` /
  :func:`from_json_dict`), plus ``--config serve.json`` support with
  *defaults < config file < explicit flags* precedence.
* **Legacy shim** — :func:`config_from_legacy_kwargs` maps the deprecated
  flat constructor kwargs (with their historical defaults, e.g. the cache
  off by default when constructed programmatically) onto the tree, so old
  call sites keep working for one release behind a ``DeprecationWarning``.

Field metadata convention (shared with :class:`~repro.serve.qos.QoSConfig`,
which lives in :mod:`repro.serve.qos` and is reused as the ``qos`` section
verbatim): each dataclass field carries ``metadata={"serve": {...}}`` with

``flag``
    the CLI option string (``"--max_queue"``), or ``None`` for a field only
    settable through a config file / programmatically (e.g. per-tenant maps);
``parse``
    the argparse ``type`` callable (``int`` / ``float`` / ``str``) — omitted
    for boolean switches;
``help``
    the ``--help`` text (doubles as the reference-table description);
``choices`` / ``metavar`` / ``repeatable`` / ``invert``
    optional: value choices, display metavar, ``action="append"`` flags
    (tuple-valued fields), and negated switches (``--no_mmap`` stores *False*
    into a field whose default is *True*).

Fields without ``"serve"`` metadata are a hard error at import of the flag
table — that is the no-drift guarantee the tests pin down.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
from dataclasses import dataclass, field, fields
from pathlib import Path
from typing import (Any, Dict, Iterator, List, Mapping, Optional, Sequence,
                    Tuple, Type)

from repro.serve.qos import QoSConfig

__all__ = [
    "AutoscaleConfig",
    "CacheConfig",
    "EngineConfig",
    "FederationConfig",
    "FlagSpec",
    "LifecycleConfig",
    "NetConfig",
    "PoolConfig",
    "ServeConfig",
    "TraceConfig",
    "add_serve_arguments",
    "cfgfield",
    "config_from_legacy_kwargs",
    "config_reference_table",
    "flag_specs",
    "from_json_dict",
    "iter_serve_fields",
    "load_config_file",
    "serve_config_from_args",
    "serve_config_to_args",
    "to_json_dict",
]


def cfgfield(default: Any = dataclasses.MISSING, *,
             factory: Any = None,
             flag: Optional[str] = "",
             parse: Any = None,
             help: str = "",                          # noqa: A002
             choices: Optional[Sequence[Any]] = None,
             metavar: Optional[str] = None,
             repeatable: bool = False,
             invert: bool = False) -> Any:
    """A ``dataclasses.field`` carrying serve-flag metadata.

    ``flag=""`` (the default) auto-derives ``--<field_name>``; ``flag=None``
    makes the field config-file-only.
    """
    serve = {"flag": flag, "parse": parse, "help": help, "choices": choices,
             "metavar": metavar, "repeatable": repeatable, "invert": invert}
    if factory is not None:
        return field(default_factory=factory, metadata={"serve": serve})
    return field(default=default, metadata={"serve": serve})


# --------------------------------------------------------------------------- #
# Sections
# --------------------------------------------------------------------------- #
@dataclass
class NetConfig:
    """The network front end (:mod:`repro.serve.netfront`)."""

    host: str = cfgfield("127.0.0.1", parse=str, help="bind address")
    port: int = cfgfield(8080, parse=int,
                         help="bind port (0 picks a free port)")
    http_backend: str = cfgfield(
        "eventloop", parse=str, choices=("eventloop", "threaded"),
        help="network front end: 'eventloop' multiplexes all connections "
             "through one selectors loop with keep-alive, pipelining, a "
             "connection budget and slowloris/idle timeouts; 'threaded' is "
             "the legacy thread-per-connection stdlib server")
    max_connections: int = cfgfield(
        512, parse=int,
        help="open-connection budget for the eventloop front end; "
             "connections beyond it are answered 503 + Retry-After at "
             "accept time")
    idle_timeout_s: float = cfgfield(
        30.0, parse=float,
        help="close keep-alive connections with no in-flight request after "
             "this long (eventloop front end)")
    request_read_timeout_s: float = cfgfield(
        10.0, parse=float,
        help="408-and-close a connection whose request head/body has not "
             "fully arrived after this long — the slowloris guard "
             "(eventloop front end)")
    io_threads: int = cfgfield(
        32, parse=int,
        help="bounded app-thread bridge size for the eventloop front end")


@dataclass
class EngineConfig:
    """Batching + engine execution knobs (per server / per pool worker)."""

    max_batch_size: int = cfgfield(
        32, parse=int, help="sample budget per coalesced micro-batch")
    max_wait_ms: float = cfgfield(
        5.0, parse=float,
        help="how long the batcher holds the first request open for "
             "followers")
    max_queue_depth: int = cfgfield(
        256, flag="--max_queue", parse=int,
        help="bounded queue depth; overflow is rejected with 429")
    request_timeout_s: float = cfgfield(
        30.0, flag="--timeout_s", parse=float, help="per-request deadline")
    batch_chunk: Optional[int] = cfgfield(
        None, parse=int,
        help="stream coalesced batches through the engine in slices of this "
             "many samples")
    audit_every: int = cfgfield(
        0, parse=int,
        help="re-run 1/N batches through the reference loop and count "
             "mismatches (0 disables)")
    max_total_values: Optional[int] = cfgfield(
        None, parse=int,
        help="LRU-evict engines beyond this many resident CAM values")
    optimize: bool = cfgfield(
        False,
        help="run the graph optimization passes (BN folding, ReLU fusion, "
             "dead-node elimination) on every engine, parity-checked "
             "against the pristine graph")
    mmap: bool = cfgfield(
        True, flag="--no_mmap", invert=True,
        help="load bundle arrays eagerly instead of memory-mapping the "
             "extracted .npy cache (mmap shares resident LUT pages across "
             "pool workers)")
    hardware_hz: Optional[float] = cfgfield(
        None, flag="--emulate_hardware_hz", parse=float,
        help="pace every batch to the latency a CAM accelerator at this "
             "clock would need (paper Section 4.3 cost model); for capacity "
             "planning and scaling benchmarks")

    @property
    def mmap_mode(self) -> Optional[str]:
        """The numpy ``mmap_mode`` string the loaders expect."""
        return "r" if self.mmap else None


@dataclass
class PoolConfig:
    """The worker-process pool and its router (:mod:`repro.serve.pool`)."""

    workers: int = cfgfield(
        1, parse=int,
        help="data-parallel worker processes; >1 starts the router + "
             "process pool (repro.serve.pool) instead of a single "
             "in-process server")
    policy: str = cfgfield(
        "least_outstanding", parse=str,
        choices=("round_robin", "least_outstanding", "model_affinity",
                 "cache_affinity"),
        help="pool routing policy (with --workers > 1); cache_affinity pins "
             "identical inputs to one worker by canonical input hash")
    heartbeat_interval_s: float = cfgfield(
        0.25, parse=float, help="worker heartbeat cadence (pool mode)")
    heartbeat_timeout_s: float = cfgfield(
        3.0, parse=float,
        help="heartbeat silence after which a worker is declared hung and "
             "respawned (pool mode)")
    start_timeout_s: float = cfgfield(
        60.0, parse=float,
        help="how long a spawning worker may take to report ready before it "
             "is declared failed (pool mode)")
    proxy_retries: int = cfgfield(
        2, parse=int,
        help="router retries of a proxied request on *another* worker after "
             "a connection failure (never after an in-flight timeout)")
    proxy_timeout_s: float = cfgfield(
        60.0, parse=float,
        help="router-side socket timeout per proxied worker request")
    start_method: str = cfgfield(
        "spawn", flag=None,
        help="multiprocessing start method for worker processes "
             "(config-file only)")
    monitor_trips_gate: bool = cfgfield(
        True, flag=None,
        help="runtime-verification violations trip the rollout gate "
             "(config-file only)")


@dataclass
class CacheConfig:
    """The deterministic response cache (:mod:`repro.serve.cache`)."""

    cache_mb: float = cfgfield(
        64.0, parse=float,
        help="deterministic response-cache budget in MiB (PECAN-D inference "
             "is bitwise deterministic, so exact result caching + in-flight "
             "coalescing is provably lossless); namespaced per "
             "model@version and invalidated on promote/rollback/undeploy")
    enabled: bool = cfgfield(
        True, flag="--no_cache", invert=True,
        help="disable the response cache and in-flight request coalescing")
    cache_check_every: int = cfgfield(
        64, parse=int,
        help="cache-parity audit rate (pool only): re-execute one cache hit "
             "in N through a worker engine and compare bitwise — divergence "
             "is a cache_parity runtime-verification violation (1 checks "
             "every hit, 0 disables)")

    @property
    def effective_mb(self) -> float:
        return self.cache_mb if self.enabled else 0.0


@dataclass
class TraceConfig:
    """Distributed tracing + runtime verification (trace / invariants)."""

    trace_dir: Optional[str] = cfgfield(
        None, parse=str,
        help="export spans as otel-style JSONL files "
             "(trace-<service>-<pid>.jsonl) under this directory; analyse "
             "with `repro-pecan trace`")
    enabled: bool = cfgfield(
        True, flag="--no_trace", invert=True,
        help="disable distributed tracing entirely (spans, /trace endpoint, "
             "JSONL export)")
    trace_ring: int = cfgfield(
        2048, parse=int,
        help="bounded in-memory span ring size per process")
    invariant_every: int = cfgfield(
        16, parse=int,
        help="runtime-verification sampling rate: check one response in N "
             "for finite logits / stable shape / retry-stable argmax "
             "(1 checks everything, 0 disables)")


@dataclass
class LifecycleConfig:
    """What to serve and how to load it (registry / deployments)."""

    bundles: Tuple[str, ...] = cfgfield(
        factory=tuple, flag="--bundle", parse=str, repeatable=True,
        metavar="[NAME=]PATH",
        help="deployment bundle .npz to serve; repeatable; NAME defaults to "
             "the file stem")
    preload: bool = cfgfield(
        True, flag="--lazy_load", invert=True,
        help="load bundles on first request instead of at startup")


@dataclass
class AutoscaleConfig:
    """The elastic worker-pool control loop (:mod:`repro.serve.autoscale`).

    Scale-up triggers on sustained admission pressure (router waiting room
    relative to ready capacity, or p99 against the QoS SLO when one is set);
    scale-down triggers after an idle dwell.  All decisions respect the
    crash-loop breaker and the ``[min_workers, max_workers]`` envelope.
    """

    enabled: bool = cfgfield(
        False, flag="--autoscale",
        help="grow/shrink the worker pool from observed queue depth and "
             "latency (pool mode); bounds via --min_workers/--max_workers")
    min_workers: Optional[int] = cfgfield(
        None, parse=int,
        help="autoscale floor (default: 0 with --scale_to_zero, else 1)")
    max_workers: Optional[int] = cfgfield(
        None, parse=int,
        help="autoscale ceiling (default: the starting --workers count)")
    up_queue_per_worker: float = cfgfield(
        4.0, flag="--scale_up_queue", parse=float,
        help="router waiting-room depth per ready worker that counts as "
             "scale-up pressure")
    up_dwell_s: float = cfgfield(
        1.0, flag="--scale_up_dwell_s", parse=float,
        help="how long pressure must be sustained before adding a worker")
    down_idle_s: float = cfgfield(
        10.0, flag="--scale_down_idle_s", parse=float,
        help="how long the pool must be idle below capacity before "
             "retiring a worker")
    cooldown_s: float = cfgfield(
        5.0, flag="--scale_cooldown_s", parse=float,
        help="minimum time between scaling actions (either direction)")
    scale_to_zero: bool = cfgfield(
        False,
        help="allow the pool to retire every worker when idle; the first "
             "request triggers an mmap-backed cold start and waits for it")
    cold_start_timeout_s: float = cfgfield(
        30.0, parse=float,
        help="how long a request arriving at an empty (scaled-to-zero) "
             "pool waits for the cold-started worker before 503")
    probe_timeout_s: float = cfgfield(
        5.0, parse=float,
        help="readiness-probe budget: a spawned worker joins the rotation "
             "only after answering /healthz within this long")

    def floor(self) -> int:
        if self.min_workers is not None:
            return max(0 if self.scale_to_zero else 1, self.min_workers)
        return 0 if self.scale_to_zero else 1

    def ceiling(self, start_workers: int) -> int:
        ceiling = (self.max_workers if self.max_workers is not None
                   else start_workers)
        return max(ceiling, self.floor(), 1)


@dataclass
class FederationConfig:
    """The multi-pool federation tier (:mod:`repro.serve.federation`)."""

    members: Tuple[str, ...] = cfgfield(
        factory=tuple, flag="--federate", parse=str, repeatable=True,
        metavar="URL",
        help="base URL of a member PoolServer/PECANServer; repeatable; any "
             "--federate makes `serve` start the federation front router "
             "that shards model namespaces across the members by "
             "consistent hashing")
    ring_replicas: int = cfgfield(
        64, parse=int,
        help="virtual nodes per member on the consistent-hash ring "
             "(more = smoother namespace spread, slower ring builds)")
    failover_retries: int = cfgfield(
        1, parse=int,
        help="how many surviving members to try after a member connection "
             "failure (in-flight timeouts are never retried)")
    front_timeout_s: float = cfgfield(
        60.0, parse=float,
        help="front-router socket timeout per proxied member request")
    probe_interval_s: float = cfgfield(
        1.0, flag="--member_probe_interval_s", parse=float,
        help="how often the front router health-probes its members")


@dataclass
class ServeConfig:
    """Every serving knob, layered by subsystem.

    ``PECANServer(config=ServeConfig(...))`` (and the same for ``PoolServer``
    / ``FrontRouter``) is the one non-deprecated construction path; the flat
    keyword constructors remain for one release behind a
    ``DeprecationWarning``.  :meth:`build` offers a flat convenience spelling
    for tests and scripts: ``ServeConfig.build(port=0, workers=4)``.
    """

    net: NetConfig = field(default_factory=NetConfig)
    engine: EngineConfig = field(default_factory=EngineConfig)
    pool: PoolConfig = field(default_factory=PoolConfig)
    qos: QoSConfig = field(default_factory=QoSConfig)
    cache: CacheConfig = field(default_factory=CacheConfig)
    trace: TraceConfig = field(default_factory=TraceConfig)
    lifecycle: LifecycleConfig = field(default_factory=LifecycleConfig)
    autoscale: AutoscaleConfig = field(default_factory=AutoscaleConfig)
    federation: FederationConfig = field(default_factory=FederationConfig)

    @classmethod
    def build(cls, **flat: Any) -> "ServeConfig":
        """Construct from flat field names: ``ServeConfig.build(port=0)``.

        Dotted names (``"cache.enabled"``) disambiguate the few field names
        that appear in more than one section.
        """
        config = cls()
        index = _flat_field_index()
        for name, value in flat.items():
            if "." in name:
                section_name, _, field_name = name.partition(".")
                sections = dict(SECTION_ORDER)
                if section_name not in sections or field_name not in {
                        f.name for f in fields(sections[section_name])}:
                    raise TypeError(f"unknown config field {name!r}")
                target = (section_name, field_name)
            else:
                hits = index.get(name)
                if not hits:
                    raise TypeError(f"unknown config field {name!r}")
                if len(hits) > 1:
                    options = ", ".join(f"{target[0]}.{name}"
                                        for target, _ in hits)
                    raise TypeError(
                        f"ambiguous config field {name!r}; use a dotted "
                        f"name: {options}")
                target = hits[0][0][0], name
            section_name, field_name = target
            setattr(getattr(config, section_name), field_name, value)
        return config

    def replace(self, **flat: Any) -> "ServeConfig":
        """A copy with flat/dotted overrides applied (sections deep-copied)."""
        merged = from_json_dict(to_json_dict(self))
        merged.qos = dataclasses.replace(self.qos)
        override = ServeConfig.build(**flat)
        for name, value in flat.items():
            if "." in name:
                section_name, _, field_name = name.partition(".")
            else:
                section_name = _flat_field_index()[name][0][0][0]
                field_name = name
            setattr(getattr(merged, section_name), field_name,
                    getattr(getattr(override, section_name), field_name))
        return merged


#: Section traversal order — also the --help group order and the row order of
#: the generated reference table.
SECTION_ORDER: Tuple[Tuple[str, type], ...] = (
    ("net", NetConfig),
    ("engine", EngineConfig),
    ("pool", PoolConfig),
    ("qos", QoSConfig),
    ("cache", CacheConfig),
    ("trace", TraceConfig),
    ("lifecycle", LifecycleConfig),
    ("autoscale", AutoscaleConfig),
    ("federation", FederationConfig),
)


# --------------------------------------------------------------------------- #
# Flag table (generated from field metadata)
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class FlagSpec:
    """One generated flag: the bridge between a config field and argparse."""

    section: str
    name: str                     # field name on the section dataclass
    flag: Optional[str]           # option string, None = config-file only
    dest: Optional[str]           # argparse dest (derived from the flag)
    parse: Any                    # argparse type callable (None for bools)
    help: str
    choices: Optional[Tuple[Any, ...]]
    metavar: Optional[str]
    repeatable: bool
    invert: bool
    is_bool: bool
    default: Any                  # the *field* default

    @property
    def argparse_default(self) -> Any:
        """What ``parse_args`` yields when the flag is absent."""
        if self.repeatable:
            return None                       # append-action sentinel
        if self.invert or (self.is_bool and self.default is False):
            return False
        return self.default

    def to_field_value(self, parsed: Any) -> Any:
        if self.repeatable:
            return tuple(parsed or ())
        if self.invert:
            return not parsed
        return parsed

    def from_field_value(self, value: Any) -> Any:
        if self.repeatable:
            return list(value)
        if self.invert:
            return not value
        return value


def _section_default(section_cls: type, f: dataclasses.Field) -> Any:
    if f.default is not dataclasses.MISSING:
        return f.default
    return f.default_factory()                # type: ignore[misc]


def flag_specs(section: str, section_cls: type) -> List[FlagSpec]:
    """The generated flag table for one section (hard error on bare fields)."""
    specs: List[FlagSpec] = []
    for f in fields(section_cls):
        meta = f.metadata.get("serve")
        if meta is None:
            raise TypeError(
                f"{section_cls.__name__}.{f.name} has no 'serve' field "
                f"metadata — every config field must declare its flag (or "
                f"flag=None for config-file-only fields)")
        flag = meta.get("flag", "")
        if flag == "":
            flag = f"--{f.name}"
        default = _section_default(section_cls, f)
        parse = meta.get("parse")
        is_bool = parse is None and isinstance(default, bool)
        specs.append(FlagSpec(
            section=section,
            name=f.name,
            flag=flag,
            dest=None if flag is None else flag.lstrip("-").replace("-", "_"),
            parse=parse,
            help=meta.get("help", ""),
            choices=tuple(meta["choices"]) if meta.get("choices") else None,
            metavar=meta.get("metavar"),
            repeatable=bool(meta.get("repeatable")),
            invert=bool(meta.get("invert")),
            is_bool=is_bool,
            default=default,
        ))
    return specs


def iter_serve_fields() -> Iterator[Tuple[str, FlagSpec]]:
    """Yield ``(section_name, spec)`` over every field of every section."""
    for section_name, section_cls in SECTION_ORDER:
        for spec in flag_specs(section_name, section_cls):
            yield section_name, spec


def _flat_field_index() -> Dict[str, List[Tuple[Tuple[str, str], Any]]]:
    index: Dict[str, List[Tuple[Tuple[str, str], Any]]] = {}
    for section_name, section_cls in SECTION_ORDER:
        for f in fields(section_cls):
            index.setdefault(f.name, []).append(
                ((section_name, f.name), section_cls))
    return index


# --------------------------------------------------------------------------- #
# argparse generation + argv round trip
# --------------------------------------------------------------------------- #
def add_serve_arguments(parser: argparse.ArgumentParser) -> None:
    """Install every generated serve flag (plus ``--config``) on ``parser``."""
    parser.add_argument(
        "--config", default=None, metavar="PATH",
        help="load a full ServeConfig from a JSON file (sections -> fields, "
             "see the README config reference); explicit flags override the "
             "file, the file overrides the built-in defaults")
    seen: Dict[str, str] = {}
    for section_name, section_cls in SECTION_ORDER:
        group = parser.add_argument_group(f"{section_name} options")
        for spec in flag_specs(section_name, section_cls):
            if spec.flag is None:
                continue
            if spec.dest in seen:
                raise TypeError(
                    f"flag {spec.flag} of {section_name}.{spec.name} "
                    f"collides with section {seen[spec.dest]}")
            seen[spec.dest] = section_name
            if spec.repeatable:
                group.add_argument(spec.flag, action="append", default=None,
                                   metavar=spec.metavar, help=spec.help)
            elif spec.invert or spec.is_bool:
                group.add_argument(spec.flag, action="store_true",
                                   help=spec.help)
            else:
                group.add_argument(spec.flag, type=spec.parse,
                                   default=spec.default, choices=spec.choices,
                                   metavar=spec.metavar, help=spec.help)


def serve_config_from_args(args: argparse.Namespace) -> ServeConfig:
    """Build a :class:`ServeConfig` from a parsed ``serve`` namespace.

    Precedence: built-in defaults < ``--config`` file < flags.  A flag is
    treated as explicit when its parsed value differs from the generated
    default (re-passing a flag *at* its default is a no-op, which is
    harmless: the value is the same).
    """
    config_path = getattr(args, "config", None)
    config = load_config_file(config_path) if config_path else ServeConfig()
    for section_name, spec in iter_serve_fields():
        if spec.dest is None or not hasattr(args, spec.dest):
            continue
        parsed = getattr(args, spec.dest)
        if parsed == spec.argparse_default:
            continue
        setattr(getattr(config, section_name), spec.name,
                spec.to_field_value(parsed))
    return config


def _format_argv_value(value: Any) -> str:
    if isinstance(value, float):
        return repr(value)
    return str(value)


def serve_config_to_args(config: ServeConfig) -> List[str]:
    """Render ``config`` as the minimal ``repro-pecan serve`` argv tail.

    Only non-default fields are emitted; parsing the result back
    (:func:`serve_config_from_args`) reproduces ``config`` exactly — the
    round trip the property tests pin down.  Config-file-only fields (no
    flag) raise when set away from their default, since argv cannot express
    them.
    """
    argv: List[str] = []
    for section_name, spec in iter_serve_fields():
        value = getattr(getattr(config, section_name), spec.name)
        if value == spec.default:
            continue
        if spec.flag is None:
            raise ValueError(
                f"{section_name}.{spec.name}={value!r} has no CLI flag; use "
                f"a --config file for it")
        if spec.invert:
            if value is False:
                argv.append(spec.flag)
        elif spec.is_bool:
            if value:
                argv.append(spec.flag)
        elif spec.repeatable:
            for item in value:
                argv += [spec.flag, _format_argv_value(item)]
        elif value is None:
            raise ValueError(
                f"{section_name}.{spec.name}=None cannot be expressed as a "
                f"flag (the default is {spec.default!r}); use a --config "
                f"file for it")
        else:
            argv += [spec.flag, _format_argv_value(value)]
    return argv


# --------------------------------------------------------------------------- #
# JSON round trip + --config files
# --------------------------------------------------------------------------- #
def to_json_dict(config: ServeConfig) -> Dict[str, Dict[str, Any]]:
    """``{section: {field: value}}`` with JSON-clean values (tuples→lists)."""
    out: Dict[str, Dict[str, Any]] = {}
    for section_name, section_cls in SECTION_ORDER:
        section = getattr(config, section_name)
        entry: Dict[str, Any] = {}
        for f in fields(section_cls):
            value = getattr(section, f.name)
            if isinstance(value, tuple):
                value = list(value)
            elif isinstance(value, Mapping):
                value = dict(value)
            entry[f.name] = value
        out[section_name] = entry
    return out


def from_json_dict(data: Mapping[str, Any]) -> ServeConfig:
    """Rebuild a :class:`ServeConfig` from :func:`to_json_dict` output.

    Unknown sections or fields raise ``ValueError`` naming the offender —
    a typo in a ``--config`` file must not be silently ignored.
    """
    sections = dict(SECTION_ORDER)
    config = ServeConfig()
    for section_name, entry in data.items():
        if section_name not in sections:
            raise ValueError(
                f"unknown config section {section_name!r}; expected one of "
                f"{sorted(sections)}")
        if not isinstance(entry, Mapping):
            raise ValueError(f"config section {section_name!r} must be an "
                             f"object, got {type(entry).__name__}")
        section_cls = sections[section_name]
        known = {f.name: f for f in fields(section_cls)}
        section = getattr(config, section_name)
        for field_name, value in entry.items():
            if field_name not in known:
                raise ValueError(
                    f"unknown field {section_name}.{field_name}; expected "
                    f"one of {sorted(known)}")
            current = getattr(section, field_name)
            if isinstance(current, tuple) and isinstance(value, list):
                value = tuple(value)
            setattr(section, field_name, value)
    return config


def load_config_file(path: Any) -> ServeConfig:
    """Parse a ``--config serve.json`` file."""
    text = Path(path).read_text()
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ValueError(f"config file {path} is not valid JSON: {exc}") \
            from None
    if not isinstance(data, dict):
        raise ValueError(f"config file {path} must hold a JSON object of "
                         f"sections")
    return from_json_dict(data)


# --------------------------------------------------------------------------- #
# Generated reference table (README)
# --------------------------------------------------------------------------- #
def config_reference_table() -> str:
    """The markdown config reference: section → field → flag → default."""
    lines = ["| Section | Field | Flag | Default | What it does |",
             "|---|---|---|---|---|"]
    for section_name, spec in iter_serve_fields():
        flag = f"`{spec.flag}`" if spec.flag else "*(config file only)*"
        default = "" if spec.default == () else repr(spec.default)
        summary = spec.help.split(";")[0].split(" — ")[0].strip()
        lines.append(f"| {section_name} | `{spec.name}` | {flag} "
                     f"| `{default}` | {summary} |")
    return "\n".join(lines) + "\n"


# --------------------------------------------------------------------------- #
# Legacy constructor shim
# --------------------------------------------------------------------------- #
#: Deprecated flat kwarg -> (section, field).  ``mmap_mode`` and
#: ``qos_config`` are special-cased below.  Legacy programmatic defaults that
#: differ from the config-tree defaults (the CLI defaults) are recorded so a
#: legacy call site keeps its historical behaviour exactly.
_LEGACY_KWARGS: Dict[str, Tuple[str, str]] = {
    "host": ("net", "host"),
    "port": ("net", "port"),
    "http_backend": ("net", "http_backend"),
    "max_connections": ("net", "max_connections"),
    "idle_timeout_s": ("net", "idle_timeout_s"),
    "request_read_timeout_s": ("net", "request_read_timeout_s"),
    "io_threads": ("net", "io_threads"),
    "max_batch_size": ("engine", "max_batch_size"),
    "max_wait_ms": ("engine", "max_wait_ms"),
    "max_queue_depth": ("engine", "max_queue_depth"),
    "request_timeout_s": ("engine", "request_timeout_s"),
    "batch_chunk": ("engine", "batch_chunk"),
    "audit_every": ("engine", "audit_every"),
    "max_total_values": ("engine", "max_total_values"),
    "optimize": ("engine", "optimize"),
    "hardware_hz": ("engine", "hardware_hz"),
    "workers": ("pool", "workers"),
    "policy": ("pool", "policy"),
    "heartbeat_interval_s": ("pool", "heartbeat_interval_s"),
    "heartbeat_timeout_s": ("pool", "heartbeat_timeout_s"),
    "start_timeout_s": ("pool", "start_timeout_s"),
    "proxy_retries": ("pool", "proxy_retries"),
    "proxy_timeout_s": ("pool", "proxy_timeout_s"),
    "start_method": ("pool", "start_method"),
    "monitor_trips_gate": ("pool", "monitor_trips_gate"),
    "cache_mb": ("cache", "cache_mb"),
    "cache_check_every": ("cache", "cache_check_every"),
    "trace_dir": ("trace", "trace_dir"),
    "trace_enabled": ("trace", "enabled"),
    "trace_ring": ("trace", "trace_ring"),
    "invariant_every": ("trace", "invariant_every"),
    "preload": ("lifecycle", "preload"),
    "autoscale_config": ("autoscale", None),       # whole-section override
    "qos_config": ("qos", None),                   # whole-section override
    "mmap_mode": ("engine", "mmap"),               # "r"/None -> bool
}

#: Historical programmatic defaults that differ from the config-tree (CLI)
#: defaults.  The flat constructors shipped with the cache off and
#: ``PoolServer`` defaulted to two workers.
_LEGACY_DEFAULTS: Dict[str, Dict[str, Any]] = {
    "server": {"cache_mb": 0.0},
    "pool": {"cache_mb": 0.0, "workers": 2},
}


def config_from_legacy_kwargs(kind: str, kwargs: Mapping[str, Any],
                              allowed: Optional[Sequence[str]] = None
                              ) -> ServeConfig:
    """Map deprecated flat constructor kwargs onto a :class:`ServeConfig`.

    ``kind`` selects the historical default set (``"server"`` / ``"pool"``).
    Unknown kwargs raise ``TypeError`` exactly like a real signature would.
    """
    config = ServeConfig()
    for name, value in _LEGACY_DEFAULTS.get(kind, {}).items():
        section, field_name = _LEGACY_KWARGS[name]
        setattr(getattr(config, section), field_name, value)
    for name, value in kwargs.items():
        target = _LEGACY_KWARGS.get(name)
        if target is None or (allowed is not None and name not in allowed):
            raise TypeError(f"unexpected keyword argument {name!r}")
        section, field_name = target
        if field_name is None:                       # whole-section override
            if value is not None:
                setattr(config, section, value)
            continue
        if name == "mmap_mode":
            value = value is not None
        setattr(getattr(config, section), field_name, value)
    return config
