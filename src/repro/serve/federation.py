"""Multi-pool federation: a consistent-hash front router over PoolServers.

The single-host stepping stone to multi-node serving: a :class:`FrontRouter`
owns no workers and no engines — it shards *model namespaces* across member
pools (each a :class:`~repro.serve.pool.PoolServer` or a single
:class:`~repro.serve.server.PECANServer`, addressed by base URL) and proxies
the existing wire protocol byte-compatibly over the PR 9 event-loop front
end.  Nothing about the protocol changes for clients: the same
``/predict``/``/metrics``/``/trace``/``/admin/*`` endpoints, the same JSON
shapes, the same trace headers.

Sharding
--------
:class:`HashRing` hashes every member onto ``ring_replicas`` virtual points
with the same process-stable :func:`~repro.serve.cache.stable_route_hash`
the PR 8 cache/affinity planes key on.  A request's namespace is its model's
*base* name (``"m@v2"`` and ``"m"`` land on the same member — clients
address both spellings of one model, and the owning pool's lifecycle plane
is the thing that must see every verb for it).  Admin verbs route exactly
like predict traffic, so a ``deploy``/``promote``/``rollback`` lands on the
pool that serves the model it names.

Failover
--------
A member that refuses connections is marked down and its arc of the ring
flows to the survivors (consistent hashing makes the remap minimal — only
the dead member's namespaces move).  A request that hits a connection-level
failure retries on the next surviving member (``failover_retries`` hops);
timeouts are never retried — the work may still be running.  A background
prober re-admits a member the moment its ``/healthz`` answers again.

Merged observability
--------------------
``/metrics`` returns the front's own counters plus every member's full
payload; ``/trace?id=`` fetches the trace's spans from every member and
returns one :func:`~repro.serve.trace.causal_sort`-merged timeline — member
Lamport clocks are folded into the front's on every proxied response, so the
merged order is causal, not wall-clock guesswork.
"""

from __future__ import annotations

import bisect
import http.client
import json
import socket
import threading
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.serve import adminapi
from repro.serve.cache import consistent_ring_points
from repro.serve.config import ServeConfig
from repro.serve.lifecycle import split_versioned
from repro.serve.metrics import ServerMetrics
from repro.serve.trace import (LAMPORT_HEADER, Tracer, causal_sort,
                               parse_trace_context)

__all__ = ["FrontRouter", "HashRing", "MemberPool"]


class HashRing:
    """Consistent hashing of namespace strings onto member URLs."""

    def __init__(self, members: Sequence[str], replicas: int = 64):
        if not members:
            raise ValueError("a hash ring needs at least one member")
        if len(set(members)) != len(members):
            raise ValueError("duplicate federation members")
        self.members = tuple(members)
        self.replicas = max(1, int(replicas))
        points: List[Tuple[int, str]] = []
        for member in self.members:
            points.extend((point, member)
                          for point in consistent_ring_points(member,
                                                              self.replicas))
        # Ties (two members hashing onto one point) resolve lexically so
        # every process builds the identical ring.
        points.sort()
        self._points = [point for point, _ in points]
        self._owners = [member for _, member in points]

    def lookup(self, namespace: str,
               exclude: Sequence[str] = ()) -> Optional[str]:
        """The member owning ``namespace`` (clockwise walk, skip excluded).

        Returns ``None`` only when every member is excluded.
        """
        from repro.serve.cache import stable_route_hash

        excluded = set(exclude)
        if len(excluded) >= len(self.members):
            return None
        start = bisect.bisect_left(self._points, stable_route_hash(namespace))
        for step in range(len(self._points)):
            owner = self._owners[(start + step) % len(self._points)]
            if owner not in excluded:
                return owner
        return None

    def preference(self, namespace: str) -> List[str]:
        """Every member in failover order for ``namespace`` (deduplicated)."""
        order: List[str] = []
        for member in (self.lookup(namespace, exclude=order)
                       for _ in range(len(self.members))):
            if member is None:
                break
            order.append(member)
        return order


class MemberPool:
    """Front-side view of one member pool."""

    def __init__(self, url: str):
        self.url = url.rstrip("/")
        if "://" in self.url:
            self.url = self.url.split("://", 1)[1]
        if "/" in self.url:
            raise ValueError(f"federation member must be host:port, got {url!r}")
        host, _, port = self.url.rpartition(":")
        if not host or not port.isdigit():
            raise ValueError(f"federation member must be host:port, got {url!r}")
        self.host = host
        self.port = int(port)
        self.up = True
        self.failures = 0
        self.proxied = 0
        self.last_probe_at = 0.0
        self.last_error: Optional[str] = None

    def describe(self) -> Dict[str, object]:
        return {"url": self.url, "up": self.up, "failures": self.failures,
                "proxied": self.proxied, "last_error": self.last_error}


class FrontRouter:
    """Shard the serving namespace across member pools (see module docstring).

    Constructed from a :class:`~repro.serve.config.ServeConfig` only — the
    federation tier is new API and carries no deprecated flat-kwarg shim.
    ``config.federation.members`` lists the member base addresses
    (``host:port``); ``config.net`` configures the front's own listener.
    """

    def __init__(self, config: ServeConfig):
        if not config.federation.members:
            raise ValueError("federation needs at least one member "
                             "(config.federation.members)")
        self.config = config
        self.host = config.net.host
        self.port = config.net.port
        self.http_backend = config.net.http_backend
        self.members: Dict[str, MemberPool] = {}
        for url in config.federation.members:
            member = MemberPool(url)
            self.members[member.url] = member
        self.ring = HashRing(tuple(self.members),
                             replicas=config.federation.ring_replicas)
        self.failover_retries = max(0, int(config.federation.failover_retries))
        self.timeout_s = float(config.federation.front_timeout_s)
        self.probe_interval_s = float(config.federation.probe_interval_s)
        self.metrics = ServerMetrics()
        self.tracer = Tracer("front", ring_size=config.trace.trace_ring,
                             trace_dir=(str(config.trace.trace_dir)
                                        if config.trace.trace_dir else None),
                             enabled=config.trace.enabled)
        self.failovers_total = 0
        self._lock = threading.RLock()
        self._running = False
        self._frontend = None
        self._httpd = None
        self._http_thread: Optional[threading.Thread] = None
        self._probe_stop = threading.Event()
        self._probe_thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> "FrontRouter":
        if self._running:
            return self
        self._running = True
        self._probe_stop.clear()
        self._probe_thread = threading.Thread(
            target=self._probe_loop, name="repro-front-probe", daemon=True)
        self._probe_thread.start()
        if self.http_backend == "eventloop":
            from repro.serve.netfront import EventLoopFrontEnd

            self._frontend = EventLoopFrontEnd(
                self.handle_http, self.host, self.port,
                max_connections=int(self.config.net.max_connections),
                idle_timeout_s=float(self.config.net.idle_timeout_s),
                request_timeout_s=float(self.config.net.request_read_timeout_s),
                io_threads=int(self.config.net.io_threads)).start()
            self.port = self._frontend.port
            return self
        from repro.serve.server import _ServeHTTPServer

        self._httpd = _ServeHTTPServer((self.host, self.port),
                                       _build_front_handler(self))
        self.port = self._httpd.server_address[1]
        self._http_thread = threading.Thread(target=self._httpd.serve_forever,
                                             name="repro-front-http",
                                             daemon=True)
        self._http_thread.start()
        return self

    def stop(self) -> None:
        self._running = False
        self._probe_stop.set()
        if self._probe_thread is not None:
            self._probe_thread.join(5.0)
            self._probe_thread = None
        if self._frontend is not None:
            self._frontend.stop()
            self._frontend = None
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
        if self._http_thread is not None:
            self._http_thread.join(5.0)
            self._http_thread = None
        self.tracer.close()

    def serve_forever(self) -> None:
        """Blocking variant for the CLI."""
        self.start()
        try:
            while self._running:
                time.sleep(0.5)
        except KeyboardInterrupt:
            pass
        finally:
            self.stop()

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def __enter__(self) -> "FrontRouter":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # ------------------------------------------------------------------ #
    # Member health
    # ------------------------------------------------------------------ #
    def _probe_loop(self) -> None:
        while not self._probe_stop.wait(self.probe_interval_s):
            for member in list(self.members.values()):
                self._probe_member(member)

    def _probe_member(self, member: MemberPool) -> None:
        member.last_probe_at = time.monotonic()
        try:
            status, _, _ = self._exchange(member, "GET", "/healthz",
                                          timeout_s=min(self.timeout_s, 2.0))
            member.up = status == 200
            if member.up:
                member.last_error = None
        except (ConnectionError, socket.timeout,
                http.client.HTTPException, OSError) as exc:
            member.up = False
            member.last_error = f"{type(exc).__name__}: {exc}"

    def _down_members(self) -> List[str]:
        return [url for url, member in self.members.items() if not member.up]

    # ------------------------------------------------------------------ #
    # Proxying
    # ------------------------------------------------------------------ #
    def _exchange(self, member: MemberPool, method: str, path: str,
                  body: Optional[bytes] = None,
                  headers: Optional[Dict[str, str]] = None,
                  timeout_s: Optional[float] = None,
                  ) -> Tuple[int, bytes, Dict[str, str]]:
        """One HTTP exchange with a member; folds its Lamport clock in."""
        connection = http.client.HTTPConnection(
            member.host, member.port,
            timeout=self.timeout_s if timeout_s is None else timeout_s)
        try:
            send_headers = dict(headers or {})
            if body is not None:
                send_headers.setdefault("Content-Type", "application/json")
            send_headers[LAMPORT_HEADER] = str(self.tracer.clock.tick())
            connection.request(method, path, body=body, headers=send_headers)
            response = connection.getresponse()
            remote = response.getheader(LAMPORT_HEADER)
            if remote is not None:
                try:
                    self.tracer.observe_remote(int(remote))
                except (TypeError, ValueError):
                    pass
            reply_headers = {key: value for key, value in
                             response.getheaders()
                             if key.lower() in ("x-trace-id", "retry-after",
                                                "x-lamport")}
            return response.status, response.read(), reply_headers
        finally:
            connection.close()

    @staticmethod
    def _forwarded_headers(headers) -> Dict[str, str]:
        """The request headers worth forwarding through the front."""
        if headers is None:
            return {}
        forwarded = {}
        for name in ("X-Trace-Id", "X-Attempt", "X-Parent-Span", "X-Lamport",
                     "X-No-Cache", "X-Priority", "X-Tenant", "X-Deadline-Ms",
                     "Content-Type"):
            value = headers.get(name)
            if value:
                forwarded[name] = value
        return forwarded

    def _namespace(self, model: str) -> str:
        base, _ = split_versioned(model) if model else ("", None)
        return base or "@default"

    def route_for(self, model: str) -> List[MemberPool]:
        """Failover-ordered live members for ``model`` (down ones last)."""
        namespace = self._namespace(model)
        down = set(self._down_members())
        order = self.ring.preference(namespace)
        live = [self.members[url] for url in order if url not in down]
        dead = [self.members[url] for url in order if url in down]
        # Down members stay as last resorts: the prober may be stale, and a
        # connection refusal is cheap compared with failing the request.
        return live + dead

    def _proxy(self, method: str, path: str, model: str, body: Optional[bytes],
               headers) -> Tuple[int, bytes, Dict[str, str]]:
        """Route one request by namespace with connection-failure failover."""
        candidates = self.route_for(model)
        attempts = min(len(candidates), 1 + self.failover_retries)
        last_error = "no federation members"
        forwarded = self._forwarded_headers(headers)
        for hop, member in enumerate(candidates[:attempts]):
            span = self.tracer.start_span(
                "front.proxy", parse_trace_context(None, headers).trace_id or None,
                attrs={"member": member.url, "hop": hop, "model": model or None})
            try:
                status, payload, reply_headers = self._exchange(
                    member, method, path, body=body, headers=forwarded)
            except socket.timeout:
                member.failures += 1
                self.tracer.finish_span(span, status="timeout")
                self.metrics.record_timeout()
                # The member may still be computing: never re-dispatch.
                return (504, _json_bytes(
                    {"error": f"member {member.url} timed out; not retried",
                     "member": member.url}), {})
            except (ConnectionError, http.client.HTTPException, OSError) as exc:
                member.failures += 1
                member.up = False
                member.last_error = last_error = f"{type(exc).__name__}: {exc}"
                with self._lock:
                    self.failovers_total += 1
                self.tracer.finish_span(span, status="failover",
                                        error=last_error)
                continue
            member.up = True
            member.proxied += 1
            self.tracer.finish_span(
                span, status="ok" if status < 400 else "error",
                http_status=status)
            return status, payload, reply_headers
        self.metrics.record_error()
        return (503, _json_bytes(
            {"error": f"no live member for model {model!r}: {last_error}",
             "tried": [member.url for member in candidates[:attempts]]}), {})

    # ------------------------------------------------------------------ #
    # HTTP surface (same shape as PECANServer/PoolServer.handle_http)
    # ------------------------------------------------------------------ #
    def handle_http(self, method: str, path: str, headers,
                    body: bytes) -> Tuple[int, bytes, Dict[str, str]]:
        from repro.serve.server import _json_response, _trace_query

        if method == "GET":
            trace_id = _trace_query(path)
            if path == "/healthz":
                return _json_response(200, self.health_snapshot())
            if path == "/metrics":
                return _json_response(200, self.metrics_snapshot())
            if path == "/models":
                return _json_response(200, self.models_snapshot())
            if path == "/admin/status":
                return _json_response(200, self.status_snapshot())
            if trace_id is not None:
                return _json_response(200, self.trace_snapshot(trace_id or None))
            return _json_response(404, {"error": f"unknown path {path}"})
        if method != "POST":
            return _json_response(501, {"error": f"unsupported method {method}"})
        if path.startswith("/admin/"):
            return self._admin_http(path, body, headers)
        if path != "/predict":
            return _json_response(404, {"error": f"unknown path {path}"})
        return self._predict_http(headers, body)

    def _predict_http(self, headers,
                      body: bytes) -> Tuple[int, bytes, Dict[str, str]]:
        started = time.monotonic()
        self.metrics.record_submitted(0)
        try:
            payload = json.loads(body or b"{}")
            model = str(payload.get("model") or "") \
                if isinstance(payload, dict) else ""
        except ValueError:
            model = ""                 # member answers the 400 byte-compatibly
        status, response, reply_headers = self._proxy(
            "POST", "/predict", model, body, headers)
        if status < 400:
            self.metrics.record_completed(time.monotonic() - started, 0.0)
        return status, response, reply_headers

    def _admin_http(self, path: str, body: bytes,
                    headers) -> Tuple[int, bytes, Dict[str, str]]:
        """Admin verbs route by the model they name — except ``scale``,
        which has no model and broadcasts to every member."""
        try:
            request = adminapi.parse_admin_request(path, body)
        except adminapi.AdminError as exc:
            return adminapi.error_response(exc)
        if isinstance(request, adminapi.ScaleRequest):
            results = {}
            for url, member in self.members.items():
                try:
                    status, payload, _ = self._exchange(
                        member, "POST", path, body=body)
                    results[url] = json.loads(payload.decode("utf-8"))
                    results[url]["status"] = status
                except (ConnectionError, socket.timeout, ValueError,
                        http.client.HTTPException, OSError) as exc:
                    results[url] = {"error": f"{type(exc).__name__}: {exc}"}
            return adminapi.json_response(200, {"members": results})
        return self._proxy("POST", path, request.name, body, headers)

    # ------------------------------------------------------------------ #
    # Merged observability
    # ------------------------------------------------------------------ #
    def _fetch_members(self, path: str) -> Dict[str, Dict[str, object]]:
        """GET ``path`` from every member concurrently."""
        payloads: Dict[str, Dict[str, object]] = {}
        results_lock = threading.Lock()

        def fetch(member: MemberPool) -> None:
            try:
                status, body, _ = self._exchange(member, "GET", path,
                                                 timeout_s=5.0)
                payload = (json.loads(body.decode("utf-8")) if status == 200
                           else {"error": f"HTTP {status}"})
            except (ConnectionError, socket.timeout, ValueError,
                    http.client.HTTPException, OSError) as exc:
                payload = {"error": f"{type(exc).__name__}: {exc}"}
            with results_lock:
                payloads[member.url] = payload

        threads = [threading.Thread(target=fetch, args=(member,), daemon=True)
                   for member in self.members.values()]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(10.0)
        return payloads

    def describe_federation(self) -> Dict[str, object]:
        with self._lock:
            failovers = self.failovers_total
        return {
            "members": {url: member.describe()
                        for url, member in self.members.items()},
            "ring_replicas": self.ring.replicas,
            "failovers": failovers,
        }

    def health_snapshot(self) -> Dict[str, object]:
        members = {url: member.up for url, member in self.members.items()}
        return {"status": "ok" if any(members.values()) else "degraded",
                "members": members}

    def metrics_snapshot(self) -> Dict[str, object]:
        self.tracer.flush()
        return {
            "front": self.metrics.snapshot(),
            "federation": self.describe_federation(),
            "trace": self.tracer.snapshot(),
            "members": self._fetch_members("/metrics"),
        }

    def models_snapshot(self) -> Dict[str, object]:
        per_member = self._fetch_members("/models")
        merged: Dict[str, object] = {"federation": self.describe_federation(),
                                     "members": per_member}
        models: Dict[str, object] = {}
        for payload in per_member.values():
            listed = payload.get("models")
            if isinstance(listed, dict):
                models.update(listed)
            elif isinstance(listed, list):
                # Both server types list models as dicts keyed by "name".
                for entry in listed:
                    if isinstance(entry, dict) and "name" in entry:
                        models[str(entry["name"])] = entry
        merged["models"] = models
        return merged

    def status_snapshot(self) -> Dict[str, object]:
        return {"federation": self.describe_federation(),
                "members": self._fetch_members("/admin/status")}

    def trace_snapshot(self, trace_id: Optional[str] = None,
                       limit: int = 20) -> Dict[str, object]:
        """Lamport-merged cross-pool timeline for one trace id."""
        if not trace_id:
            return {"recent": self.tracer.recent_traces(limit),
                    "trace": self.tracer.snapshot()}
        spans = list(self.tracer.find(trace_id))
        for payload in self._fetch_members(f"/trace?id={trace_id}").values():
            member_spans = payload.get("spans")
            if isinstance(member_spans, list):
                spans.extend(member_spans)
        return {"trace_id": trace_id, "spans": causal_sort(spans)}


def _json_bytes(payload: Dict[str, object]) -> bytes:
    return json.dumps(payload).encode("utf-8")


def _build_front_handler(front: FrontRouter):
    """Threaded-backend shim (mirrors the pool's)."""
    from repro.serve.server import JSONHandlerBase

    class Handler(JSONHandlerBase):
        def do_GET(self) -> None:                # noqa: N802 - stdlib signature
            status, body, headers = front.handle_http(
                "GET", self.path, self.headers, b"")
            self._reply_bytes(status, body, headers=headers)

        def do_POST(self) -> None:               # noqa: N802 - stdlib signature
            body = self._read_body()
            if body is None:
                return
            status, out, headers = front.handle_http(
                "POST", self.path, self.headers, body)
            self._reply_bytes(status, out, headers=headers)

    return Handler
