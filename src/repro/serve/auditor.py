"""Online parity auditing: runtime verification of the fused serving path.

RvLLM-style online checking (PAPERS.md) applied to this system: in production
the server answers from the fused kernels (compiled C / batched BLAS), while
the per-group reference loop — the implementation the paper's Algorithm 1
literally describes — is retained inside every
:class:`~repro.cam.runtime.LUTLayerRuntime`.  The :class:`ParityAuditor`
re-runs a sample of live traffic (every ``1/every`` batches) through a
dedicated reference engine on a background thread and counts mismatches, so a
kernel regression, a miscompiled ``-march=native`` build or a corrupted LUT
shows up in ``/metrics`` as ``parity_audit.mismatches > 0`` instead of as
silently wrong predictions.

Auditing is strictly best-effort: the audit queue is bounded and sampled work
is *dropped* (and counted) when the auditor falls behind — it must never add
latency to the serving path.
"""

from __future__ import annotations

import queue
import threading
import time
from typing import Dict, Optional

import numpy as np

from repro.serve.engine import BundleEngine
from repro.serve.metrics import ServerMetrics


class ParityAuditor:
    """Sampled fused-vs-reference output checking for one served bundle.

    Parameters
    ----------
    reference_engine:
        An engine for the *same* bundle with ``use_fused=False`` (its own
        instance — runtimes are not thread-safe across the serving engine
        and the auditor).
    every:
        Sample rate: audit one of every ``every`` dispatched batches
        (1 audits everything; 0 or ``None`` disables).
    max_pending:
        Bound on queued audit jobs; overflow increments the dropped counter.
    exact:
        Require bitwise equality (PECAN-D lookup path) instead of
        ``np.allclose`` (PECAN-A's fused GEMMs reassociate BLAS sums).
        Defaults to the bundle's multiplier-free flag.
    """

    def __init__(self, reference_engine: BundleEngine, every: int = 64,
                 max_pending: int = 8, exact: Optional[bool] = None,
                 metrics: Optional[ServerMetrics] = None,
                 atol: float = 1e-8,
                 monitor=None, model: Optional[str] = None):
        if reference_engine.use_fused:
            reference_engine.use_fused = False
        self.reference_engine = reference_engine
        self.every = int(every) if every else 0
        self.exact = (reference_engine.bundle.is_multiplier_free()
                      if exact is None else bool(exact))
        self.atol = atol
        self.metrics = metrics if metrics is not None else ServerMetrics()
        #: Optional :class:`~repro.serve.invariants.InvariantMonitor`; parity
        #: mismatches are reported to it so the fused-vs-reference alarm also
        #: lands in the ``runtime_verification`` tree and the lifecycle gate.
        self.monitor = monitor
        self.model = model
        self._pending: "queue.Queue[Tuple[np.ndarray, np.ndarray]]" = \
            queue.Queue(maxsize=max_pending)
        self._inflight = 0
        self._seen = 0
        self._lock = threading.Lock()
        self._running = False
        self._thread: Optional[threading.Thread] = None
        self.last_mismatch: Optional[Dict[str, float]] = None

    # ------------------------------------------------------------------ #
    @property
    def enabled(self) -> bool:
        return self.every > 0

    def start(self) -> "ParityAuditor":
        if self.enabled and (self._thread is None or not self._thread.is_alive()):
            self._running = True
            self._thread = threading.Thread(target=self._worker,
                                            name="repro-serve-auditor", daemon=True)
            self._thread.start()
        return self

    def stop(self, timeout: float = 5.0) -> None:
        self._running = False
        if self._thread is not None:
            self._thread.join(timeout)
            self._thread = None

    def observe(self, inputs: np.ndarray, outputs: np.ndarray) -> None:
        """Batch hook: sample every Nth batch into the audit queue."""
        if not self.enabled:
            return
        with self._lock:
            self._seen += 1
            take = self._seen % self.every == 1 or self.every == 1
        if not take:
            return
        try:
            # Copy: the scheduler may hand us views into buffers it reuses.
            self._pending.put_nowait((np.array(inputs, copy=True),
                                      np.array(outputs, copy=True)))
        except queue.Full:
            self.metrics.record_audit_dropped()

    def drain(self, timeout: float = 5.0) -> None:
        """Block until every queued *and in-flight* audit ran."""
        deadline = time.monotonic() + timeout
        while ((not self._pending.empty() or self._inflight)
               and time.monotonic() < deadline):
            time.sleep(0.005)

    # ------------------------------------------------------------------ #
    def _check(self, inputs: np.ndarray, outputs: np.ndarray) -> None:
        expected = self.reference_engine.predict(inputs)
        if self.exact:
            mismatch = not np.array_equal(expected, outputs)
        else:
            mismatch = not np.allclose(expected, outputs, atol=self.atol)
        self.metrics.record_audit(mismatch)
        if mismatch:
            delta = np.abs(np.asarray(expected) - np.asarray(outputs))
            self.last_mismatch = {
                "max_abs_error": float(delta.max()),
                "num_samples": int(inputs.shape[0]),
            }
            if self.monitor is not None:
                self.monitor.record_violation(
                    "parity_audit",
                    "sampled parity audit: fused output disagrees with "
                    "reference engine",
                    model=self.model,
                    max_abs_error=self.last_mismatch["max_abs_error"],
                    source="parity_audit")

    def _worker(self) -> None:
        while self._running:
            try:
                with self._lock:
                    # Claimed-but-unfinished work must keep drain() blocked,
                    # so the in-flight mark is taken atomically with the pop.
                    inputs, outputs = self._pending.get_nowait()
                    self._inflight += 1
            except queue.Empty:
                time.sleep(0.005)
                continue
            try:
                self._check(inputs, outputs)
            except Exception:                 # noqa: BLE001 - audit is best-effort
                # An auditor failure is not a parity mismatch: count it
                # separately so mismatches stay a pure kernel-regression alarm.
                self.metrics.record_audit_error()
            finally:
                with self._lock:
                    self._inflight -= 1
