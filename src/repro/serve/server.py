"""Stdlib HTTP front end for bundle-backed CAM inference.

Zero new dependencies: a small JSON protocol in front of the registry +
scheduler + auditor stack.  The network plane is pluggable
(``http_backend``): the default ``"eventloop"`` multiplexes every
connection through one :mod:`selectors` thread
(:class:`~repro.serve.netfront.EventLoopFrontEnd` — keep-alive,
pipelining, a bounded connection budget, idle/slowloris timeouts), while
``"threaded"`` keeps the original ``http.server.ThreadingHTTPServer``
(one thread per connection) as the baseline the connection bench compares
against.  Both backends dispatch through the same
:meth:`PECANServer.handle_http`, so their responses are byte-identical.

Endpoints
---------
``POST /predict``
    Body ``{"inputs": [...], "model": "name"?}``.  ``inputs`` is one sample
    (shape ``input_shape``) or a batch (leading batch axis).  Requests are
    dynamically micro-batched with concurrent callers; the response carries
    the logits, argmax classes and observed latency.
``GET /models``
    Registry listing (resident engines, footprints, kernels, evictions).
``GET /metrics``
    Scheduler/latency/batching counters, per-layer CAM search + energy
    statistics from the engines, and parity-audit results.
``GET /healthz``
    Liveness probe.

Errors map to conventional codes: 400 malformed input, 404 unknown model,
408 request timed out, 429 queue full (backpressure), 500 engine failure.
"""

from __future__ import annotations

import json
import threading
import time
import warnings
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Dict, Optional, Tuple

import numpy as np

from repro.serve import adminapi
from repro.serve.auditor import ParityAuditor
from repro.serve.cache import (NO_CACHE_HEADER, CachePlane, ResultCache,
                               canonical_input_hash, canonical_response_bytes)
from repro.serve.config import ServeConfig, config_from_legacy_kwargs
from repro.serve.engine import BundleEngine
from repro.serve.invariants import InvariantMonitor
from repro.serve.lifecycle import (LifecycleError, format_versioned,
                                   split_versioned)
from repro.serve.metrics import ServerMetrics
from repro.serve.netfront import EventLoopFrontEnd
from repro.serve.qos import QoSConfig, RequestQoS, ShedError, parse_qos
from repro.serve.registry import EngineLease, ModelRegistry, PathLike
from repro.serve.scheduler import (DynamicBatcher, QueueFullError, RequestTimeout,
                                   SchedulerStopped)
from repro.serve.trace import (LAMPORT_HEADER, TRACE_HEADER, TraceContext,
                               Tracer, parse_trace_context)


class _ServeHTTPServer(ThreadingHTTPServer):
    """HTTP server tuned for rapid start/stop cycles (tests, CI, pools).

    ``allow_reuse_address`` lets a restarted server rebind a port still in
    ``TIME_WAIT`` from its predecessor instead of flaking on ``EADDRINUSE``;
    ``daemon_threads`` keeps a hung keep-alive connection from blocking
    interpreter exit.
    """

    allow_reuse_address = True
    daemon_threads = True


class _AcceleratorPacer:
    """Pace batch inference to an emulated CAM accelerator's wall clock.

    Wraps an engine's ``predict``: after computing a batch, sleeps off the
    difference between the host's elapsed time and the latency a CAM
    accelerator clocked at ``hz`` would have needed for the batch's traced
    operations.  Cycle costs extend the paper's Section 4.3 constants (VIA
    Nano 2000: 4 cycles per multiplication, 2 per addition — mirrored from
    :data:`repro.hardware.cost_model.VIA_NANO`, not imported, because that
    module sits on the training import graph) with one cycle per CAM
    comparison and per LUT lookup.

    While the pacer sleeps, the GIL and the CPU are free — exactly the
    behaviour of a host thread blocked on real accelerator hardware — which
    is what makes data-parallel worker pools scale on hosts with fewer cores
    than workers (see ``benchmarks/test_bench_pool_serving.py``).
    """

    MULTIPLY_CYCLES = 4.0
    ADD_CYCLES = 2.0
    COMPARE_CYCLES = 1.0
    LOOKUP_CYCLES = 1.0

    def __init__(self, engine: BundleEngine, hz: float,
                 batch_chunk: Optional[int] = None):
        if hz <= 0:
            raise ValueError("accelerator clock must be positive")
        self.engine = engine
        self.hz = float(hz)
        self.batch_chunk = batch_chunk
        self.slept_s = 0.0

    def _cycles(self) -> float:
        ops = self.engine.op_counter.summary()
        return (self.MULTIPLY_CYCLES * ops["multiplications"]
                + self.ADD_CYCLES * ops["additions"]
                + self.COMPARE_CYCLES * ops["comparisons"]
                + self.LOOKUP_CYCLES * ops["lookups"])

    def __call__(self, inputs: np.ndarray) -> np.ndarray:
        started = time.monotonic()
        before = self._cycles()
        outputs = self.engine.predict(inputs, batch_chunk=self.batch_chunk)
        modeled = (self._cycles() - before) / self.hz
        remaining = modeled - (time.monotonic() - started)
        if remaining > 0:
            self.slept_s += remaining
            time.sleep(remaining)
        return outputs


@dataclass
class ServedModel:
    """One resident model version wired into the serving plane.

    ``lease`` pins the engine in the registry for as long as the record
    serves; retirement (eviction, promote, undeploy) drains the batcher and
    releases the lease, which is what finally lets the registry drop the
    engine — never mid-request.
    """

    name: str                    # registry record id (e.g. "resnet" / "resnet@v2")
    engine: BundleEngine
    batcher: DynamicBatcher
    auditor: Optional[ParityAuditor] = None
    pacer: Optional[_AcceleratorPacer] = None
    lease: Optional[EngineLease] = None


class PECANServer:
    """Serve deployment bundles over HTTP with dynamic micro-batching.

    Parameters
    ----------
    registry:
        Optional pre-populated :class:`ModelRegistry`; by default an empty
        one is created and bundles are added via :meth:`add_bundle`.
    host / port:
        Bind address; ``port=0`` picks a free port (see :attr:`port` after
        :meth:`start`).
    max_batch_size / max_wait_ms / max_queue_depth / request_timeout_s:
        Dynamic-batching and admission-control knobs, applied per model.
    batch_chunk:
        Forwarded to ``engine.predict(batch_chunk=)`` so a coalesced batch
        streams through the engine with bounded peak memory.
    audit_every:
        Parity-audit sample rate (0 disables): one of every N dispatched
        batches is re-run through the per-group reference engine.
    hardware_hz:
        Emulate a CAM accelerator clocked at this frequency: every dispatched
        batch is paced (via :class:`_AcceleratorPacer`) to the latency the
        paper's cost model predicts for its traced operations, with the CPU
        released during the wait.  ``None`` (default) serves at host speed.
    trace_dir / trace_ring / trace_enabled / trace_service:
        Distributed tracing: every request carries a trace id (generated
        here when the caller sent none) and records per-hop spans into a
        bounded ring buffer, exported as otel-style JSONL under
        ``trace_dir`` when set.  See :mod:`repro.serve.trace`.
    invariant_every:
        Runtime-verification sample rate: one of every N responses is
        checked against the online invariants (finite logits, stable
        shape/dtype, retry-stable argmax); 0 disables.  Violations appear
        in ``/metrics`` under ``runtime_verification``.
    cache_mb:
        Deterministic response cache budget in MiB (0 — the default —
        disables caching and coalescing).  PECAN-D inference is bitwise
        deterministic per ``(model@version, canonical input)``, so repeat
        requests are answered from memory with exactly the bytes a fresh
        engine call would produce; namespaces are retired on
        promote/rollback/undeploy.  See :mod:`repro.serve.cache`.
    http_backend:
        ``"eventloop"`` (default) serves through the selectors-based
        :class:`~repro.serve.netfront.EventLoopFrontEnd`; ``"threaded"``
        keeps the original one-thread-per-connection
        ``ThreadingHTTPServer``.  Responses are byte-identical either way.
    max_connections / idle_timeout_s / request_read_timeout_s / io_threads:
        Event-loop knobs (ignored by the threaded backend): the concurrent
        connection budget (overflow → 503 + ``Retry-After``, reason
        ``connection-budget``), the keep-alive idle reaping horizon, the
        slowloris guard (a half-received request older than this gets 408)
        and the application-thread pool size.

    ``PECANServer(config=ServeConfig(...))`` is the one non-deprecated
    construction path; every flat keyword above still works for one release
    behind a ``DeprecationWarning`` (legacy calls keep their historical
    defaults, e.g. the response cache stays off unless ``cache_mb`` is
    passed).  ``registry`` and ``trace_service`` are identity, not
    configuration, and stay real parameters on both paths.
    """

    #: Flat kwargs the deprecated constructor accepts (the pre-config
    #: signature, verbatim).
    _LEGACY_KWARGS = (
        "host", "port", "max_batch_size", "max_wait_ms", "max_queue_depth",
        "request_timeout_s", "batch_chunk", "audit_every", "hardware_hz",
        "qos_config", "trace_dir", "trace_ring", "trace_enabled",
        "invariant_every", "cache_mb", "http_backend", "max_connections",
        "idle_timeout_s", "request_read_timeout_s", "io_threads")

    _CONFIG_KIND = "server"

    def __init__(self, registry: Optional[ModelRegistry] = None,
                 host: Optional[str] = None, port: Optional[int] = None, *,
                 config: Optional[ServeConfig] = None,
                 trace_service: str = "server",
                 **legacy):
        if host is not None:
            legacy["host"] = host
        if port is not None:
            legacy["port"] = port
        if config is not None and legacy:
            raise TypeError(
                f"{type(self).__name__} takes either config=ServeConfig(...) "
                f"or flat keyword arguments, not both "
                f"(got {sorted(legacy)})")
        if config is None:
            if legacy:
                warnings.warn(
                    f"{type(self).__name__}(**kwargs) is deprecated; pass "
                    f"config=ServeConfig(...) (see repro.serve.config)",
                    DeprecationWarning, stacklevel=2)
            config = config_from_legacy_kwargs(
                self._CONFIG_KIND, legacy, allowed=self._LEGACY_KWARGS)
        if config.net.http_backend not in ("eventloop", "threaded"):
            raise ValueError(
                f"unknown http_backend {config.net.http_backend!r} "
                "(expected 'eventloop' or 'threaded')")
        self.config = config
        self.registry = registry if registry is not None else ModelRegistry()
        self.host = config.net.host
        self.port = config.net.port
        self.http_backend = config.net.http_backend
        self.max_connections = int(config.net.max_connections)
        self.idle_timeout_s = float(config.net.idle_timeout_s)
        self.request_read_timeout_s = float(config.net.request_read_timeout_s)
        self.io_threads = int(config.net.io_threads)
        self.max_batch_size = config.engine.max_batch_size
        self.max_wait_ms = config.engine.max_wait_ms
        self.max_queue_depth = config.engine.max_queue_depth
        self.request_timeout_s = config.engine.request_timeout_s
        self.batch_chunk = config.engine.batch_chunk
        self.audit_every = config.engine.audit_every
        self.hardware_hz = config.engine.hardware_hz
        self.qos_config = config.qos
        self.metrics = ServerMetrics()
        #: Per-process injected inference latency (seconds); the pool's
        #: ``slow`` fault sets this so overload paths are chaos-testable
        #: without real saturation.
        self.injected_latency_s = 0.0
        #: The `corrupt` chaos fault: when set, every prediction's first
        #: logit is overwritten with NaN *after* the engine ran — exercising
        #: the runtime-verification plane (finite-logits invariant, canary
        #: parity) without touching the engine.
        self.corrupt_logits = False
        #: Tracing + runtime verification.
        self.tracer = Tracer(trace_service, ring_size=config.trace.trace_ring,
                             trace_dir=config.trace.trace_dir,
                             enabled=config.trace.enabled)
        self.monitor = InvariantMonitor(config.trace.invariant_every,
                                        tracer=self.tracer)
        #: Deterministic response cache + in-flight coalescing (see class
        #: docstring); ``None`` when disabled.
        cache_mb = config.cache.effective_mb
        self.cache: Optional[ResultCache] = (
            ResultCache(int(cache_mb * 1024 * 1024)) if cache_mb > 0 else None)
        #: Overload brownout: queue depth across all batchers + recent p99.
        self.brownout = self.qos_config.make_brownout(self._overload_signal)
        self._served: Dict[str, ServedModel] = {}
        self._lock = threading.RLock()
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._http_thread: Optional[threading.Thread] = None
        self._frontend: Optional[EventLoopFrontEnd] = None

    def _overload_signal(self):
        """(queue depth, recent p99 ms) — the brownout controller's inputs."""
        with self._lock:
            records = list(self._served.values())
        depth = sum(record.batcher.queue_depth for record in records)
        return depth, self.metrics.recent_p99_ms()

    # ------------------------------------------------------------------ #
    # Model management
    # ------------------------------------------------------------------ #
    def add_bundle(self, path: PathLike, name: Optional[str] = None,
                   preload: bool = False) -> str:
        """Register a bundle file under ``name`` (default: the file stem)."""
        path = Path(path)
        name = name or path.stem
        self.registry.register(name, path, preload=False)
        if preload:
            self._get_served(name)
        return name

    @staticmethod
    def _retire(record: ServedModel) -> None:
        """Drain and unwire one served record (call with no locks held)."""
        record.batcher.stop(drain=True)
        if record.auditor is not None:
            record.auditor.stop()
        if record.lease is not None:
            record.lease.release()

    def _retire_served(self, record_id: str) -> None:
        with self._lock:
            record = self._served.pop(record_id, None)
        if record is not None:
            self._retire(record)

    def _get_served(self, name: str) -> ServedModel:
        """The wired-up (engine + batcher + auditor) record, building lazily.

        The engine checkout (which may *load* a bundle) happens before the
        server lock is taken, so a slow deploy never stalls other models'
        predictions.  The returned record holds an :class:`EngineLease`;
        registry evictions are honoured here: a ``ServedModel`` whose record
        the registry marked for eviction is retired (its batcher drained, its
        auditor — which holds a second engine — stopped, its lease released)
        so eviction actually releases the memory.  Retirement happens
        *outside* the server lock: draining a busy batcher can take seconds
        and must not stall other models' predictions or ``/metrics``.
        """
        lease = self.registry.acquire(name)       # may load; no server lock held
        retired = []
        adopted = False
        try:
            with self._lock:
                record_id = lease.name            # alias-resolved registry id
                served = self._served.get(record_id)
                if served is not None and served.engine is not lease.engine:
                    retired.append(self._served.pop(record_id))  # evicted + reloaded
                    served = None
                # Drop wired-up records for versions the registry evicted or
                # marked for deferred drop, or their engines (and the
                # auditors' reference engines) stay resident and the
                # --max_total_values budget is fiction.
                loaded = set(self.registry.loaded_names())
                for other in list(self._served):
                    if other != record_id and other not in loaded:
                        retired.append(self._served.pop(other))
                if served is not None:
                    return served
                engine = lease.engine
                auditor = None
                on_batch = None
                if self.audit_every:
                    # Mirror the served engine's configuration (including any
                    # optimization passes) so the auditor compares fused vs.
                    # reference kernels on the *same* program.
                    reference = engine.reference_engine()
                    auditor = ParityAuditor(reference, every=self.audit_every,
                                            metrics=self.metrics,
                                            monitor=self.monitor,
                                            model=record_id).start()
                    on_batch = auditor.observe
                engine.tracer = self.tracer
                pacer = None
                if self.hardware_hz:
                    pacer = _AcceleratorPacer(engine, self.hardware_hz,
                                              batch_chunk=self.batch_chunk)
                    base_fn = pacer
                else:
                    base_fn = (lambda x, _engine=engine:
                               _engine.predict(x, batch_chunk=self.batch_chunk))

                def predict_fn(x, _base=base_fn):
                    # The `slow` chaos fault: stretch every dispatch by the
                    # injected latency so queue depth and p99 rise the same
                    # way they would under real saturation.
                    delay = self.injected_latency_s
                    if delay > 0:
                        time.sleep(delay)
                    outputs = _base(x)
                    if self.corrupt_logits:
                        # The `corrupt` chaos fault: poison the response after
                        # the engine ran, so the runtime-verification plane —
                        # not the engine — is what must catch it.
                        outputs = np.array(outputs, copy=True)
                        outputs[..., 0] = np.nan
                    return outputs

                batcher = DynamicBatcher(
                    predict_fn,
                    max_batch_size=self.max_batch_size, max_wait_ms=self.max_wait_ms,
                    max_queue_depth=self.max_queue_depth,
                    request_timeout_s=self.request_timeout_s,
                    metrics=self.metrics, on_batch=on_batch,
                    batch_class_samples=self.qos_config.batch_class_samples,
                    tracer=self.tracer).start()
                served = ServedModel(name=record_id, engine=engine, batcher=batcher,
                                     auditor=auditor, pacer=pacer, lease=lease)
                self._served[record_id] = served
                adopted = True
                return served
        finally:
            if not adopted:
                lease.release()           # existing record already holds one
            for record in retired:
                self._retire(record)

    # ------------------------------------------------------------------ #
    # Model lifecycle (hot reload)
    # ------------------------------------------------------------------ #
    def deploy_bundle(self, path: PathLike, name: str,
                      version: Optional[int] = None,
                      preload: bool = True) -> str:
        """Register (and warm) a **new version** of base ``name`` while the
        server keeps answering from the active version.  Returns the new
        versioned record id (``name@vN``); traffic only reaches it by that
        explicit name until :meth:`promote`."""
        record = self.registry.deploy(name, path, version=version)
        if preload:
            try:
                self._get_served(record.name)
            except Exception:
                self.registry.undeploy(record.name)
                raise
        return record.name

    def promote(self, name: str, version: Optional[int] = None) -> Dict[str, object]:
        """Atomically point base ``name`` at ``version`` (default: latest).

        Zero-downtime order: the candidate is warmed first (engine loaded,
        batcher running), then the alias flips — new requests route to the
        new version — and only then is the outgoing version's serving record
        drained and released.  In-flight requests on the old version finish
        on its engine."""
        base, parsed = split_versioned(name)
        if parsed is not None:
            if version is not None and version != parsed:
                raise LifecycleError(f"conflicting versions: name {name!r} "
                                     f"vs version={version}")
            version = parsed
        if version is None:
            version = self.registry.latest_version(base)
            if version is None:
                raise KeyError(f"model {base!r} is not registered")
        versions = self.registry.versions_of(base)
        if version not in versions:
            raise LifecycleError(f"model {base!r} has no version {version} "
                                 f"(known: {sorted(versions)})")
        previous_version = self.registry.active_version(base)
        previous_id = self.registry.resolve_id(base)
        candidate_id = versions[version]
        if candidate_id != previous_id:
            # Warm by canonical versioned name: the record id of a
            # bare-registered v1 is the base name itself, which the resolver
            # would route through the *active* alias — warming the wrong
            # (outgoing) version on a rollback.
            self._get_served(format_versioned(base, version))
            self.registry.set_active(base, version)
            self._retire_served(previous_id)
            if self.cache is not None and previous_version is not None:
                # Retire the outgoing version's response namespace with the
                # flip; the epoch bump also refuses any in-flight fill that
                # captured its epoch before this promote.
                self.cache.invalidate_namespace(
                    format_versioned(base, previous_version))
        return {"model": base, "active_version": version,
                "active": candidate_id, "previous_version": previous_version}

    def rollback(self, name: str) -> Dict[str, object]:
        """Flip base ``name`` back to its previously active version."""
        base, _ = split_versioned(name)
        previous = self.registry.previous_version(base)
        if previous is None:
            raise LifecycleError(f"model {base!r} has no previous active "
                                 f"version to roll back to")
        info = self.promote(base, previous)
        info["rolled_back"] = True
        return info

    def undeploy(self, name: str) -> str:
        """Remove a non-active version and retire its serving record."""
        record_id = self.registry.resolve_id(name)
        self.registry.undeploy(record_id)     # validates (active stays put)
        self._retire_served(record_id)
        if self.cache is not None:
            base, version = split_versioned(record_id)
            # A bare record id is the registration grammar's version 1.
            self.cache.invalidate_namespace(
                record_id if version is not None else format_versioned(base, 1))
        return record_id

    def lifecycle_snapshot(self) -> Dict[str, object]:
        """The single-process ``/admin/status`` payload."""
        with self._lock:
            serving = sorted(self._served)
        registry = self.registry.describe()
        return {
            "registry": registry,
            "active": registry["active"],
            "serving": serving,
        }

    # ------------------------------------------------------------------ #
    # In-process serving API (the HTTP handler is a thin shim over this)
    # ------------------------------------------------------------------ #
    def predict(self, inputs: np.ndarray, model: Optional[str] = None,
                timeout_s: Optional[float] = None,
                qos: Optional[RequestQoS] = None,
                trace: Optional[TraceContext] = None,
                no_cache: bool = False) -> Dict[str, object]:
        """Micro-batched prediction; returns a JSON-ready response dict.

        ``qos`` carries the request's priority class, tenant and absolute
        deadline (default: ``standard`` / ``default`` / none — the pre-QoS
        behaviour).  The brownout controller may refuse admission with
        :class:`~repro.serve.qos.ShedError` before any engine work.

        ``trace`` carries the propagated trace context (id, parent span,
        attempt, remote Lamport clock); when absent a fresh trace id is
        generated here — every request is traced, whoever fronted it.  The
        id rides on the response as ``trace_id`` and every failure path
        finishes the root span with a terminal status.

        ``no_cache=True`` forces an engine execution past the response cache
        and past in-flight coalescing (the HTTP equivalent is the
        ``no_cache`` payload key or the ``X-No-Cache`` header).
        """
        if qos is None:
            qos = RequestQoS()
        ctx = trace if trace is not None else TraceContext()
        trace_id = ctx.ensure_trace_id()
        if ctx.lamport is not None:
            self.tracer.observe_remote(ctx.lamport)
        root = self.tracer.start_span(
            "server.predict", trace_id, parent_id=ctx.parent_span,
            attrs={"model": model, "priority": qos.priority,
                   "tenant": qos.tenant, "attempt": ctx.attempt})
        started = time.monotonic()
        sampled = self.monitor.enabled and (self.monitor.sample()
                                            or ctx.attempt > 0)
        plane: Optional[CachePlane] = None
        if self.cache is not None and not no_cache:
            plane = self._cache_plane_for(model, inputs)
        try:
            response, verdict = self._predict_routed(
                plane, inputs, model, timeout_s, qos, trace_id, root, started)
        except ShedError as exc:
            self.metrics.record_shed(qos.priority, exc.reason)
            self.tracer.finish_span(root, status="shed", reason=exc.reason)
            raise
        except QueueFullError:
            self.metrics.record_shed(qos.priority, "queue-full")
            self.tracer.finish_span(root, status="shed", reason="queue-full")
            raise
        except RequestTimeout as exc:
            self.tracer.finish_span(root, status="timeout", **exc.details)
            raise
        except Exception as exc:
            self.tracer.finish_span(root, status="error",
                                    error=type(exc).__name__)
            raise
        if verdict is None:
            self.tracer.finish_span(root, queue_ms=response["queue_ms"])
        else:
            self.tracer.finish_span(root, queue_ms=response["queue_ms"],
                                    cache=verdict)
        if sampled:
            self.monitor.check_outputs(
                response["model"], np.asarray(response["outputs"]),
                trace_id=trace_id, attempt=ctx.attempt,
                input_key=plane.invariant_key if plane is not None else None)
            self.monitor.check_trace(self.tracer.find(trace_id),
                                     trace_id=trace_id)
        response["trace_id"] = trace_id
        return response

    # -- response cache + in-flight coalescing ------------------------- #
    def _cache_plane_for(self, model: Optional[str],
                         inputs) -> Optional[CachePlane]:
        """Resolve a request to its cache identity, or ``None`` (uncacheable).

        The namespace is always fully versioned: explicit ``m@vN`` requests
        key on that version, bare names on the base's *active* version at
        lookup time.  The epoch is captured here, before any engine work, so
        a lifecycle flip racing the call invalidates the eventual fill.
        """
        try:
            input_hash = canonical_input_hash(inputs)
        except (TypeError, ValueError):
            return None                      # non-numeric → let the 400 path run
        name = model or self.registry.default_name()
        if not name:
            return None
        try:
            base, version = split_versioned(name)
        except LifecycleError:
            return None
        if version is None:
            version = self.registry.active_version(base)
            if version is None:
                return None
        return CachePlane(namespace=format_versioned(base, version),
                          input_hash=input_hash,
                          epoch=self.cache.epoch(), echo=name)

    def _predict_routed(self, plane: Optional[CachePlane], inputs,
                        model: Optional[str], timeout_s: Optional[float],
                        qos: RequestQoS, trace_id: str, root, started: float,
                        ) -> Tuple[Dict[str, object], Optional[str]]:
        """Dispatch through the response cache when a plane resolved.

        Returns ``(response, verdict)`` where the verdict is ``None`` (the
        engine executed this request), ``"cached"`` (served from memory) or
        ``"coalesced"`` (follower of an identical in-flight request).
        """
        if plane is None:
            return (self._predict_inner(inputs, model, timeout_s, qos,
                                        trace_id, root, started), None)
        parent = root.span_id if root is not None else None
        for _ in range(3):
            status, token = self.cache.begin(plane.namespace, plane.input_hash)
            if status == "lead":
                canonical = None
                try:
                    response = self._predict_inner(inputs, model, timeout_s,
                                                   qos, trace_id, root, started)
                    canonical = canonical_response_bytes(response)
                    if canonical is not None:
                        self.cache.insert(plane.namespace, plane.input_hash,
                                          canonical, epoch=plane.epoch)
                    return response, None
                finally:
                    # Publish success *or* failure: a leader that dies without
                    # publishing would strand its followers until timeout.
                    self.cache.finish_leader(token, canonical)
            span = self.tracer.start_span(
                "server.cache", trace_id, parent_id=parent,
                attrs={"namespace": plane.namespace,
                       "verdict": "hit" if status == "hit" else "coalesced"})
            if status == "hit":
                self.tracer.finish_span(span)
                return (self._cached_response(plane, token, qos, started,
                                              "cached"), "cached")
            remaining = qos.remaining_ms()
            timeout = (remaining / 1e3 if remaining is not None
                       else self.request_timeout_s)
            if timeout <= 0 or not token.wait(timeout):
                self.tracer.finish_span(span, status="timeout")
                self.metrics.record_timeout(qos.priority)
                raise RequestTimeout(
                    "deadline expired while coalesced behind an identical "
                    "in-flight request", stage="coalesce-wait")
            if token.ok:
                self.cache.record_follower_served()
                self.tracer.finish_span(span)
                return (self._cached_response(plane, token.value, qos, started,
                                              "coalesced"), "coalesced")
            # Leader failed: loop back — begin() elects a new leader (maybe us).
            self.tracer.finish_span(span, status="error",
                                    reason="leader-failed")
            self.cache.record_reelection()
        # Repeated leader failures: stop coalescing and execute solo.
        return (self._predict_inner(inputs, model, timeout_s, qos,
                                    trace_id, root, started), None)

    def _cached_response(self, plane: CachePlane, canonical: bytes,
                         qos: RequestQoS, started: float,
                         flag: str) -> Dict[str, object]:
        """A JSON-ready response replayed from canonical cached bytes.

        ``json.loads`` parses the cached float reprs back to the exact
        float64 values and the handler's ``json.dumps`` re-emits the same
        reprs, so the replayed outputs are bitwise-faithful to the original
        engine call.  Hits skip the batcher, so the submit/complete
        accounting the batcher normally performs happens here instead.
        """
        response = json.loads(canonical.decode("utf-8"))
        elapsed = time.monotonic() - started
        self.metrics.record_submitted(int(response["num_samples"]))
        self.metrics.record_completed(elapsed, 0.0, qos.priority, qos.tenant)
        self.metrics.record_stages(qos.priority, cache=elapsed)
        response.update({"model": plane.echo, "queue_ms": 0.0,
                         "priority": qos.priority, "tenant": qos.tenant,
                         flag: True})
        return response

    def _predict_inner(self, inputs: np.ndarray, model: Optional[str],
                       timeout_s: Optional[float], qos: RequestQoS,
                       trace_id: str, root, started: float) -> Dict[str, object]:
        self.brownout.admit(qos.priority)
        name = model or self.registry.default_name()
        if name is None:
            raise KeyError("no models registered")
        served = self._get_served(name)
        inputs = np.asarray(inputs, dtype=np.float64)
        expected = served.engine.input_shape
        if expected is not None and tuple(inputs.shape) == tuple(expected):
            inputs = inputs[None]                     # single sample → batch of 1
        if inputs.ndim == 0 or inputs.shape[0] == 0:
            raise ValueError("inputs must contain at least one sample")
        # Validate per-sample shape at admission: a bad request must be
        # rejected here (HTTP 400), never coalesced into a batch where its
        # shape would fail the whole dispatch.
        if expected is not None and tuple(inputs.shape[1:]) != tuple(expected):
            raise ValueError(f"expected per-sample input shape {tuple(expected)}, "
                             f"got {tuple(inputs.shape[1:])}")
        submit_kwargs = dict(timeout_s=timeout_s, priority=qos.priority,
                             tenant=qos.tenant, deadline=qos.deadline,
                             trace_id=trace_id,
                             parent_span=root.span_id if root is not None else None)
        try:
            request = served.batcher.submit(inputs, **submit_kwargs)
        except SchedulerStopped:
            # We raced an LRU retirement: the model is still registered, so
            # re-resolve (reloading the engine) instead of failing the caller.
            served = self._get_served(name)
            request = served.batcher.submit(inputs, **submit_kwargs)
        wait = None
        if request.deadline is not None:
            wait = max(request.deadline - time.monotonic(), 0.0) + 1.0
        outputs = request.result(timeout=wait)
        # Per-stage component breakdown (derived from the same timings the
        # spans record): batcher queue wait, engine time inside the batch,
        # and everything else end-to-end ("respond").
        total_seconds = time.monotonic() - started
        self.metrics.record_stages(
            qos.priority,
            batch_wait=request.queue_seconds,
            infer=request.infer_seconds,
            respond=max(0.0, total_seconds - request.queue_seconds
                        - request.infer_seconds))
        return {
            "model": name,
            "outputs": outputs.tolist(),
            "classes": outputs.argmax(axis=1).tolist(),
            "num_samples": int(inputs.shape[0]),
            "queue_ms": request.queue_seconds * 1e3,
            "priority": qos.priority,
            "tenant": qos.tenant,
        }

    def metrics_snapshot(self) -> Dict[str, object]:
        """The ``/metrics`` payload."""
        with self._lock:
            served = dict(self._served)
        queue_depth = sum(record.batcher.queue_depth for record in served.values())
        payload: Dict[str, object] = {
            "server": self.metrics.snapshot(queue_depth=queue_depth),
            # snapshot() also refreshes the detector, so a server whose
            # traffic stopped entirely still recovers toward `healthy` while
            # being scraped.
            "brownout": self.brownout.snapshot(),
            "registry": self.registry.describe(),
            "trace": self.tracer.snapshot(),
            "runtime_verification": self.monitor.snapshot(),
            "cache": (self.cache.snapshot() if self.cache is not None
                      else {"enabled": False}),
            "frontend": self.frontend_snapshot(),
            "models": {},
        }
        # Keep the JSONL export readable by scrapers: a /metrics poll is the
        # natural heartbeat to push buffered spans to disk.
        self.tracer.flush()
        for name, record in served.items():
            entry: Dict[str, object] = {
                "engine": record.engine.stats_snapshot(),
                "queue_depth": record.batcher.queue_depth,
                "batching": {
                    "max_batch_size": record.batcher.max_batch_size,
                    "max_wait_ms": record.batcher.max_wait_s * 1e3,
                },
            }
            if record.pacer is not None:
                entry["hardware_emulation"] = {
                    "hz": record.pacer.hz,
                    "slept_s": record.pacer.slept_s,
                }
            if record.auditor is not None:
                entry["parity_audit"] = {
                    "enabled": record.auditor.enabled,
                    "exact": record.auditor.exact,
                    "every": record.auditor.every,
                    "last_mismatch": record.auditor.last_mismatch,
                }
            payload["models"][name] = entry
        return payload

    def trace_snapshot(self, trace_id: Optional[str] = None,
                       limit: int = 20) -> Dict[str, object]:
        """The ``/trace`` payload: one trace's spans, or a recent listing."""
        if trace_id:
            return {"trace_id": trace_id, "spans": self.tracer.find(trace_id)}
        return {"recent": self.tracer.recent_traces(limit),
                "trace": self.tracer.snapshot()}

    def models_snapshot(self) -> Dict[str, object]:
        return self.registry.describe()

    def health_snapshot(self) -> Dict[str, object]:
        with self._lock:
            serving = sorted(self._served)
        return {
            "status": "ok",
            "models": self.registry.names(),
            "serving": serving,
        }

    # ------------------------------------------------------------------ #
    # Backend-agnostic HTTP dispatch (both front ends call this)
    # ------------------------------------------------------------------ #
    def handle_http(self, method: str, path: str, headers,
                    body: bytes) -> Tuple[int, bytes, Dict[str, str]]:
        """Answer one parsed request: ``(status, body_bytes, headers)``.

        The single application hook behind both network backends — the
        threaded handler and the event-loop bridge feed it identically, so
        the wire protocol cannot drift between them.  ``headers`` is any
        case-insensitive ``.get()`` mapping (stdlib ``email.Message`` or
        :class:`~repro.serve.netfront.Headers`).
        """
        if method == "GET":
            trace_id = _trace_query(path)
            if path == "/healthz":
                return _json_response(200, self.health_snapshot())
            if path == "/metrics":
                return _json_response(200, self.metrics_snapshot())
            if path == "/models":
                return _json_response(200, self.models_snapshot())
            if path == "/admin/status":
                return _json_response(200, self.lifecycle_snapshot())
            if trace_id is not None:
                return _json_response(200, self.trace_snapshot(trace_id or None))
            return _json_response(404, {"error": f"unknown path {path}"})
        if method != "POST":
            return _json_response(501, {"error": f"unsupported method {method}"})
        if path.startswith("/admin/"):
            return self._admin_http(path, body)
        if path != "/predict":
            return _json_response(404, {"error": f"unknown path {path}"})
        return self._predict_http(headers, body)

    def _admin_http(self, path: str,
                    body: bytes) -> Tuple[int, bytes, Dict[str, str]]:
        """``/admin/*`` POSTs through the shared typed schemas.

        The single server ignores the canary-gate fields of
        :class:`~repro.serve.adminapi.DeployRequest` (there is no traffic
        splitter here) and does not implement ``scale`` — the pool does.
        """
        return adminapi.dispatch_admin(path, body, {
            "deploy": lambda r: {"deployed": self.deploy_bundle(
                r.path, name=r.name, version=r.version, preload=r.preload)},
            "promote": lambda r: self.promote(r.name, version=r.version),
            "rollback": lambda r: self.rollback(r.name),
        })

    def _predict_http(self, headers,
                      body: bytes) -> Tuple[int, bytes, Dict[str, str]]:
        trace_ctx = parse_trace_context(None, headers)

        def trace_fields(ctx) -> Dict[str, object]:
            return {"trace_id": ctx.trace_id} if ctx.trace_id else {}

        def trace_headers(ctx) -> Dict[str, str]:
            # The returning Lamport value lets the upstream router merge this
            # process's clock, keeping cross-process span order causal.
            response_headers = {LAMPORT_HEADER: str(self.tracer.clock.value)}
            if ctx.trace_id:
                response_headers[TRACE_HEADER] = ctx.trace_id
            return response_headers

        try:
            payload = json.loads(body or b"{}")
            if "inputs" not in payload:
                raise ValueError("request body must contain 'inputs'")
            trace_ctx = parse_trace_context(payload, headers)
            inputs = np.asarray(payload["inputs"], dtype=np.float64)
            qos = parse_qos(payload, headers)
        except (ValueError, TypeError, json.JSONDecodeError) as exc:
            return _json_response(400, {"error": str(exc),
                                        **trace_fields(trace_ctx)},
                                  trace_headers(trace_ctx))
        no_cache = bool(payload.get("no_cache")) or \
            bool(headers.get(NO_CACHE_HEADER))
        try:
            response = self.predict(inputs, model=payload.get("model"),
                                    qos=qos, trace=trace_ctx,
                                    no_cache=no_cache)
        except KeyError as exc:
            return _json_response(404, {"error": str(exc),
                                        **trace_fields(trace_ctx)},
                                  trace_headers(trace_ctx))
        except ShedError as exc:
            return _shed_response(
                exc, trace_id=trace_ctx.trace_id,
                extra_headers={LAMPORT_HEADER: str(self.tracer.clock.value)})
        except QueueFullError as exc:
            return _json_response(429, {"error": str(exc),
                                        **trace_fields(trace_ctx)},
                                  {"Retry-After": "1.000",
                                   **trace_headers(trace_ctx)})
        except RequestTimeout as exc:
            # (queue-expiry timeouts are already counted by the scheduler)
            # The details say *where* the deadline died — e.g.
            # ``{"queue_ms": 12.3, "stage": "batch-queue"}`` for a request
            # shed in the queue before any engine work.
            return _json_response(408, {"error": str(exc), **exc.details,
                                        **trace_fields(trace_ctx)},
                                  trace_headers(trace_ctx))
        except SchedulerStopped as exc:
            return _json_response(503, {"error": str(exc),
                                        **trace_fields(trace_ctx)},
                                  trace_headers(trace_ctx))
        except ValueError as exc:
            return _json_response(400, {"error": str(exc),
                                        **trace_fields(trace_ctx)},
                                  trace_headers(trace_ctx))
        except Exception as exc:             # noqa: BLE001 - boundary
            self.metrics.record_error()
            return _json_response(500, {"error": f"{type(exc).__name__}: {exc}",
                                        **trace_fields(trace_ctx)},
                                  trace_headers(trace_ctx))
        return _json_response(200, response, trace_headers(trace_ctx))

    # ------------------------------------------------------------------ #
    # HTTP lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> "PECANServer":
        """Bind and serve on a background thread (idempotent)."""
        if self._httpd is not None or self._frontend is not None:
            return self
        if self.http_backend == "eventloop":
            self._frontend = EventLoopFrontEnd(
                self.handle_http, self.host, self.port,
                max_connections=self.max_connections,
                idle_timeout_s=self.idle_timeout_s,
                request_timeout_s=self.request_read_timeout_s,
                io_threads=self.io_threads).start()
            # Expose the ephemeral bound port (port=0 requests) so tests,
            # pools and clients can address the server without racing its
            # startup.
            self.port = self._frontend.port
            return self
        handler = _build_handler(self)
        self._httpd = _ServeHTTPServer((self.host, self.port), handler)
        self.port = self._httpd.server_address[1]
        self._http_thread = threading.Thread(target=self._httpd.serve_forever,
                                             name="repro-serve-http", daemon=True)
        self._http_thread.start()
        return self

    def frontend_snapshot(self) -> Dict[str, object]:
        """Network-plane counters for ``/metrics`` (both backends)."""
        if self._frontend is not None:
            return self._frontend.stats()
        return {"backend": self.http_backend}

    def stop(self) -> None:
        if self._frontend is not None:
            self._frontend.stop()
            self._frontend = None
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
        if self._http_thread is not None:
            self._http_thread.join(5.0)
            self._http_thread = None
        with self._lock:
            records = list(self._served.values())
            self._served.clear()
        for record in records:        # drain outside the lock
            self._retire(record)
        self.tracer.close()

    def serve_forever(self) -> None:
        """Blocking variant for the CLI: start and run until interrupted."""
        self.start()
        try:
            if self._http_thread is not None:
                while True:
                    self._http_thread.join(1.0)
                    if not self._http_thread.is_alive():
                        break
            else:
                while self._frontend is not None:
                    time.sleep(0.5)
        except KeyboardInterrupt:
            pass
        finally:
            self.stop()

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def __enter__(self) -> "PECANServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()


# --------------------------------------------------------------------------- #
# Request handler
# --------------------------------------------------------------------------- #
class JSONHandlerBase(BaseHTTPRequestHandler):
    """Shared scaffolding for the JSON-over-HTTP handlers.

    Both the single-process server and the pool router derive from this, so
    protocol mechanics (keep-alive version, logging policy, response framing)
    live in exactly one place and the two front ends cannot drift apart.
    """

    protocol_version = "HTTP/1.1"

    # Silence per-request stderr logging; metrics carry the signal.
    def log_message(self, format, *args):        # noqa: A002 - stdlib signature
        pass

    def _reply_bytes(self, status: int, body: bytes,
                     headers: Optional[Dict[str, str]] = None) -> None:
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _reply(self, status: int, payload: Dict[str, object],
               headers: Optional[Dict[str, str]] = None) -> None:
        self._reply_bytes(status, json.dumps(payload).encode("utf-8"),
                          headers=headers)

    def _reply_shed(self, exc, trace_id: Optional[str] = None,
                    extra_headers: Optional[Dict[str, str]] = None) -> None:
        """Answer a QoS refusal (brownout / rate limit) with ``Retry-After``."""
        payload = {"error": str(exc), "reason": exc.reason,
                   "retry_after_s": exc.retry_after_s}
        headers = {"Retry-After": f"{max(exc.retry_after_s, 0.0):.3f}"}
        if trace_id:
            payload["trace_id"] = trace_id
            headers[TRACE_HEADER] = trace_id
        if extra_headers:
            headers.update(extra_headers)
        self._reply(exc.status, payload, headers=headers)

    def _read_body(self) -> Optional[bytes]:
        """The request body, or ``None`` after replying 400 to a bad frame."""
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            length = -1
        if length < 0:
            # A negative length would turn rfile.read() into read-to-EOF,
            # pinning this handler thread until the client hangs up.
            self._reply(400, {"error": "bad Content-Length"})
            return None
        return self.rfile.read(length)


def _json_response(status: int, payload: Dict[str, object],
                   headers: Optional[Dict[str, str]] = None,
                   ) -> Tuple[int, bytes, Dict[str, str]]:
    """One app-level response triple: ``(status, body_bytes, headers)``."""
    return (int(status), json.dumps(payload).encode("utf-8"),
            dict(headers or {}))


def _shed_response(exc, trace_id: Optional[str] = None,
                   extra_headers: Optional[Dict[str, str]] = None,
                   ) -> Tuple[int, bytes, Dict[str, str]]:
    """A QoS refusal (brownout / rate limit / budget) with ``Retry-After``."""
    payload = {"error": str(exc), "reason": exc.reason,
               "retry_after_s": exc.retry_after_s}
    headers = {"Retry-After": f"{max(exc.retry_after_s, 0.0):.3f}"}
    if trace_id:
        payload["trace_id"] = trace_id
        headers[TRACE_HEADER] = trace_id
    if extra_headers:
        headers.update(extra_headers)
    return _json_response(exc.status, payload, headers)


def _trace_query(path: str) -> Optional[str]:
    """``"/trace?id=abc"`` → ``"abc"``; ``"/trace"`` → ``""``; else ``None``."""
    from urllib.parse import parse_qs, urlparse

    parsed = urlparse(path)
    if parsed.path != "/trace":
        return None
    values = parse_qs(parsed.query).get("id", [])
    return values[0] if values else ""


def _build_handler(server: PECANServer):
    """Threaded-backend shim: frame bytes in/out of :meth:`handle_http`."""
    class Handler(JSONHandlerBase):
        pecan = server

        def do_GET(self) -> None:                # noqa: N802 - stdlib signature
            status, body, headers = self.pecan.handle_http(
                "GET", self.path, self.headers, b"")
            self._reply_bytes(status, body, headers=headers)

        def do_POST(self) -> None:               # noqa: N802 - stdlib signature
            body = self._read_body()
            if body is None:
                return
            status, out, headers = self.pecan.handle_http(
                "POST", self.path, self.headers, body)
            self._reply_bytes(status, out, headers=headers)

    return Handler
